"""Regenerate the paper's tables and figures from the experiment harness.

``python examples/reproduce_paper.py``            — quick sweep (minutes)
``python examples/reproduce_paper.py --full``     — the paper's full grid
``python examples/reproduce_paper.py fig10 fig11``— selected artifacts only

Single artifacts are also reachable from the unified CLI —
``python -m repro experiment table1`` — and every sweep combination the
harness trains now resolves through ``repro.api.Engine`` (see
``repro.experiments.common.run_method``), so the numbers here and the
spec-driven API share one construction path.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import ExperimentConfig, format_experiment, list_experiments, run_experiment

#: artifacts cheap enough for the default quick run
DEFAULT_ARTIFACTS = ["table1", "fig5", "fig9", "fig11", "space_overhead", "fig3", "fig10", "table2"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="*", default=None,
                        help=f"artifacts to regenerate (default: {DEFAULT_ARTIFACTS})")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full dataset/model/method grid (slow)")
    args = parser.parse_args()

    config = ExperimentConfig.full() if args.full else ExperimentConfig()
    artifacts = args.artifacts or DEFAULT_ARTIFACTS
    unknown = set(artifacts) - set(list_experiments())
    if unknown:
        raise SystemExit(f"unknown artifacts {sorted(unknown)}; available: {list_experiments()}")

    for name in artifacts:
        start = time.perf_counter()
        rows = run_experiment(name, config)
        elapsed = time.perf_counter() - start
        print(f"\n=== {name} (regenerated in {elapsed:.1f}s) " + "=" * 40)
        print(format_experiment(name, rows))


if __name__ == "__main__":
    main()
