"""Quickstart: declare two runs as specs, execute both through one Engine.

Run with ``python examples/quickstart.py``.  Every scenario in this repo —
single-GPU training with any method, multi-GPU training, streaming serving —
is described by a declarative :class:`repro.api.RunSpec` and executed by
:class:`repro.api.Engine`.  This script declares the canonical PyGT baseline
and PiPAD on the Covid-19 England analogue, runs both through
``Engine.from_spec(...)``, and compares the reports (the losses are identical
up to float noise — PiPAD changes the execution schedule, not the math).

Specs serialize to JSON (see the ``specs/`` directory for ready-made ones),
so the same two runs work from the command line::

    python -m repro run pygt-baseline
    python -m repro run pipad-single

Migrating from the old entry points:

==============================================  =====================================
old                                             new
==============================================  =====================================
``PyGTTrainer(graph, cfg).train()``             ``Engine.from_spec(RunSpec(method="pygt", ...)).train()``
``make_trainer("pipad", graph, cfg, ...)``      ``Engine.from_spec(RunSpec(method="pipad", ...))``
``PiPADTrainer(graph, cfg, pipad_cfg)``         ``RunSpec(method="pipad", pipad={...overrides...})``
``DistributedTrainer(graph, cfg, pc, dc)``      ``RunSpec(device={"kind": "group", "num_devices": K})``
``build_serving_engine(graph, model, sc)``      ``RunSpec(serving={...}) + engine.serve()``
``build_sharded_serving_engine(...)``           ``RunSpec(serving={"kind": "sharded", "num_shards": K})``
==============================================  =====================================
"""

from __future__ import annotations

from repro.api import Engine, RunSpec


def main() -> None:
    base = RunSpec(
        dataset="covid19_england",
        model="tgcn",
        method="pygt",
        num_snapshots=14,
        frame_size=8,
        epochs=3,
        lr=1e-3,
        seed=0,
    )
    pipad_spec = base.replace(method="pipad", pipad={"preparing_epochs": 1})

    pygt_engine = Engine.from_spec(base)
    graph = pygt_engine.graph
    print(f"dataset: {graph.name}  nodes={graph.num_nodes}  snapshots={graph.num_snapshots}")
    print(f"average topology change rate: {graph.average_change_rate():.3f}\n")

    pygt_result = pygt_engine.train()
    pipad_engine = Engine.from_spec(pipad_spec, graph=graph)
    pipad_result = pipad_engine.train()

    print(f"{'method':<8} {'epoch time (sim)':>18} {'GPU util':>10} {'final loss':>12}")
    for result in (pygt_result, pipad_result):
        print(
            f"{result.method:<8} {result.steady_epoch_seconds * 1e3:>15.2f} ms "
            f"{result.gpu_utilization:>9.1%} {result.final_loss:>12.4f}"
        )
    speedup = pygt_result.steady_epoch_seconds / pipad_result.steady_epoch_seconds
    print(f"\nPiPAD speedup over PyGT: {speedup:.2f}x")
    print(f"parallelism chosen per frame: {sorted(set(pipad_engine.trainer.chosen_s_per().values()))}")
    print(f"loss curves: PyGT={pygt_result.loss_curve()}  PiPAD={pipad_result.loss_curve()}")
    print(f"\nthe PiPAD spec as JSON:\n{pipad_spec.to_json()}")


if __name__ == "__main__":
    main()
