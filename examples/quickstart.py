"""Quickstart: train one DGNN with PyGT and with PiPAD and compare them.

Run with ``python examples/quickstart.py``.  The script loads the Covid-19
England dataset analogue (a small contact graph), trains the T-GCN model with
the canonical PyGT baseline and with PiPAD on the simulated V100, and prints
the simulated end-to-end times, the speedup and the loss curves (which are
identical up to float noise — PiPAD changes the execution schedule, not the
math).
"""

from __future__ import annotations

from repro.baselines import PyGTTrainer, TrainerConfig
from repro.core import PiPADConfig, PiPADTrainer
from repro.graph import load_dataset


def main() -> None:
    graph = load_dataset("covid19_england", seed=0, num_snapshots=14)
    config = TrainerConfig(model="tgcn", frame_size=8, epochs=3, lr=1e-3, seed=0)

    print(f"dataset: {graph.name}  nodes={graph.num_nodes}  snapshots={graph.num_snapshots}")
    print(f"average topology change rate: {graph.average_change_rate():.3f}\n")

    pygt = PyGTTrainer(graph, config)
    pygt_result = pygt.train()

    pipad = PiPADTrainer(graph, config, PiPADConfig(preparing_epochs=1))
    pipad_result = pipad.train()

    print(f"{'method':<8} {'epoch time (sim)':>18} {'GPU util':>10} {'final loss':>12}")
    for result in (pygt_result, pipad_result):
        print(
            f"{result.method:<8} {result.steady_epoch_seconds * 1e3:>15.2f} ms "
            f"{result.gpu_utilization:>9.1%} {result.final_loss:>12.4f}"
        )
    speedup = pygt_result.steady_epoch_seconds / pipad_result.steady_epoch_seconds
    print(f"\nPiPAD speedup over PyGT: {speedup:.2f}x")
    print(f"parallelism chosen per frame: {sorted(set(pipad.chosen_s_per().values()))}")
    print(f"loss curves: PyGT={pygt_result.loss_curve()}  PiPAD={pipad_result.loss_curve()}")


if __name__ == "__main__":
    main()
