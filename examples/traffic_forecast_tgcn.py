"""Traffic forecasting with T-GCN on the PEMS08 analogue (static topology).

The PEMS08 road-sensor network has a fixed topology — only the node signals
evolve — which makes it the best case for inter-frame reuse: every frame's
first-layer aggregation is identical, so after the first frame PiPAD serves
all aggregations from its reuse buffers and ships almost no adjacency data.
The script declares the run as a :class:`repro.api.RunSpec`, executes it
through :class:`repro.api.Engine`, reports the reuse statistics and evaluates
the forecast error on the last frame, then reruns the same spec with the
PyGT-R method for comparison.
"""

from __future__ import annotations

from repro.api import Engine, RunSpec


def main() -> None:
    spec = RunSpec(
        dataset="pems08",
        model="tgcn",
        method="pipad",
        num_snapshots=16,
        frame_size=8,
        epochs=4,
        lr=5e-3,
        seed=1,
        pipad={"preparing_epochs": 1},
    )
    engine = Engine.from_spec(spec)
    graph = engine.graph

    print(f"dataset: {graph.name} — static road topology, {graph.num_nodes} sensors")
    print(f"topology change rate: {graph.average_change_rate():.3f} (0.0 = fully static)\n")

    result = engine.train()
    eval_mse = engine.trainer.evaluate()

    reuse = {k: v for k, v in result.extras.items() if "hit" in k or "miss" in k}
    print(f"simulated training time: {result.simulated_seconds * 1e3:.2f} ms "
          f"({result.epochs} epochs)")
    print(f"steady-state epoch time: {result.steady_epoch_seconds * 1e3:.2f} ms")
    print(f"reuse statistics: {reuse}")
    print(f"loss curve: {[round(l, 4) for l in result.loss_curve()]}")
    print(f"held-out forecast MSE (last frame): {eval_mse:.4f}")

    baseline = Engine.from_spec(spec.replace(method="pygt-r", pipad={}), graph=graph).train()
    print(f"\nPyGT-R epoch time: {baseline.steady_epoch_seconds * 1e3:.2f} ms — "
          f"PiPAD speedup {baseline.steady_epoch_seconds / result.steady_epoch_seconds:.2f}x")


if __name__ == "__main__":
    main()
