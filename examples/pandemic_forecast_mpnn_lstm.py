"""Pandemic forecasting with MPNN-LSTM on the Covid-19 England analogue.

This mirrors the application MPNN-LSTM was proposed for: a mobility/contact
graph between regions whose node signals (case counts) evolve quickly.  The
example declares the PyGT baseline and the PiPAD run as
:class:`repro.api.RunSpec` instances, executes both through
:class:`repro.api.Engine`, shows how the dynamic tuner picks the per-frame
parallelism level, and prints the latency breakdown so the transfer/compute/
CPU split of Fig. 3 can be inspected on a live run.
"""

from __future__ import annotations

from repro.api import Engine, RunSpec
from repro.profiling import compute_time_breakdown, latency_breakdown


def main() -> None:
    base = RunSpec(
        dataset="covid19_england",
        model="mpnn_lstm",
        method="pygt",
        num_snapshots=16,
        frame_size=8,
        epochs=3,
        lr=1e-3,
        seed=2,
    )
    baseline_engine = Engine.from_spec(base)
    graph = baseline_engine.graph
    print(f"dataset: {graph.name}  regions={graph.num_nodes}  snapshots={graph.num_snapshots}\n")

    baseline_result = baseline_engine.train()
    print("PyGT latency breakdown:", {
        k: f"{v:.1%}" for k, v in latency_breakdown(baseline_result).items()
    })
    print("PyGT compute breakdown:", {
        k: f"{v:.1%}" for k, v in compute_time_breakdown(baseline_result).items()
    })

    pipad_engine = Engine.from_spec(
        base.replace(method="pipad", pipad={"preparing_epochs": 1}), graph=graph
    )
    pipad_result = pipad_engine.train()

    print("\ndynamic tuner decisions (first 5 frames):")
    for decision in pipad_engine.trainer.tuning_decisions[:5]:
        print(f"  frame {decision.frame_index}: S_per={decision.s_per} "
              f"(OR={decision.overlap_rate:.2f}, est. speedup {decision.estimated_speedup:.2f}) — "
              f"{decision.reason}")

    speedup = baseline_result.steady_epoch_seconds / pipad_result.steady_epoch_seconds
    print(f"\nPiPAD speedup over PyGT: {speedup:.2f}x")
    print(f"final losses — PyGT: {baseline_result.final_loss:.4f}, "
          f"PiPAD: {pipad_result.final_loss:.4f}")


if __name__ == "__main__":
    main()
