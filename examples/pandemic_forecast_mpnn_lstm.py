"""Pandemic forecasting with MPNN-LSTM on the Covid-19 England analogue.

This mirrors the application MPNN-LSTM was proposed for: a mobility/contact
graph between regions whose node signals (case counts) evolve quickly.  The
example demonstrates the full training loop, shows how the dynamic tuner
picks the per-frame parallelism level, and prints the latency breakdown so
the transfer/compute/CPU split of Fig. 3 can be inspected on a live run.
"""

from __future__ import annotations

from repro.baselines import PyGTTrainer, TrainerConfig
from repro.core import PiPADConfig, PiPADTrainer
from repro.graph import load_dataset
from repro.profiling import compute_time_breakdown, latency_breakdown


def main() -> None:
    graph = load_dataset("covid19_england", seed=2, num_snapshots=16)
    config = TrainerConfig(model="mpnn_lstm", frame_size=8, epochs=3, lr=1e-3, seed=2)

    print(f"dataset: {graph.name}  regions={graph.num_nodes}  snapshots={graph.num_snapshots}\n")

    baseline = PyGTTrainer(graph, config)
    baseline_result = baseline.train()
    print("PyGT latency breakdown:", {
        k: f"{v:.1%}" for k, v in latency_breakdown(baseline_result).items()
    })
    print("PyGT compute breakdown:", {
        k: f"{v:.1%}" for k, v in compute_time_breakdown(baseline_result).items()
    })

    pipad = PiPADTrainer(graph, config, PiPADConfig(preparing_epochs=1))
    pipad_result = pipad.train()

    print("\ndynamic tuner decisions (first 5 frames):")
    for decision in pipad.tuning_decisions[:5]:
        print(f"  frame {decision.frame_index}: S_per={decision.s_per} "
              f"(OR={decision.overlap_rate:.2f}, est. speedup {decision.estimated_speedup:.2f}) — "
              f"{decision.reason}")

    speedup = baseline_result.steady_epoch_seconds / pipad_result.steady_epoch_seconds
    print(f"\nPiPAD speedup over PyGT: {speedup:.2f}x")
    print(f"final losses — PyGT: {baseline_result.final_loss:.4f}, "
          f"PiPAD: {pipad_result.final_loss:.4f}")


if __name__ == "__main__":
    main()
