"""Streaming traffic forecasting: train offline, then serve online deltas.

The serving counterpart of ``traffic_forecast_tgcn.py``, declared as a
single :class:`repro.api.RunSpec` with a ``serving`` section: the engine
first trains the T-GCN model with the PiPAD trainer (the offline phase),
then replays a mixed trace of graph deltas (edge churn + feature updates)
and node-level prediction requests through the streaming engine, coalescing
concurrent requests into micro-batches and pushing every batch through the
simulated-GPU pipeline with tuner-chosen window partitioning.  The
incremental reuse path — cached first-layer aggregations patched only on
delta-touched rows — is what keeps the p50 latency low; the final lines
compare against a full-recompute spec replaying the exact same trace.

Run with ``python examples/serve_traffic_forecast.py``, or the equivalent
spec from the command line: ``python -m repro serve sharded-serving``.
"""

from __future__ import annotations

from repro.api import Engine, RunSpec, ServingSpec, TraceSpec


def main() -> None:
    spec = RunSpec(
        dataset="covid19_england",
        model="tgcn",
        method="pipad",
        num_snapshots=16,
        frame_size=8,
        epochs=3,
        lr=5e-3,
        seed=2,
        pipad={"preparing_epochs": 1},
        serving=ServingSpec(
            window=8,
            max_batch_requests=8,
            max_delay_ms=1.0,
            trace=TraceSpec(
                num_events=160,  # ≥100 mixed delta-updates and requests
                request_fraction=0.7,
                nodes_per_request=8,
                mean_interarrival_ms=0.5,
                seed=7,
            ),
        ),
    )
    engine = Engine.from_spec(spec)
    graph = engine.graph
    print(f"dataset: {graph.name}  nodes={graph.num_nodes}  snapshots={graph.num_snapshots}")

    # -- offline phase: the engine trains the model the spec describes -------
    training = engine.train()
    print(
        f"offline training: {training.epochs} epochs in "
        f"{training.simulated_seconds * 1e3:.2f} ms simulated, "
        f"final loss {training.final_loss:.4f}\n"
    )

    # -- online phase: stream deltas + requests through the serving engine ---
    trace = engine.default_trace()
    num_requests = sum(1 for e in trace if e.kind == "request")
    print(
        f"replaying trace: {len(trace)} events "
        f"({num_requests} requests, {len(trace) - num_requests} deltas)"
    )
    report = engine.serve(trace)
    print(report.format())
    print(
        f"  window overlap rate={report.extras['window_overlap_rate']:.2f}  "
        f"mean S_per={report.extras.get('mean_s_per', 1):.1f}  "
        f"rows patched per delta="
        f"{report.extras['rows_patched'] / max(1, report.metrics.deltas_ingested):.1f}"
    )

    # -- same trace, no incremental reuse: the naive recompute baseline ------
    naive_spec = spec.replace(
        serving=spec.serving.replace(
            enable_reuse=False, fixed_s_per=1, enable_pipeline=False
        )
    )
    naive_report = Engine.from_spec(
        naive_spec, graph=graph, model=engine.model  # same trained weights
    ).serve(trace)
    print("\n" + naive_report.format())
    print(
        f"\nincremental serving speedup over full recompute: "
        f"{report.speedup_over(naive_report):.2f}x mean latency "
        f"(p99 {naive_report.p99_latency / report.p99_latency:.2f}x)"
    )


if __name__ == "__main__":
    main()
