"""Streaming traffic forecasting: train offline, then serve online deltas.

The serving counterpart of ``traffic_forecast_tgcn.py``: a T-GCN model is
first trained on the Covid-19 England contact-graph analogue with the PiPAD
trainer, then handed to the streaming engine (:mod:`repro.serving`).  The
engine ingests a mixed trace of graph deltas (edge churn + feature updates)
and node-level prediction requests, coalesces concurrent requests into
micro-batches, and pushes every batch through the simulated-GPU pipeline
with tuner-chosen window partitioning.  The incremental reuse path — cached
first-layer aggregations patched only on delta-touched rows — is what keeps
the p50 latency low; the final lines compare against a full-recompute
engine replaying the exact same trace.

Run with ``python examples/serve_traffic_forecast.py``.
"""

from __future__ import annotations

from repro.baselines import TrainerConfig
from repro.core import PiPADConfig, PiPADTrainer
from repro.graph import load_dataset
from repro.serving import ServingConfig, build_serving_engine, synthesize_serving_trace


def main() -> None:
    graph = load_dataset("covid19_england", seed=2, num_snapshots=16)
    print(f"dataset: {graph.name}  nodes={graph.num_nodes}  snapshots={graph.num_snapshots}")

    # -- offline phase: train the model with the PiPAD trainer ---------------
    trainer = PiPADTrainer(
        graph,
        TrainerConfig(model="tgcn", frame_size=8, epochs=3, lr=5e-3, seed=2),
        PiPADConfig(preparing_epochs=1),
    )
    training = trainer.train()
    print(
        f"offline training: {training.epochs} epochs in "
        f"{training.simulated_seconds * 1e3:.2f} ms simulated, "
        f"final loss {training.final_loss:.4f}\n"
    )

    # -- online phase: stream deltas + requests through the serving engine ---
    config = ServingConfig(window=8, max_batch_requests=8, max_delay_ms=1.0)
    engine = build_serving_engine(graph, trainer.model, config)
    trace = synthesize_serving_trace(
        engine.store.head,
        num_events=160,  # ≥100 mixed delta-updates and requests
        request_fraction=0.7,
        nodes_per_request=8,
        mean_interarrival_ms=0.5,
        seed=7,
    )
    num_requests = sum(1 for e in trace if e.kind == "request")
    print(
        f"replaying trace: {len(trace)} events "
        f"({num_requests} requests, {len(trace) - num_requests} deltas)"
    )
    report = engine.run_trace(trace)
    print(report.format())
    print(
        f"  window overlap rate={report.extras['window_overlap_rate']:.2f}  "
        f"mean S_per={report.extras.get('mean_s_per', 1):.1f}  "
        f"rows patched per delta="
        f"{report.extras['rows_patched'] / max(1, report.metrics.deltas_ingested):.1f}"
    )

    # -- same trace, no incremental reuse: the naive recompute baseline ------
    naive = build_serving_engine(
        graph,
        trainer.model,
        ServingConfig(
            window=8,
            max_batch_requests=8,
            max_delay_ms=1.0,
            enable_reuse=False,
            fixed_s_per=1,
            enable_pipeline=False,
        ),
    )
    naive_report = naive.run_trace(trace)
    print("\n" + naive_report.format())
    print(
        f"\nincremental serving speedup over full recompute: "
        f"{report.speedup_over(naive_report):.2f}x mean latency "
        f"(p99 {naive_report.p99_latency / report.p99_latency:.2f}x)"
    )


if __name__ == "__main__":
    main()
