"""Evolving-graph modelling with EvolveGCN on the Epinions analogue.

EvolveGCN evolves its GCN weights along the timeline with a GRU, so the
cross-snapshot dependence sits in the *weights* rather than the hidden
states; PiPAD's weight reuse is therefore disabled automatically while the
parallel aggregation still applies (§4.2).  The example declares one base
:class:`repro.api.RunSpec` on a trust network whose edges churn over time,
sweeps all five methods by replacing the spec's ``method`` field, and prints
the memory-access statistics of each run.
"""

from __future__ import annotations

from repro.api import Engine, RunSpec
from repro.baselines import METHOD_ORDER


def main() -> None:
    base = RunSpec(
        dataset="epinions",
        model="evolvegcn",
        method="pygt",
        num_snapshots=12,
        frame_size=8,
        epochs=3,
        lr=1e-3,
        seed=3,
    )
    engine = Engine.from_spec(base)
    graph = engine.graph
    print(f"dataset: {graph.name}  nodes={graph.num_nodes}  "
          f"avg change rate={graph.average_change_rate():.3f}\n")

    results = {}
    for method in METHOD_ORDER:
        pipad = {"preparing_epochs": 1} if method == "PiPAD" else {}
        spec = base.replace(method=method, pipad=pipad)
        results[method] = Engine.from_spec(spec, graph=graph).train()

    baseline = results["PyGT"]
    print(f"{'method':<8} {'epoch (ms)':>12} {'speedup':>9} {'mem transactions':>18} {'loss':>9}")
    for method, result in results.items():
        print(
            f"{method:<8} {result.steady_epoch_seconds * 1e3:>12.2f} "
            f"{baseline.steady_epoch_seconds / result.steady_epoch_seconds:>8.2f}x "
            f"{result.memory_transactions:>18.2e} {result.final_loss:>9.4f}"
        )


if __name__ == "__main__":
    main()
