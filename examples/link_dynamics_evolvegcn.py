"""Evolving-graph modelling with EvolveGCN on the Epinions analogue.

EvolveGCN evolves its GCN weights along the timeline with a GRU, so the
cross-snapshot dependence sits in the *weights* rather than the hidden
states; PiPAD's weight reuse is therefore disabled automatically while the
parallel aggregation still applies (§4.2).  The example trains on a trust
network whose edges churn over time, compares all five methods and prints
the memory-access statistics of the run.
"""

from __future__ import annotations

from repro.baselines import METHOD_ORDER, TrainerConfig, make_trainer
from repro.core import PiPADConfig
from repro.graph import load_dataset


def main() -> None:
    graph = load_dataset("epinions", seed=3, num_snapshots=12)
    config = TrainerConfig(model="evolvegcn", frame_size=8, epochs=3, lr=1e-3, seed=3)

    print(f"dataset: {graph.name}  nodes={graph.num_nodes}  "
          f"avg change rate={graph.average_change_rate():.3f}\n")

    results = {}
    for method in METHOD_ORDER:
        kwargs = {"pipad_config": PiPADConfig(preparing_epochs=1)} if method == "PiPAD" else {}
        results[method] = make_trainer(method, graph, config, **kwargs).train()

    baseline = results["PyGT"]
    print(f"{'method':<8} {'epoch (ms)':>12} {'speedup':>9} {'mem transactions':>18} {'loss':>9}")
    for method, result in results.items():
        print(
            f"{method:<8} {result.steady_epoch_seconds * 1e3:>12.2f} "
            f"{baseline.steady_epoch_seconds / result.steady_epoch_seconds:>8.2f}x "
            f"{result.memory_transactions:>18.2e} {result.final_loss:>9.4f}"
        )


if __name__ == "__main__":
    main()
