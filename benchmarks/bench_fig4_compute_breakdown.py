"""Benchmark: regenerate Fig. 4 (GPU computation-time breakdown)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import format_experiment, run_experiment


def test_fig4_compute_breakdown(benchmark, light_config):
    rows = run_once(benchmark, run_experiment, "fig4", light_config)
    print("\n" + format_experiment("fig4", rows))
    for key, row in rows.items():
        total = row["gnn_fraction"] + row["rnn_fraction"] + row["other_fraction"]
        assert abs(total - 1.0) < 1e-6
    # Paper: the GNN module remains the major computation burden for EvolveGCN.
    evolvegcn_rows = {k: v for k, v in rows.items() if k.startswith("evolvegcn")}
    assert all(row["gnn_fraction"] > row["rnn_fraction"] for row in evolvegcn_rows.values())
