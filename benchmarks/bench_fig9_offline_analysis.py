"""Benchmark: regenerate Fig. 9 (offline analysis of the parallel GNN)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import format_experiment, run_experiment


def test_fig9_offline_analysis(benchmark, bench_config):
    rows = run_once(benchmark, run_experiment, "fig9", bench_config)
    print("\n" + format_experiment("fig9", rows))
    overlap_table = rows["speedup_vs_overlap"]
    dim_table = rows["speedup_vs_dimension"]
    # Paper: larger S_per is preferred at equal overlap rate, and speedups grow
    # with the overlap rate.
    for overlap in (0.1, 0.5, 0.9):
        assert overlap_table[(8, overlap)] >= overlap_table[(2, overlap)] * 0.95
    for s_per in (2, 4, 8):
        assert overlap_table[(s_per, 0.9)] >= overlap_table[(s_per, 0.1)]
    # Paper: the parallel GNN keeps a clear advantage across feature dimensions,
    # with the largest wins in the small-dimension (bandwidth-unsaturated) regime.
    assert all(speedup > 1.0 for speedup in dim_table.values())
    assert dim_table[(8, 2)] > dim_table[(8, 64)]
