"""Benchmark: regenerate Fig. 10 (end-to-end training speedup over PyGT)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import format_experiment, run_experiment
from repro.experiments.fig10_overall_speedup import speedups


def test_fig10_overall_speedup(benchmark, bench_config):
    rows = run_once(benchmark, run_experiment, "fig10", bench_config)
    print("\n" + format_experiment("fig10", rows))
    table = speedups(rows)
    assert table, "no combinations were trained"
    for key, row in table.items():
        # Paper: PiPAD outperforms every compared method on every combination
        # (1.22x-9.57x over the baselines).
        assert row["PiPAD"] > 1.0, key
        assert row["PiPAD"] >= max(v for m, v in row.items() if m != "PiPAD") * 0.95, key
        # Incremental variants never lose badly to plain PyGT.
        assert row["PyGT-A"] > 0.8, key
    # The paper's overall band: speedups between roughly 1.2x and 10x.
    pipad_speedups = [row["PiPAD"] for row in table.values()]
    assert max(pipad_speedups) > 2.0
    assert min(pipad_speedups) > 1.0
