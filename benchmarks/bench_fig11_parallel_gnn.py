"""Benchmark: regenerate Fig. 11(a)/(b) (parallel-GNN detailed analysis)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import format_experiment, run_experiment
from repro.experiments.fig11_parallel_gnn import dimension_sensitivity


def test_fig11a_parallel_gnn_analysis(benchmark, bench_config):
    rows = run_once(benchmark, run_experiment, "fig11", bench_config)
    print("\n" + format_experiment("fig11", rows))
    speedups_pygt = [row["speedup_over_pygt"] for row in rows.values()]
    speedups_gespmm = [row["speedup_over_pygt_g"] for row in rows.values()]
    # Paper: average 5.6x over PyGT and 3.1x over PyGT-G for the GNN module;
    # the reproduction must show clear wins over both (shape, not exact value).
    assert np.mean(speedups_pygt) > 2.0
    assert np.mean(speedups_gespmm) > 1.2
    # Paper: ~57 % fewer requests and ~45 % fewer transactions than PyGT-G on
    # average; require a clear average reduction on both counters.
    assert np.mean([row["request_reduction"] for row in rows.values()]) > 0.2
    assert np.mean([row["transaction_reduction"] for row in rows.values()]) > 0.05


def test_fig11b_dimension_sensitivity(benchmark, bench_config):
    sensitivity = benchmark.pedantic(
        dimension_sensitivity,
        kwargs={"config": bench_config, "dataset": "hepth", "dimensions": (2, 8, 16, 32, 64, 128)},
        rounds=1,
        iterations=1,
    )
    print("\nFig. 11(b) GNN speedup over PyGT by feature dimension:")
    for dim, speedup in sorted(sensitivity.items()):
        print(f"  dim {dim:>4}: {speedup:.2f}x")
    # Paper: considerable speedups (at least 5.2x there) across all dimensions;
    # here we require >2x everywhere with the small-dimension side largest.
    assert all(speedup > 2.0 for speedup in sensitivity.values())
    assert sensitivity[2] >= sensitivity[128]
