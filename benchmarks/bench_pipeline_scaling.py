"""Benchmark: frame-pipeline scaling of PiPAD training across devices.

Trains one aggregation-dominated workload at 1/2/4 pipeline stages — each
depth a ``RunSpec`` with a ``device: {kind: "pipeline"}`` topology resolved
through :class:`repro.api.Engine` — and prints the scaling table with the
pipeline bubble and the point-to-point state-handoff time itemized against
the ``group`` topology's gradient all-reduce on the identical workload.  The
assertion mirrors the pipeline acceptance criterion: >1.3x steady-epoch
speedup at 4 devices over the one-device run, with bubble time reported.
"""

from __future__ import annotations

from conftest import run_once, write_bench_json

from repro.experiments import format_experiment, run_experiment


def test_pipeline_scaling(benchmark, bench_config):
    config = bench_config.with_overrides(
        datasets=("flickr",), models=("evolvegcn",), epochs=3
    )
    rows = run_once(
        benchmark, run_experiment, "scaling_pipeline", config, device_counts=(1, 2, 4)
    )
    print("\n" + format_experiment("scaling_pipeline", rows))
    write_bench_json("pipeline", {"experiment": "scaling_pipeline", "rows": rows})

    by_devices = {int(row["devices"]): row for row in rows}
    assert by_devices[1]["speedup"] == 1.0
    # Acceptance criterion: >1.3x steady-epoch speedup at 4 devices.
    assert by_devices[4]["speedup"] > 1.3
    assert by_devices[2]["speedup"] > 1.0
    # The pipeline costs are itemized, not folded into compute: every
    # multi-stage run reports its state handoffs and its bubble.
    for devices, row in by_devices.items():
        if devices > 1:
            assert row["peer_transfer_seconds"] > 0
            assert row["bubble_seconds"] > 0
            assert row["all_reduce_seconds"] > 0
    # One stage has no pipeline: no handoffs, no bubble.
    assert by_devices[1]["peer_transfer_seconds"] == 0.0
    assert by_devices[1]["bubble_seconds"] == 0.0
    # The comparison column: the group topology's all-reduce time on the
    # same workload is reported next to the pipeline's bubble.
    assert by_devices[4]["group_all_reduce_seconds"] > 0
    assert by_devices[4]["group_steady_epoch_seconds"] > 0
