"""Benchmark: regenerate Fig. 12 (sliced CSR load balance + end-to-end effect)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import format_experiment, run_experiment


def test_fig12_sliced_csr(benchmark, light_config):
    rows = run_once(benchmark, run_experiment, "fig12", light_config)
    print("\n" + format_experiment("fig12", rows))
    for dataset, row in rows.items():
        # Sliced CSR does not worsen load balance beyond noise; the paper notes
        # the improvement is small on the dense small-scale datasets.
        assert row["sliced_imbalance"] <= row["csr_imbalance"] * 1.05, dataset
        # End-to-end, the sliced-CSR PiPAD is at least as fast as the CSR variant.
        assert row["end_to_end_speedup"] > 0.9, dataset
    assert np.mean([row["improvement"] for row in rows.values()]) >= 0.97
