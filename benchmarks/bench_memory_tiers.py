"""Benchmark: GPU-budget sweep of the multi-tier feature cache.

Trains one workload uncached and then at increasing GPU-tier budgets, and
prints hit rate + steady-epoch time per budget.  The sweep isolates what
each tier buys: at 0 MiB every block lives in pinned/spill host tiers (hits
skip gather+pin but still pay PCIe), while at the largest budget the whole
feature working set is GPU-resident and steady epochs skip the transfer
path entirely.  A final oversized run — feature bytes past the simulated
16 GiB HBM — proves the cache makes an otherwise inexpressible workload
trainable; uncached it must refuse with ``OutOfMemoryError``.
"""

from __future__ import annotations

import json

import pytest
from conftest import run_once, write_bench_json

from repro.api import Engine, RunSpec
from repro.api.cli import PRESETS
from repro.gpu.device import OutOfMemoryError

#: GPU-tier budgets (MiB) swept on the fitting workload; 64 MiB fits 100%
#: of the workload's feature blocks
BUDGETS_MB = (0.0, 1.0, 64.0)


def _fitting_spec(budget_mb, quick: bool) -> RunSpec:
    data = json.loads(json.dumps(PRESETS["quick"]))  # deep copy
    data.update(epochs=2 if quick else 3)
    if budget_mb is not None:
        data["memory"] = {
            "feature_cache": True,
            "gpu_budget_mb": budget_mb,
            "pinned_budget_mb": 1.0,
            "block_rows": 32,
        }
    return RunSpec.from_dict(data)


def _oversized_spec(quick: bool, *, cached: bool) -> RunSpec:
    data = json.loads(json.dumps(PRESETS["train-oversized"]))  # deep copy
    data.pop("serving")  # training throughput only
    if quick:
        data.update(num_snapshots=8, epochs=2)
    if not cached:
        del data["memory"]
    return RunSpec.from_dict(data)


def _sweep(quick: bool):
    results = {
        budget: Engine.from_spec(_fitting_spec(budget, quick)).run().training
        for budget in (None,) + BUDGETS_MB
    }
    oversized = Engine.from_spec(_oversized_spec(quick, cached=True)).run().training
    return results, oversized


def test_memory_tier_sweep(benchmark, request):
    quick = request.config.getoption("--quick")
    results, oversized = run_once(benchmark, _sweep, quick)

    uncached = results[None]
    rows = []
    for budget in BUDGETS_MB:
        result = results[budget]
        rows.append(
            {
                "gpu_budget_mb": budget,
                "hit_rate": result.extras["feature_cache_hit_rate"],
                "gpu_hits": result.extras["feature_cache_gpu_hits"],
                "pinned_hits": result.extras["feature_cache_pinned_hits"],
                "spill_hits": result.extras["feature_cache_spill_hits"],
                "steady_epoch_seconds": result.steady_epoch_seconds,
                "speedup_vs_uncached": (
                    uncached.steady_epoch_seconds / result.steady_epoch_seconds
                ),
                "final_loss": result.final_loss,
            }
        )

    print("\nfeature-cache GPU-budget sweep (quick workload)")
    print(f"{'budget MiB':>10} {'hit rate':>9} {'steady epoch (s)':>17} {'speedup':>8}")
    print(f"{'uncached':>10} {'-':>9} {uncached.steady_epoch_seconds:>17.6f} {'1.000':>8}")
    for row in rows:
        print(
            f"{row['gpu_budget_mb']:>10.0f} {row['hit_rate']:>9.3f} "
            f"{row['steady_epoch_seconds']:>17.6f} {row['speedup_vs_uncached']:>8.3f}"
        )
    print(
        f"oversized (cached): steady epoch {oversized.steady_epoch_seconds:.6f}s, "
        f"hit rate {oversized.extras['feature_cache_hit_rate']:.3f}"
    )
    write_bench_json(
        "memory",
        {
            "workload": "quick",
            "rows": rows,
            "uncached_steady_epoch_seconds": uncached.steady_epoch_seconds,
            "oversized": {
                "workload": "train-oversized",
                "steady_epoch_seconds": oversized.steady_epoch_seconds,
                "hit_rate": oversized.extras["feature_cache_hit_rate"],
                "final_loss": oversized.final_loss,
            },
        },
    )

    # Accounting-only invariant: every budget trains bit-identically.
    reference = uncached.loss_curve()
    for budget in BUDGETS_MB:
        assert results[budget].loss_curve() == reference
    # Acceptance: at 100% fit the cache never loses throughput, and the
    # repeated epochs actually hit the GPU tier.
    full_fit = results[BUDGETS_MB[-1]]
    assert full_fit.extras["feature_cache_gpu_hits"] > 0
    assert full_fit.steady_epoch_seconds <= uncached.steady_epoch_seconds
    # Acceptance: the oversized workload completes cached...
    assert oversized.final_loss == oversized.final_loss  # finite, not NaN
    # ...and is refused uncached.
    with pytest.raises(OutOfMemoryError):
        Engine.from_spec(_oversized_spec(quick, cached=False)).run()
