"""Benchmark: streaming serving latency — incremental reuse vs full recompute.

Replays one synthesized delta/request trace through two serving specs that
share the exact same trained model (trained once, injected into the second
engine) and initial graph state, both through the unified
:class:`repro.api.Engine`:

- **PiPAD-Serve** — incremental snapshot store, reuse-cache sourcing with
  delta-row patching, pipelined streams and tuner-chosen partitioning;
- **Recompute-Serve** — every batch recomputes all aggregations, ships full
  data and runs one snapshot at a time on the default stream (the naive
  forward path a training-only codebase would fall back to).

The assertion mirrors the serving acceptance criterion: the incremental
engine must win on mean and tail latency while actually hitting its cache.
"""

from __future__ import annotations

from conftest import run_once

from repro.api import Engine, RunSpec, ServingSpec, TraceSpec


def _run_serving_comparison(dataset: str, num_events: int):
    spec = RunSpec(
        dataset=dataset,
        model="tgcn",
        method="pipad",
        num_snapshots=16,
        frame_size=8,
        epochs=2,
        lr=5e-3,
        seed=3,
        pipad={"preparing_epochs": 1},
        serving=ServingSpec(
            window=8,
            max_batch_requests=8,
            max_delay_ms=1.0,
            trace=TraceSpec(
                num_events=num_events,
                request_fraction=0.7,
                nodes_per_request=8,
                mean_interarrival_ms=0.5,
                seed=13,
            ),
        ),
    )
    engine = Engine.from_spec(spec)
    trace = engine.default_trace()
    incremental = engine.serve(trace)

    naive_spec = spec.replace(
        serving=spec.serving.replace(
            enable_reuse=False, fixed_s_per=1, enable_pipeline=False
        )
    )
    # Same trained weights on both engines: inject the first engine's model
    # so the recompute baseline doesn't retrain (and cannot drift).
    naive = Engine.from_spec(
        naive_spec, graph=engine.graph, model=engine.model
    ).serve(trace)
    return incremental, naive


def test_serving_latency_incremental_vs_recompute(benchmark):
    incremental, naive = run_once(benchmark, _run_serving_comparison, "covid19_england", 200)
    print()
    for report in (incremental, naive):
        print(report.format())
    print(
        f"mean-latency speedup: {incremental.speedup_over(naive):.2f}x  "
        f"p99: {naive.p99_latency / incremental.p99_latency:.2f}x"
    )

    # Same trace, same request count on both engines.
    assert incremental.metrics.num_requests == naive.metrics.num_requests > 0
    # The incremental engine genuinely reuses; the naive one cannot.
    assert incremental.cache_hit_rate > 0.5
    assert naive.cache_hit_rate == 0.0
    # Incremental serving beats full recompute on mean and tail latency.
    assert incremental.metrics.mean_latency < naive.metrics.mean_latency
    assert incremental.p99_latency <= naive.p99_latency * 1.05
    # And it moves strictly fewer bytes over PCIe for the same answers.
    h2d_inc = incremental.breakdown.get("h2d", 0.0)
    h2d_naive = naive.breakdown.get("h2d", 0.0)
    assert h2d_inc < h2d_naive
