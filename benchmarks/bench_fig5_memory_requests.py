"""Benchmark: regenerate Fig. 5 (memory requests/transactions vs feature dim)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import format_experiment, run_experiment


def test_fig5_memory_requests(benchmark, bench_config):
    rows = run_once(benchmark, run_experiment, "fig5", bench_config)
    print("\n" + format_experiment("fig5", rows))
    # Paper: transactions barely change below dim 8, then rise; requests only
    # begin to rise once the dimension exceeds 32.
    assert rows[8]["transactions_per_nnz"] <= rows[2]["transactions_per_nnz"] * 1.25
    assert rows[32]["transactions_per_nnz"] > rows[8]["transactions_per_nnz"]
    assert rows[32]["requests_per_nnz"] <= rows[2]["requests_per_nnz"] * 1.5
    assert rows[128]["requests_per_nnz"] > rows[32]["requests_per_nnz"]
