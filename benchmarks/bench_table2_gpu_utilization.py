"""Benchmark: regenerate Table 2 (GPU utilization of the different methods)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import format_experiment, run_experiment


def test_table2_gpu_utilization(benchmark, light_config):
    rows = run_once(benchmark, run_experiment, "table2", light_config)
    print("\n" + format_experiment("table2", rows))
    for key, row in rows.items():
        for method, value in row.items():
            assert 0.0 < value <= 100.0, (key, method)
    # Paper: asynchronous variants keep the device busier than plain PyGT on
    # the large datasets, and the small datasets show markedly lower
    # utilization than the large ones (CPU-side latency dominates there).
    large = [row for key, row in rows.items() if "flickr" in key]
    small = [row for key, row in rows.items() if "covid" in key]
    for row in large:
        assert row["PyGT-A"] >= row["PyGT"] - 5.0
    if large and small:
        assert np.mean([r["PyGT"] for r in small]) < np.mean([r["PyGT"] for r in large])
