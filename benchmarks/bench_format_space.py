"""Benchmark: §4.1 space-overhead comparison of COO / CSR / sliced CSR."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import format_experiment, run_experiment


def test_format_space_overhead(benchmark, bench_config):
    rows = run_once(benchmark, run_experiment, "space_overhead", bench_config)
    print("\n" + format_experiment("space_overhead", rows))
    for dataset, row in rows.items():
        # Paper: the sliced CSR footprint normally falls between CSR and COO,
        # and drops below CSR on extremely sparse graphs whose empty rows own
        # no slices (the Youtube observation in §5.4).
        assert row["sliced_over_coo"] <= 1.10, dataset
        assert row["sliced_over_csr"] > 0.0, dataset
    # On the denser small-scale analogues the footprint sits at or above CSR,
    # while extremely sparse graphs (Youtube) drop below it — both as in §4.1/§5.4.
    if "covid19_england" in rows:
        assert rows["covid19_england"]["sliced_over_csr"] >= 0.95
    if "youtube" in rows:
        assert rows["youtube"]["sliced_over_csr"] < 1.0
