"""Benchmark: regenerate Fig. 3 (latency breakdown + SM utilization of PyGT)."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import format_experiment, run_experiment


def test_fig3_latency_breakdown(benchmark, light_config):
    rows = run_once(benchmark, run_experiment, "fig3", light_config)
    print("\n" + format_experiment("fig3", rows))
    transfer_fractions = [row["transfer_fraction"] for row in rows.values()]
    # Paper: data transfer occupies ~38.7 % of PyGT training on average and the
    # large datasets dominate that average; our large-dataset rows should show
    # a substantial transfer share.
    assert max(transfer_fractions) > 0.25
    # SM utilization stays well below full occupancy under PyGT (paper: ~41 %).
    assert np.mean([row["sm_utilization"] for row in rows.values()]) < 0.9
