"""Benchmark: §5.3 thread-utilization comparison (warp execution efficiency)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig11_parallel_gnn import thread_utilization


def test_thread_utilization(benchmark, bench_config):
    result = run_once(benchmark, thread_utilization, bench_config)
    print(
        f"\nwarp execution efficiency — PyGT-G: {result['pygt_g_thread_utilization']:.1%}, "
        f"PiPAD: {result['pipad_thread_utilization']:.1%}"
    )
    # Paper (input dim 2 / hidden 6): 57.2 % for PyGT-G vs 64.9 % for PiPAD.
    # The reproduction must show PiPAD ahead and both in a plausible band.
    assert result["pipad_thread_utilization"] > result["pygt_g_thread_utilization"]
    assert 0.1 < result["pygt_g_thread_utilization"] < 0.9
    assert result["pipad_thread_utilization"] <= 1.0
