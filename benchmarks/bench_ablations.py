"""Benchmark: ablation study over PiPAD's individual mechanisms."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import format_experiment, run_experiment


def test_pipad_ablations(benchmark, light_config):
    rows = run_once(
        benchmark, run_experiment, "ablations", light_config, dataset="hepth", model="tgcn"
    )
    print("\n" + format_experiment("ablations", rows))
    full = rows["full"]["epoch_seconds"]
    assert full > 0
    # Disabling an optimization never makes PiPAD meaningfully faster.
    for name, row in rows.items():
        assert row["slowdown_vs_full"] > 0.9, name
    # The pipeline and CUDA-Graph launching are load-bearing on this workload.
    assert rows["no_pipeline"]["slowdown_vs_full"] >= 1.0
    assert rows["no_cuda_graph"]["slowdown_vs_full"] >= 1.0
