"""Benchmark: prefetch-depth sweep of the staged datapipe.

Runs the pipeline-4gpu workload at prefetch depths 0/1/2/4 — each depth one
``RunSpec`` differing only in ``data.prefetch_depth`` — and prints the
steady-epoch table.  Depth 0 fully serializes host prep behind device
compute; any depth >= 1 overlaps the slice/gather/pin stages with the
previous partition's kernels, so the sweep isolates exactly what transparent
prefetching buys.  The assertions mirror the datapipe acceptance criteria:
prefetching must speed up the steady epoch while every depth trains
bit-identically.
"""

from __future__ import annotations

import json

from conftest import run_once, write_bench_json

from repro.api import Engine, RunSpec
from repro.api.cli import PRESETS

DEPTHS = (0, 1, 2, 4)


def _spec(depth: int, quick: bool) -> RunSpec:
    data = json.loads(json.dumps(PRESETS["pipeline-4gpu"]))  # deep copy
    if quick:
        data.update(num_snapshots=8, epochs=2)
    data["data"]["prefetch_depth"] = depth
    return RunSpec.from_dict(data)


def _sweep(quick: bool):
    return {
        depth: Engine.from_spec(_spec(depth, quick)).run().training
        for depth in DEPTHS
    }


def test_prefetch_depth_sweep(benchmark, request):
    quick = request.config.getoption("--quick")
    results = run_once(benchmark, _sweep, quick)

    rows = []
    baseline = results[0].steady_epoch_seconds
    for depth, result in results.items():
        rows.append(
            {
                "prefetch_depth": depth,
                "steady_epoch_seconds": result.steady_epoch_seconds,
                "simulated_seconds": result.simulated_seconds,
                "prefetch_host_seconds": result.extras["prefetch_host_seconds"],
                "speedup_vs_serial": baseline / result.steady_epoch_seconds,
                "final_loss": result.final_loss,
            }
        )

    print("\nprefetch-depth sweep (pipeline-4gpu workload)")
    header = f"{'depth':>5} {'steady epoch (s)':>17} {'speedup':>8} {'host prep (s)':>14}"
    print(header)
    for row in rows:
        print(
            f"{row['prefetch_depth']:>5} {row['steady_epoch_seconds']:>17.6f} "
            f"{row['speedup_vs_serial']:>8.3f} {row['prefetch_host_seconds']:>14.6f}"
        )
    write_bench_json("prefetch", {"workload": "pipeline-4gpu", "rows": rows})

    # Scheduling-only invariant: every depth trains bit-identically.
    reference = results[0].loss_curve()
    for depth in DEPTHS[1:]:
        assert results[depth].loss_curve() == reference
    # Acceptance criterion: overlapping prep beats fully serialized prep.
    for depth in DEPTHS[1:]:
        assert results[depth].steady_epoch_seconds < baseline
    # Depth is a bound on run-ahead, not a cost: deeper never slows the run.
    assert results[4].steady_epoch_seconds <= results[1].steady_epoch_seconds
