"""Benchmark: multi-GPU scaling of distributed PiPAD training.

Trains one workload at 1/2/4/8 devices — each device count expressed as a
``RunSpec`` with a ``device: {kind: "group"}`` topology and resolved through
:class:`repro.api.Engine` by the scaling experiment — and prints the scaling
table with the collective times itemized.  The assertion mirrors the
distributed acceptance criterion: >1.5x simulated-time speedup at 4 devices
over the single-device run, with the gradient all-reduce time reported in
the breakdown.
"""

from __future__ import annotations

from conftest import run_once, write_bench_json

from repro.experiments import format_experiment, run_experiment


def test_multi_gpu_scaling(benchmark, bench_config):
    config = bench_config.with_overrides(
        datasets=("flickr",), models=("tgcn",), epochs=3
    )
    rows = run_once(
        benchmark, run_experiment, "scaling", config, device_counts=(1, 2, 4, 8)
    )
    print("\n" + format_experiment("scaling", rows))
    write_bench_json("multi_gpu", {"experiment": "scaling", "rows": rows})

    by_devices = {int(row["devices"]): row for row in rows}
    assert by_devices[1]["speedup"] == 1.0
    # Acceptance criterion: >1.5x simulated-time speedup at 4 devices.
    assert by_devices[4]["speedup"] > 1.5
    # Scaling is monotone across the sweep.
    assert by_devices[2]["speedup"] > 1.0
    assert by_devices[8]["speedup"] >= by_devices[4]["speedup"]
    # The collective costs are itemized, not folded into compute.
    for devices, row in by_devices.items():
        if devices > 1:
            assert row["all_reduce_seconds"] > 0
            assert row["halo_exchange_seconds"] > 0
    # More devices never makes the gradient all-reduce free.
    assert by_devices[1]["all_reduce_seconds"] == 0.0
