"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper via the
experiment harness, prints the resulting rows (so the benchmark log doubles
as the reproduction record) and reports the wall-clock cost of regenerating
it through pytest-benchmark.  Sweeps are scaled down relative to the paper's
full grid so the whole harness completes in minutes; pass ``--full-sweep``
to use the paper's complete dataset/model grid.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import pytest

from repro.experiments import ExperimentConfig
from repro.telemetry.persistence import sanitize_floats


def pytest_addoption(parser):
    parser.addoption(
        "--full-sweep",
        action="store_true",
        default=False,
        help="run the paper's full dataset/model/method grid (slow)",
    )
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink the workloads (fewer snapshots, smaller frames) so the "
        "benchmark scripts double as a CI smoke run",
    )


def pytest_configure(config):
    if config.getoption("--full-sweep") and config.getoption("--quick"):
        raise pytest.UsageError("--full-sweep and --quick are mutually exclusive")


@pytest.fixture(scope="session")
def bench_config(request) -> ExperimentConfig:
    """Sweep used by the heavier end-to-end benchmarks."""
    if request.config.getoption("--full-sweep"):
        return ExperimentConfig.full()
    if request.config.getoption("--quick"):
        return ExperimentConfig(
            datasets=("flickr", "covid19_england"),
            models=("evolvegcn", "tgcn"),
            num_snapshots=10,
            frame_size=6,
            epochs=3,
        )
    return ExperimentConfig(
        datasets=("flickr", "youtube", "hepth", "covid19_england"),
        models=("evolvegcn", "tgcn"),
        num_snapshots=12,
        frame_size=8,
        epochs=3,
    )


@pytest.fixture(scope="session")
def light_config(request) -> ExperimentConfig:
    """Smaller sweep for benchmarks that would otherwise retrain everything."""
    if request.config.getoption("--full-sweep"):
        return ExperimentConfig.full()
    if request.config.getoption("--quick"):
        return ExperimentConfig(
            datasets=("covid19_england",),
            models=("evolvegcn",),
            num_snapshots=10,
            frame_size=6,
            epochs=3,
        )
    return ExperimentConfig(
        datasets=("flickr", "covid19_england"),
        models=("evolvegcn",),
        num_snapshots=12,
        frame_size=8,
        epochs=3,
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def _plain(value: Any) -> Any:
    """NumPy scalars -> Python scalars so the payload dumps as strict JSON."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def write_bench_json(name: str, payload: Any) -> Path:
    """Persist a benchmark's result rows as ``BENCH_<name>.json``.

    CI uploads these as artifacts so scaling numbers leave a trajectory
    across commits instead of living only in the job log.  The directory is
    taken from ``BENCH_JSON_DIR`` (default: current directory); non-finite
    floats use the repo's marker-string convention.
    """
    out_dir = Path(os.environ.get("BENCH_JSON_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    doc = sanitize_floats(_plain(payload))
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
