"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper via the
experiment harness, prints the resulting rows (so the benchmark log doubles
as the reproduction record) and reports the wall-clock cost of regenerating
it through pytest-benchmark.  Sweeps are scaled down relative to the paper's
full grid so the whole harness completes in minutes; pass ``--full-sweep``
to use the paper's complete dataset/model grid.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig


def pytest_addoption(parser):
    parser.addoption(
        "--full-sweep",
        action="store_true",
        default=False,
        help="run the paper's full dataset/model/method grid (slow)",
    )
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink the workloads (fewer snapshots, smaller frames) so the "
        "benchmark scripts double as a CI smoke run",
    )


def pytest_configure(config):
    if config.getoption("--full-sweep") and config.getoption("--quick"):
        raise pytest.UsageError("--full-sweep and --quick are mutually exclusive")


@pytest.fixture(scope="session")
def bench_config(request) -> ExperimentConfig:
    """Sweep used by the heavier end-to-end benchmarks."""
    if request.config.getoption("--full-sweep"):
        return ExperimentConfig.full()
    if request.config.getoption("--quick"):
        return ExperimentConfig(
            datasets=("flickr", "covid19_england"),
            models=("evolvegcn", "tgcn"),
            num_snapshots=10,
            frame_size=6,
            epochs=3,
        )
    return ExperimentConfig(
        datasets=("flickr", "youtube", "hepth", "covid19_england"),
        models=("evolvegcn", "tgcn"),
        num_snapshots=12,
        frame_size=8,
        epochs=3,
    )


@pytest.fixture(scope="session")
def light_config(request) -> ExperimentConfig:
    """Smaller sweep for benchmarks that would otherwise retrain everything."""
    if request.config.getoption("--full-sweep"):
        return ExperimentConfig.full()
    if request.config.getoption("--quick"):
        return ExperimentConfig(
            datasets=("covid19_england",),
            models=("evolvegcn",),
            num_snapshots=10,
            frame_size=6,
            epochs=3,
        )
    return ExperimentConfig(
        datasets=("flickr", "covid19_england"),
        models=("evolvegcn",),
        num_snapshots=12,
        frame_size=8,
        epochs=3,
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
