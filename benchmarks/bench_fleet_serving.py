"""Benchmark: fleet serving vs replicated round-robin sharding.

Replays one skewed, bursty trace (70 % of requests hammer shard 0's node
range, near-zero interarrival) against two 4-replica topologies built from
the same trained model:

- ``sharded`` — the round-robin :class:`ShardedServingEngine`: every replica
  holds the **full** serving window and queues grow without bound;
- ``fleet`` — the :class:`FleetServingEngine`: one node-sharded store
  (each replica accounts only its node range + halo rows), ownership
  routing with queue-depth admission control, and an elastic replica pool
  driven by the p99 SLO.

The assertions mirror the fleet acceptance criteria: per-replica store
memory drops by ~K, overload is shed (``rejected_requests > 0``) instead of
queued so the p99 of *admitted* requests beats round-robin under the same
burst, the autoscaler reacts to SLO pressure, and — with the reuse cache
off so incremental delta patches cannot diverge float32 rounding — admitted
predictions are bit-identical to the single-device scheduler.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from conftest import run_once, write_bench_json

from repro.distributed import (
    FleetConfig,
    build_fleet_serving_engine,
    build_sharded_serving_engine,
)
from repro.graph import load_dataset
from repro.nn import build_model
from repro.serving import ServingConfig, synthesize_serving_trace
from repro.serving.scheduler import _build_serving_scheduler

NUM_SHARDS = 4
SKEW_FRACTION = 0.7  # fraction of requests remapped into shard 0's range


COST_SCALE = 100.0  # slow the simulated compute so the burst saturates it


def _fleet_config() -> FleetConfig:
    return FleetConfig(
        num_shards=NUM_SHARDS,
        min_replicas=1,
        admission_limit=8,
        slo_p99_ms=1.0,
        scale_window=8,
        scale_cooldown=4,
    )


def _skewed_trace(graph, boundaries, num_events, seed=7):
    """Bursty trace with most requests concentrated on shard 0's nodes."""
    lo, hi = int(boundaries[0]), int(boundaries[1])
    rng = np.random.default_rng(seed)
    events = []
    for event in synthesize_serving_trace(
        graph[-1], num_events, seed=seed, mean_interarrival_ms=0.05, nodes_per_request=4
    ):
        if event.kind == "request" and rng.random() < SKEW_FRACTION:
            ids = lo + (np.asarray(event.node_ids, dtype=np.int64) % (hi - lo))
            event = dataclasses.replace(event, node_ids=ids)
        events.append(event)
    return events


def _compare(quick: bool):
    graph = load_dataset("youtube", num_snapshots=8 if quick else 12)
    model = build_model("tgcn", graph.feature_dim, 8, seed=0)
    config = ServingConfig(
        window=4 if quick else 8, max_batch_requests=8, max_delay_ms=0.5
    )
    num_events = 120 if quick else 300

    fleet = build_fleet_serving_engine(
        graph, model, _fleet_config(), config, scale=COST_SCALE
    )
    trace = _skewed_trace(graph, fleet.boundaries, num_events)
    fleet_report = fleet.run_trace(list(trace))

    sharded = build_sharded_serving_engine(
        graph, model, NUM_SHARDS, config, scale=COST_SCALE
    )
    sharded_report = sharded.run_trace(list(trace))
    return fleet, fleet_report, sharded_report, graph, model


def _parity_mismatches(graph, model) -> int:
    """Replay a short trace on fleet + single device; count prediction diffs.

    The reuse cache is disabled so the incremental delta patch (whose float32
    rounding depends on which session was warm) is out of the picture: any
    remaining mismatch would be a real routing/sharding numerics bug.
    """
    config = ServingConfig(
        window=4, max_batch_requests=4, max_delay_ms=0.5, enable_reuse=False
    )
    fleet = build_fleet_serving_engine(
        graph,
        model,
        FleetConfig(num_shards=NUM_SHARDS, min_replicas=NUM_SHARDS, admission_limit=1024),
        config,
    )
    single = _build_serving_scheduler(graph, model, config)
    fleet_preds, single_preds, pairs = {}, {}, []
    for event in synthesize_serving_trace(graph[-1], 40, seed=13):
        for result in fleet.pump(event.time):
            fleet_preds.update(result.predictions)
        for result in single.pump(event.time):
            single_preds.update(result.predictions)
        if event.kind == "delta":
            fleet.ingest(event.delta, at=event.time)
            single.ingest(event.delta, at=event.time)
        else:
            pairs.append(
                (
                    fleet.submit(event.node_ids, at=event.time),
                    single.submit(event.node_ids, at=event.time),
                )
            )
    for result in fleet.pump(None, force=True):
        fleet_preds.update(result.predictions)
    for result in single.pump(None, force=True):
        single_preds.update(result.predictions)
    assert pairs and all(fid is not None for fid, _ in pairs)
    return sum(
        not np.array_equal(fleet_preds[fid], single_preds[sid]) for fid, sid in pairs
    )


def test_fleet_vs_sharded(benchmark, request):
    quick = request.config.getoption("--quick")
    fleet, fleet_report, sharded_report, graph, model = run_once(
        benchmark, _compare, quick
    )

    fleet_bytes = fleet_report.extras["per_replica_store_bytes"]
    sharded_bytes = sharded_report.extras["per_replica_store_bytes"]
    memory_ratio = sharded_bytes / fleet_bytes
    mismatches = _parity_mismatches(graph, model)

    payload = {
        "workload": "youtube skewed burst",
        "num_shards": NUM_SHARDS,
        "skew_fraction": SKEW_FRACTION,
        "fleet": {
            "p99_latency_ms": fleet_report.metrics.p99_latency * 1e3,
            "admitted_requests": fleet_report.extras["admitted_requests"],
            "rejected_requests": fleet_report.extras["rejected_requests"],
            "scale_up_events": fleet_report.extras["scale_up_events"],
            "active_replicas": fleet_report.extras["active_replicas"],
            "per_replica_store_bytes": fleet_bytes,
            "halo_gather_bytes": fleet_report.extras["halo_gather_bytes"],
        },
        "sharded": {
            "p99_latency_ms": sharded_report.metrics.p99_latency * 1e3,
            "requests": float(sharded_report.metrics.num_requests),
            "per_replica_store_bytes": sharded_bytes,
        },
        "per_replica_memory_ratio": memory_ratio,
        "parity_mismatches": mismatches,
    }

    print("\nfleet vs round-robin sharded (youtube, skewed burst, K=4)")
    print(
        f"{'engine':>8} {'p99 (ms)':>10} {'store/replica (MB)':>19} "
        f"{'rejected':>9} {'scale-ups':>10}"
    )
    print(
        f"{'sharded':>8} {payload['sharded']['p99_latency_ms']:>10.3f} "
        f"{sharded_bytes / 1e6:>19.3f} {'-':>9} {'-':>10}"
    )
    print(
        f"{'fleet':>8} {payload['fleet']['p99_latency_ms']:>10.3f} "
        f"{fleet_bytes / 1e6:>19.3f} {payload['fleet']['rejected_requests']:>9.0f} "
        f"{payload['fleet']['scale_up_events']:>10.0f}"
    )
    print(f"per-replica memory ratio: {memory_ratio:.2f}x (K={NUM_SHARDS})")
    write_bench_json("fleet", payload)

    # Node-sharding cuts per-replica store memory by ~K (halo rows keep it
    # under exactly K).
    assert memory_ratio > 0.7 * NUM_SHARDS
    # Overload is shed, not queued...
    assert fleet_report.extras["rejected_requests"] > 0
    # ...so admitted requests see bounded queues and beat round-robin's p99.
    assert fleet_report.metrics.p99_latency < sharded_report.metrics.p99_latency
    # The burst pushes p99 over the SLO and the pool reacts.
    assert fleet_report.extras["scale_up_events"] >= 1
    # Scheduling-only invariant: admitted predictions match single device.
    assert mismatches == 0
