"""Benchmark: regenerate Table 1 (dataset statistics)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import format_experiment, run_experiment


def test_table1_datasets(benchmark, bench_config):
    rows = run_once(benchmark, run_experiment, "table1", bench_config)
    print("\n" + format_experiment("table1", rows))
    assert len(rows) == 7
    # Analogues preserve the paper's feature dimensions and snapshot ordering.
    assert rows["flickr"]["feature_dim"] == 2
    assert rows["hepth"]["feature_dim"] == 16
    # Topology change rates sit near the ~10 % the paper reports.
    for name, row in rows.items():
        if name != "pems08":
            assert 0.0 < row["analogue_avg_change_rate"] < 0.35
