"""Micro-benchmarks of the aggregation kernels (numerics + cost estimation).

Unlike the figure-level benchmarks these run multiple rounds, so the
pytest-benchmark statistics are meaningful for tracking the Python-side cost
of the kernels themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRMatrix
from repro.gpu import GPUSpec
from repro.kernels import GESpMMAggregation, PyGCOOAggregation, SlicedParallelAggregation

SPEC = GPUSpec()


def _adjacency(num_nodes=2000, avg_degree=4, seed=0):
    rng = np.random.default_rng(seed)
    m = num_nodes * avg_degree
    rows, cols = rng.integers(0, num_nodes, m), rng.integers(0, num_nodes, m)
    mask = rows != cols
    return CSRMatrix.from_edges(rows[mask], cols[mask], (num_nodes, num_nodes))


@pytest.fixture(scope="module")
def adjacency():
    return _adjacency()


@pytest.fixture(scope="module")
def features():
    return np.random.default_rng(1).random((2000, 16)).astype(np.float32)


@pytest.mark.parametrize("kernel_cls", [PyGCOOAggregation, GESpMMAggregation, SlicedParallelAggregation])
def test_kernel_forward_numerics(benchmark, adjacency, features, kernel_cls):
    kernel = kernel_cls(adjacency, SPEC)
    result = benchmark(kernel.forward, features)
    assert result.shape == features.shape


@pytest.mark.parametrize("kernel_cls", [PyGCOOAggregation, GESpMMAggregation, SlicedParallelAggregation])
def test_kernel_cost_estimation(benchmark, adjacency, kernel_cls):
    kernel = kernel_cls(adjacency, SPEC, scale=1000.0)
    cost = benchmark(kernel.forward_cost, (2000, 16))
    assert cost.execution_seconds(SPEC) > 0


def test_sliced_csr_construction(benchmark, adjacency):
    from repro.graph import SlicedCSRMatrix

    sliced = benchmark(SlicedCSRMatrix.from_csr, adjacency, 32)
    assert sliced.nnz == adjacency.nnz
