"""Shared DGNN training loop over the simulated device.

All trainers — the four PyGT variants here and PiPAD in
:mod:`repro.core.trainer` — derive from :class:`DGNNTrainerBase`.  The base
class owns the dataset, the model, the optimizer, the simulated GPU, the loss
definition, and the frame/epoch loops; subclasses customize

- how a frame is split into partitions,
- what data is transferred for each partition and on which stream,
- which aggregation kernel / provider executes the GNN part,
- whether inter-frame reuse and CUDA-Graph launching are active.

Numerics are always computed for real (the models genuinely train); the
simulated device only *accounts* for when each transfer and kernel would run
on the modelled hardware, which yields the end-to-end times, utilizations and
memory statistics the paper reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.results import EpochMetrics, TrainingResult
from repro.graph.datasets import get_dataset_spec
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.frame import DEFAULT_FRAME_SIZE, Frame, FrameIterator
from repro.graph.snapshot import GraphSnapshot
from repro.gpu.device import SimulatedGPU
from repro.gpu.kernel_cost import KernelCost
from repro.gpu.profiler import KernelCostCollector
from repro.gpu.spec import GPUSpec, HostSpec, PCIeSpec
from repro.gpu.timeline import TimelineOp
from repro.nn import build_model
from repro.nn.aggregation import DictAggregationCache, SequentialAggregationProvider
from repro.nn.base_model import DGNNModel
from repro.nn.context import ExecutionContext
from repro.telemetry.hooks import NULL_CALLBACK, TelemetryCallback
from repro.tensor import Adam, SGD, Tensor, no_grad, observe_ops
from repro.tensor.nn.loss import mse_loss
from repro.utils.validation import check_positive


@dataclass
class TrainerConfig:
    """Configuration shared by every trainer."""

    model: str = "tgcn"
    hidden_dim: Optional[int] = None
    frame_size: int = DEFAULT_FRAME_SIZE
    epochs: int = 3
    lr: float = 1e-3
    optimizer: str = "adam"
    seed: int = 0
    #: workload-extrapolation factor; ``None`` derives it from the dataset
    #: analogue (paper node count / analogue node count)
    cost_scale: Optional[float] = None
    gpu: GPUSpec = field(default_factory=GPUSpec)
    pcie: PCIeSpec = field(default_factory=PCIeSpec)
    host: HostSpec = field(default_factory=HostSpec)

    def __post_init__(self) -> None:
        check_positive("frame_size", self.frame_size)
        check_positive("epochs", self.epochs)
        check_positive("lr", self.lr)
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")


class DGNNTrainerBase:
    """Template-method trainer; subclasses define the execution strategy."""

    #: human-readable method name used in figures/tables
    method_name = "base"
    #: aggregation-kernel family for the sequential provider
    kernel_name = "coo"
    #: adjacency transfer format (``"coo"``, ``"csr"`` or ``"csr+csc"``)
    adjacency_format = "coo"
    #: whether transfers are asynchronous (separate stream, pinned memory)
    async_transfer = False
    #: whether the first-layer aggregation cache (inter-frame reuse) is active
    use_reuse = False
    #: whether kernels are launched through CUDA Graphs (reduced launch cost)
    use_cuda_graph = False

    def __init__(self, graph: DynamicGraph, config: Optional[TrainerConfig] = None) -> None:
        self.graph = graph
        self.config = config or TrainerConfig()
        self.device = SimulatedGPU(
            self.config.gpu, self.config.pcie, self.config.host, use_cuda_graph=self.use_cuda_graph
        )
        self.scale = self._resolve_scale()
        hidden = self.config.hidden_dim or self._default_hidden_dim()
        self.model: DGNNModel = build_model(
            self.config.model, graph.feature_dim, hidden, out_features=1, seed=self.config.seed
        )
        optim_cls = Adam if self.config.optimizer == "adam" else SGD
        self.optimizer = optim_cls(self.model.parameters(), lr=self.config.lr)
        self.frames = FrameIterator(graph, frame_size=self.config.frame_size)
        self.cache = DictAggregationCache() if self.use_reuse else None
        self.context = ExecutionContext(spec=self.config.gpu, scale=self.scale)
        #: telemetry sink; the engine swaps in a live CallbackList, standalone
        #: trainers keep the no-op null object
        self.hooks: TelemetryCallback = NULL_CALLBACK
        self._loss_history: List[float] = []
        self._epoch_boundaries: List[float] = [0.0]

    # ------------------------------------------------------------------ helpers
    def _sim_now(self) -> float:
        """Current simulated time hook events are stamped with.

        Group trainers override this with the group makespan so events line
        up with the multi-device clock.
        """
        return self.device.elapsed_seconds()

    def _resolve_scale(self) -> float:
        if self.config.cost_scale is not None:
            return float(self.config.cost_scale)
        dataset_name = self.graph.metadata.get("dataset")
        if dataset_name:
            spec = get_dataset_spec(str(dataset_name))
            return max(1.0, spec.paper.num_nodes / spec.config.num_nodes)
        return 1.0

    def _default_hidden_dim(self) -> int:
        hidden = self.graph.metadata.get("hidden_dim")
        if hidden:
            return int(hidden)
        # Paper §5.1: hidden 6 for 2-dim features (large graphs), 32 for 16-dim.
        return 6 if self.graph.feature_dim <= 2 else 32

    def _feature_tensor(self, snapshot: GraphSnapshot) -> Tensor:
        return Tensor(snapshot.features)

    def _target_tensor(self, snapshot: GraphSnapshot) -> Tensor:
        targets = snapshot.targets
        if targets is None:
            targets = np.zeros(snapshot.num_nodes, dtype=np.float32)
        return Tensor(targets.reshape(-1, 1))

    def _host_prep_seconds(self, snapshots: Sequence[GraphSnapshot]) -> float:
        host = self.config.host
        return len(snapshots) * host.snapshot_prep_us * 1e-6

    def _dispatch_seconds(self, num_launches: int) -> float:
        per_launch_us = (
            self.config.host.graph_dispatch_overhead_us
            if self.use_cuda_graph
            else self.config.host.dispatch_overhead_us
        )
        return num_launches * per_launch_us * 1e-6

    # ------------------------------------------------------------------ transfer planning
    def _cache_covers(self, snapshot: GraphSnapshot) -> bool:
        return self.cache is not None and self.cache.lookup(snapshot.timestep) is not None

    def _snapshot_transfer_bytes(self, snapshot: GraphSnapshot) -> float:
        """Host→device bytes needed before this snapshot can be processed."""
        cached = self._cache_covers(snapshot)
        nbytes = 0.0
        if cached:
            # The cached first-layer aggregation is shipped instead of the raw
            # features; the adjacency is only needed if deeper layers
            # re-aggregate hidden features.
            nbytes += snapshot.num_nodes * snapshot.feature_dim * 4
            if self.model.needs_topology_with_reuse:
                nbytes += snapshot.adjacency_bytes(self.adjacency_format)
        else:
            nbytes += snapshot.feature_bytes()
            nbytes += snapshot.adjacency_bytes(self.adjacency_format)
        # Per-node targets for the loss.
        nbytes += snapshot.num_nodes * 4
        return nbytes * self.scale

    # ------------------------------------------------------------------ frame execution
    def _make_partitions(self, frame: Frame) -> List[Tuple[GraphSnapshot, ...]]:
        """Split a frame into the snapshot groups processed together."""
        return [(snapshot,) for snapshot in frame]

    def _make_provider(self, snapshots: Sequence[GraphSnapshot]):
        return SequentialAggregationProvider(
            snapshots,
            kernel_name=self.kernel_name,
            spec=self.config.gpu,
            scale=self.scale,
            cache=self.cache,
            reusable_layers=self.model.reusable_aggregation_layers if self.use_reuse else (),
        )

    def _partition_context(self, snapshots: Sequence[GraphSnapshot]) -> ExecutionContext:
        return self.context

    def _host_stream(self) -> str:
        """Stream host-side data preparation runs on.

        With synchronous execution (plain PyGT) the Python loop interleaves
        host preparation, the blocking copy and the kernel launches, so host
        work serializes with device work on the default stream; asynchronous
        variants prepare data on a separate host thread/stream.
        """
        return "cpu" if self.async_transfer else "default"

    def _dispatch_stream(self) -> str:
        """Stream kernel-dispatch host time runs on.

        Eager execution issues every kernel from the Python thread, so the
        dispatch cost sits on the critical path of the compute stream (this
        is the CPU-side latency that keeps GPU utilization low on small
        graphs, Table 2).  A captured CUDA Graph is replayed with a single
        driver call, so its (much smaller) dispatch cost can overlap.
        """
        return "cpu" if self.use_cuda_graph else self._compute_stream()

    def _transfer_partition(
        self,
        snapshots: Sequence[GraphSnapshot],
        depends_on: Optional[Sequence[TimelineOp]],
    ) -> List[TimelineOp]:
        """Schedule host prep + H2D transfers for one partition."""
        host_op = self.device.host_op(
            self._host_prep_seconds(snapshots), label="host_prep", stream=self._host_stream()
        )
        nbytes = sum(self._snapshot_transfer_bytes(s) for s in snapshots)
        stream = "copy" if self.async_transfer else "default"
        transfer = self.device.transfer_h2d(
            nbytes,
            label=f"h2d_t{snapshots[0].timestep}",
            stream=stream,
            pinned=self.async_transfer,
            depends_on=[host_op] if depends_on is None else [host_op, *depends_on],
        )
        return [transfer]

    def _compute_stream(self) -> str:
        return "compute" if self.async_transfer else "default"

    def _before_frame(self, frame: Frame, epoch: int) -> None:
        """Hook invoked before each frame (PiPAD plans GPU-buffer residency here)."""

    def _launch_partition_kernels(
        self,
        costs: Sequence[KernelCost],
        snapshots: Sequence[GraphSnapshot],
        transfer_ops: Sequence[TimelineOp],
        last_compute: Sequence[TimelineOp],
    ) -> List[TimelineOp]:
        """Account one partition's forward kernels on the device(s).

        The distributed trainer overrides this to fan the launches out across
        a device group with per-shard cost scaling; the default schedules on
        the single simulated device.
        """
        self.device.host_op(
            self._dispatch_seconds(sum(c.launches for c in costs)),
            label="dispatch",
            stream=self._dispatch_stream(),
        )
        return self.device.launch_kernels(
            costs,
            label=f"fwd_t{snapshots[0].timestep}",
            stream=self._compute_stream(),
            depends_on=list(transfer_ops) + list(last_compute),
        )

    def _launch_backward(
        self, costs: Sequence[KernelCost], last_compute: Sequence[TimelineOp]
    ) -> List[TimelineOp]:
        """Account the frame's backward kernels (and, distributed, the gradient
        all-reduce that follows them)."""
        self.device.host_op(
            self._dispatch_seconds(sum(c.launches for c in costs)),
            label="dispatch_bwd",
            stream=self._dispatch_stream(),
        )
        return self.device.launch_kernels(
            costs,
            label="backward",
            stream=self._compute_stream(),
            depends_on=list(last_compute),
        )

    def _train_frame(self, frame: Frame, epoch: int) -> float:
        """Run forward/backward/update for one frame; returns the frame loss."""
        self._before_frame(frame, epoch)
        num_nodes = self.graph.num_nodes
        state = self.model.init_state(num_nodes)
        predictions: List[Tensor] = []
        last_compute: List[TimelineOp] = []
        collector = KernelCostCollector(self.config.gpu, num_nodes=num_nodes, scale=self.scale)

        for snapshots in self._make_partitions(frame):
            transfer_ops = self._transfer_partition(snapshots, depends_on=None)
            provider = self._make_provider(snapshots)
            features = [self._feature_tensor(s) for s in snapshots]
            with observe_ops(collector):
                outs, state = self.model.forward_partition(
                    provider, features, state, self._partition_context(snapshots)
                )
            costs = collector.drain()
            ops = self._launch_partition_kernels(costs, snapshots, transfer_ops, last_compute)
            last_compute = ops[-1:] if ops else last_compute
            predictions.extend(outs)

        # Frame loss on the last snapshot's prediction (forecast setting).
        target = self._target_tensor(frame[frame.size - 1])
        with observe_ops(collector):
            loss = mse_loss(predictions[-1], target)
            loss.backward()
        backward_costs = collector.drain()
        self._launch_backward(backward_costs, last_compute)
        # Optimizer step: small elementwise kernels over every parameter.
        self.optimizer.step()
        self.optimizer.zero_grad()
        self.device.transfer_d2h(4.0, label="loss_d2h")
        return float(loss.item())

    # ------------------------------------------------------------------ epochs
    def run_epoch(self, epoch: int) -> EpochMetrics:
        start = self.device.elapsed_seconds()
        start_breakdown = self.device.timeline.kind_seconds()
        hook_start = self._sim_now()
        self.hooks.on_epoch_start(epoch, hook_start)
        losses = []
        for frame in self.frames:
            frame_start = self._sim_now()
            loss = self._train_frame(frame, epoch)
            self.hooks.on_frame(frame.index, epoch, frame_start, self._sim_now(), loss)
            losses.append(loss)
        end = self.device.elapsed_seconds()
        end_breakdown = self.device.timeline.kind_seconds()
        metrics = EpochMetrics(
            epoch=epoch,
            simulated_seconds=end - start,
            loss=float(np.mean(losses)) if losses else 0.0,
            transfer_seconds=end_breakdown.get("h2d", 0.0) - start_breakdown.get("h2d", 0.0),
            compute_seconds=end_breakdown.get("kernel", 0.0) - start_breakdown.get("kernel", 0.0),
            cpu_seconds=end_breakdown.get("cpu", 0.0) - start_breakdown.get("cpu", 0.0),
            cache_hits=0,
            cache_misses=0,
        )
        self._loss_history.append(metrics.loss)
        self._epoch_boundaries.append(end)
        self.hooks.on_epoch_end(epoch, metrics, hook_start, self._sim_now())
        return metrics

    def train(self, epochs: Optional[int] = None) -> TrainingResult:
        """Run the full training and return the collected metrics."""
        epochs = epochs or self.config.epochs
        wall_start = time.perf_counter()
        epoch_metrics = [self.run_epoch(e) for e in range(epochs)]
        wall_seconds = time.perf_counter() - wall_start

        breakdown = self.device.breakdown()
        memory_stats = self.device.memory_statistics()
        return TrainingResult(
            method=self.method_name,
            model=self.config.model,
            dataset=self.graph.name,
            epochs=epochs,
            simulated_seconds=self.device.elapsed_seconds(),
            wall_seconds=wall_seconds,
            final_loss=epoch_metrics[-1].loss if epoch_metrics else 0.0,
            epoch_metrics=epoch_metrics,
            breakdown=breakdown,
            category_seconds=self.device.category_seconds(),
            gpu_utilization=self.device.gpu_utilization(),
            sm_utilization=self.device.sm_utilization(),
            memory_requests=memory_stats["requests"],
            memory_transactions=memory_stats["transactions"],
            avg_thread_ratio=self.device.average_thread_ratio(),
            peak_memory_bytes=self.device.peak_bytes,
            kernel_launches=sum(s.launches for s in self.device.kernel_stats.values()),
            extras=self._extra_metrics(),
        )

    def _extra_metrics(self) -> Dict[str, float]:
        return {}

    # ------------------------------------------------------------------ evaluation
    def evaluate(self, frame_index: int = -1) -> float:
        """Inference-only MSE on one frame (no gradient, no device accounting)."""
        frame = self.frames.frame(self.frames.num_frames - 1 if frame_index < 0 else frame_index)
        state = self.model.init_state(self.graph.num_nodes)
        predictions: List[Tensor] = []
        with no_grad():
            for snapshots in self._make_partitions(frame):
                provider = self._make_provider(snapshots)
                features = [self._feature_tensor(s) for s in snapshots]
                outs, state = self.model.forward_partition(
                    provider, features, state, self._partition_context(snapshots)
                )
                predictions.extend(outs)
            target = self._target_tensor(frame[frame.size - 1])
            loss = mse_loss(predictions[-1], target)
        return float(loss.item())
