"""The four PyGT baseline variants of the paper's evaluation (§5.1).

- **PyGT**: PyTorch Geometric Temporal as-is — one snapshot at a time,
  synchronous pageable transfers, COO gather/scatter aggregation, eager
  kernel launches, no reuse.
- **PyGT-A**: PyGT plus asynchronous transfers on a dedicated stream with
  pinned staging buffers.
- **PyGT-R**: PyGT-A plus the inter-frame reuse of first-layer aggregation
  results (cached on the host, re-shipped when needed).
- **PyGT-G**: PyGT-R with the PyG aggregation replaced by GE-SpMM, which
  also requires shipping the adjacency in both CSR and CSC orientation for
  the backward pass.
"""

from __future__ import annotations

from repro.baselines.base import DGNNTrainerBase


class PyGTTrainer(DGNNTrainerBase):
    """Canonical PyGT: synchronous transfers, COO aggregation, no reuse."""

    method_name = "PyGT"
    kernel_name = "coo"
    adjacency_format = "coo"
    async_transfer = False
    use_reuse = False
    use_cuda_graph = False


class PyGTAsyncTrainer(PyGTTrainer):
    """PyGT-A: asynchronous (stream-overlapped, pinned) data transfers."""

    method_name = "PyGT-A"
    async_transfer = True


class PyGTReuseTrainer(PyGTAsyncTrainer):
    """PyGT-R: PyGT-A plus inter-frame reuse of first-layer aggregations."""

    method_name = "PyGT-R"
    use_reuse = True


class PyGTGeSpMMTrainer(PyGTReuseTrainer):
    """PyGT-G: PyGT-R with the GE-SpMM aggregation kernel (CSR+CSC resident)."""

    method_name = "PyGT-G"
    kernel_name = "gespmm"
    adjacency_format = "csr+csc"
