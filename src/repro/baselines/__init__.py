"""Baseline trainers: PyGT and its incrementally enhanced variants."""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Type

from repro.baselines.base import DGNNTrainerBase, TrainerConfig
from repro.baselines.results import EpochMetrics, TrainingResult
from repro.baselines.pygt import (
    PyGTAsyncTrainer,
    PyGTGeSpMMTrainer,
    PyGTReuseTrainer,
    PyGTTrainer,
)
from repro.graph.dynamic_graph import DynamicGraph


def _registry() -> Dict[str, Type[DGNNTrainerBase]]:
    from repro.core.trainer import PiPADTrainer  # local import to avoid a cycle

    return {
        "pygt": PyGTTrainer,
        "pygt-a": PyGTAsyncTrainer,
        "pygt-r": PyGTReuseTrainer,
        "pygt-g": PyGTGeSpMMTrainer,
        "pipad": PiPADTrainer,
    }


#: method order used in the paper's figures
METHOD_ORDER: List[str] = ["PyGT", "PyGT-A", "PyGT-R", "PyGT-G", "PiPAD"]


def list_methods() -> List[str]:
    """Canonical method names, in figure order."""
    return list(METHOD_ORDER)


def _make_trainer(
    method: str,
    graph: DynamicGraph,
    config: Optional[TrainerConfig] = None,
    **kwargs,
) -> DGNNTrainerBase:
    """Registry-backed trainer construction (engine-internal path)."""
    key = method.lower().replace("_", "-")
    registry = _registry()
    if key not in registry:
        raise KeyError(f"unknown method {method!r}; available: {sorted(registry)}")
    return registry[key](graph, config, **kwargs)


def make_trainer(
    method: str,
    graph: DynamicGraph,
    config: Optional[TrainerConfig] = None,
    **kwargs,
) -> DGNNTrainerBase:
    """Instantiate a trainer by method name (``"pygt"``, ..., ``"pipad"``).

    Extra keyword arguments are forwarded to the trainer constructor (PiPAD
    accepts its own ``pipad_config``).

    .. deprecated::
        Construct trainers through :class:`repro.api.Engine` with a
        :class:`~repro.api.spec.RunSpec` instead; this shim remains for
        backward compatibility.
    """
    warnings.warn(
        "make_trainer is deprecated; use repro.api.Engine.from_spec with a "
        "RunSpec instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _make_trainer(method, graph, config, **kwargs)


__all__ = [
    "DGNNTrainerBase",
    "TrainerConfig",
    "EpochMetrics",
    "TrainingResult",
    "PyGTTrainer",
    "PyGTAsyncTrainer",
    "PyGTReuseTrainer",
    "PyGTGeSpMMTrainer",
    "METHOD_ORDER",
    "list_methods",
    "make_trainer",
]
