"""Training-result records shared by all trainers."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Mapping

from repro.telemetry.persistence import restore_floats, sanitize_floats


@dataclass
class EpochMetrics:
    """Metrics of one training epoch (simulated time plus numerics)."""

    epoch: int
    simulated_seconds: float
    loss: float
    transfer_seconds: float
    compute_seconds: float
    cpu_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return sanitize_floats(asdict(self))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EpochMetrics":
        return cls(**restore_floats(dict(data)))


@dataclass
class TrainingResult:
    """End-to-end outcome of a training run on the simulated device.

    ``simulated_seconds`` is the quantity the paper's end-to-end comparisons
    (Fig. 10) are about; ``wall_seconds`` is the real time this Python process
    spent and is only reported for transparency.
    """

    method: str
    model: str
    dataset: str
    epochs: int
    simulated_seconds: float
    wall_seconds: float
    final_loss: float
    epoch_metrics: List[EpochMetrics] = field(default_factory=list)
    breakdown: Dict[str, float] = field(default_factory=dict)
    category_seconds: Dict[str, float] = field(default_factory=dict)
    gpu_utilization: float = 0.0
    sm_utilization: float = 0.0
    memory_requests: float = 0.0
    memory_transactions: float = 0.0
    avg_thread_ratio: float = 1.0
    peak_memory_bytes: int = 0
    kernel_launches: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def per_epoch_seconds(self) -> float:
        return self.simulated_seconds / self.epochs if self.epochs else 0.0

    @property
    def steady_epoch_seconds(self) -> float:
        """Mean simulated seconds of the epochs after the first one.

        The first epoch includes one-off costs (cold reuse caches, PiPAD's
        preparing/profiling epoch); the paper trains 200 epochs, so the
        steady-state per-epoch time is the meaningful comparison quantity for
        short benchmark runs.
        """
        later = [m.simulated_seconds for m in self.epoch_metrics[1:]]
        if later:
            return float(sum(later) / len(later))
        return self.per_epoch_seconds

    def speedup_over(self, other: "TrainingResult") -> float:
        """``other`` time divided by this run's time (per-epoch, steady state)."""
        if self.simulated_seconds == 0:
            return float("inf")
        return other.simulated_seconds / self.simulated_seconds

    def loss_curve(self) -> List[float]:
        return [m.loss for m in self.epoch_metrics]

    # ------------------------------------------------------------------ persistence
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data view; non-finite floats become marker strings."""
        out = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "epoch_metrics"
        }
        out = sanitize_floats(out)
        out["epoch_metrics"] = [m.to_dict() for m in self.epoch_metrics]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrainingResult":
        payload = dict(data)
        epoch_metrics = [
            EpochMetrics.from_dict(m) for m in payload.pop("epoch_metrics", ())
        ]
        return cls(epoch_metrics=epoch_metrics, **restore_floats(payload))
