"""Sharded entry point for the streaming serving scheduler.

Scales the single-device :class:`~repro.serving.scheduler.ServingScheduler`
to a device group the way online inference tiers actually shard: one full
serving replica (store + session + simulated GPU) per device, request
traffic routed across the replicas, and graph deltas broadcast to all of
them so every shard serves the same head version.  Routing is deterministic
round-robin, so a trace replay is reproducible run to run — the property
the golden determinism test locks in for the single-device engine.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.datapipe import DataPipeConfig
from repro.graph.dynamic_graph import DynamicGraph
from repro.gpu.spec import GPUSpec, HostSpec, PCIeSpec
from repro.memory import MemoryConfig, aggregate_cache_stats
from repro.nn.base_model import DGNNModel
from repro.serving.deltas import GraphDelta, ServingEvent
from repro.serving.metrics import ServingMetrics, ServingReport
from repro.serving.scheduler import (
    BatchResult,
    ServingConfig,
    ServingScheduler,
    _build_serving_scheduler,
)
from repro.serving.store import DeltaReport
from repro.utils.validation import check_positive

#: offset separating one shard's batch ids from the next in merged output
_BATCH_ID_STRIDE = 1_000_000
#: per-replica breakdown keys that are ratios/horizons, not additive seconds
_NON_ADDITIVE_BREAKDOWN = ("makespan", "gpu_utilization", "sm_utilization")
#: per-replica reuse-stat keys that are gauges (cache sizes, buffer bytes),
#: not additive counters — summing them across K identical replicas reads as
#: a K-times-larger cache and becomes outright wrong under node-sharding
_NON_ADDITIVE_REUSE = (
    "cpu_cached_snapshots",
    "gpu_resident_snapshots",
    "gpu_buffer_bytes",
)


def _merge_stat_maps(
    maps: List[Dict[str, float]], non_additive: Tuple[str, ...]
) -> Dict[str, float]:
    """Merge per-replica stat dicts: sum counters, average gauge/ratio keys.

    Shared by the ``breakdown`` and ``reuse_stats`` merges so both follow one
    additive/non-additive split (callers may still override individual keys,
    e.g. ``makespan`` → max).
    """
    merged: Dict[str, float] = {}
    for stats in maps:
        for key, value in stats.items():
            if key not in non_additive:
                merged[key] = merged.get(key, 0.0) + value
    for key in non_additive:
        values = [stats[key] for stats in maps if key in stats]
        if values:
            merged[key] = float(np.mean(values))
    return merged


class ShardedServingEngine:
    """Fans request traffic across per-device serving replicas."""

    def __init__(self, replicas: List[ServingScheduler]) -> None:
        if not replicas:
            raise ValueError("need at least one serving replica")
        self.replicas = replicas
        self._next_shard = 0
        #: global request id -> (shard index, shard-local request id)
        self._routes: List[Tuple[int, int]] = []
        #: (shard index, shard-local request id) -> global request id
        self._global_ids: Dict[Tuple[int, int], int] = {}
        #: wall clock starts at first traffic, matching the single-device
        #: scheduler — building K replicas is provisioning, not serving time
        self._wall_start: Optional[float] = None

    def _touch_wall_clock(self) -> None:
        if self._wall_start is None:
            self._wall_start = time.perf_counter()

    @property
    def num_shards(self) -> int:
        return len(self.replicas)

    # ------------------------------------------------------------------ traffic
    def ingest(self, delta: GraphDelta, *, at: Optional[float] = None) -> List[DeltaReport]:
        """Broadcast a graph delta to every shard (all serve the same head)."""
        self._touch_wall_clock()
        return [replica.ingest(delta, at=at) for replica in self.replicas]

    def submit(self, node_ids: Iterable[int], *, at: Optional[float] = None) -> int:
        """Route one request to the next shard; returns a global request id."""
        self._touch_wall_clock()
        shard = self._next_shard
        self._next_shard = (self._next_shard + 1) % self.num_shards
        local_id = self.replicas[shard].submit(node_ids, at=at)
        return self._register_route(shard, local_id)

    def _register_route(self, shard: int, local_id: int) -> int:
        """Issue the next global request id for a shard-local submission."""
        global_id = len(self._routes)
        self._routes.append((shard, local_id))
        self._global_ids[(shard, local_id)] = global_id
        return global_id

    def route_of(self, request_id: int) -> Tuple[int, int]:
        """(shard index, shard-local id) a global request id resolved to."""
        return self._routes[request_id]

    def _to_global(self, shard: int, local_id: int) -> int:
        """Global id of a shard-local request.

        Strict by design: falling back to the local id would collide with
        already-issued global ids and silently mis-attribute predictions, so
        requests must enter through :meth:`submit`, never through a replica
        directly.
        """
        try:
            return self._global_ids[(shard, local_id)]
        except KeyError:
            raise KeyError(
                f"request {local_id} on shard {shard} was not submitted through "
                "ShardedServingEngine.submit(); submit requests via the engine "
                "so they receive a collision-free global id"
            ) from None

    def pump(self, now: Optional[float] = None, *, force: bool = False) -> List[BatchResult]:
        """Cut and execute due micro-batches on every shard.

        The returned results are re-keyed from shard-local ids to engine-level
        ones, so the sharded engine honours the same id contract as the
        single-device scheduler: prediction dicts use the global request ids
        :meth:`submit` handed out, and batch ids carry the same per-shard
        offset the merged report uses (shard-local ids collide across shards
        and must not leak out).
        """
        results: List[BatchResult] = []
        for shard, replica in enumerate(self.replicas):
            for result in replica.pump(now, force=force):
                results.append(
                    BatchResult(
                        batch_id=result.batch_id + shard * _BATCH_ID_STRIDE,
                        decision=result.decision,
                        completion_time=result.completion_time,
                        predictions={
                            self._to_global(shard, local_id): rows
                            for local_id, rows in result.predictions.items()
                        },
                    )
                )
        return results

    def run_trace(self, events: Iterable[ServingEvent]) -> ServingReport:
        """Replay a timestamped trace across the sharded engine."""
        self._touch_wall_clock()
        last_time = 0.0
        for event in sorted(events, key=lambda e: e.time):
            self.pump(event.time)
            if event.kind == "delta":
                assert event.delta is not None
                self.ingest(event.delta, at=event.time)
            else:
                assert event.node_ids is not None
                self.submit(event.node_ids, at=event.time)
                self.pump(event.time)
            last_time = event.time
        final = max([last_time] + [r.device.elapsed_seconds() for r in self.replicas])
        self.pump(final, force=True)
        return self.report()

    # ------------------------------------------------------------------ reporting
    def report(self) -> ServingReport:
        """One merged report over all shards.

        Latency records concatenate across shards (request ids map back to
        the global ids ``submit`` returned; batch ids are offset so they
        stay unique).  ``deltas_ingested`` is a logical per-engine count — a
        broadcast delta is one update, not ``K`` — so it merges as the max
        across replicas; ``rows_touched`` is fleet-wide patch *work* — every
        replica invalidates and re-patches its own cache copy — so it merges
        as the sum (replicas may see different traffic and touch different
        row counts; copying replica 0's value would under-count).
        """
        reports = [replica.report() for replica in self.replicas]
        merged = ServingMetrics()
        for shard, replica in enumerate(self.replicas):
            offset = shard * _BATCH_ID_STRIDE
            for record in replica.metrics.requests:
                merged.record_request(
                    dataclasses.replace(
                        record,
                        request_id=self._to_global(shard, record.request_id),
                        batch_id=record.batch_id + offset,
                    )
                )
            for batch in replica.metrics.batches:
                merged.record_batch(
                    dataclasses.replace(batch, batch_id=batch.batch_id + offset)
                )
        merged.deltas_ingested = max(
            replica.metrics.deltas_ingested for replica in self.replicas
        )
        merged.rows_touched = sum(
            replica.metrics.rows_touched for replica in self.replicas
        )

        # Kind-seconds and hit/miss counters add up across shards; horizons,
        # utilization ratios and cache-size gauges do not (summing K makespans
        # ~Kx-inflates the clock, summing K buffer gauges ~Kx-inflates the
        # cache) — those merge as the mean, and makespan as the max below.
        breakdown = _merge_stat_maps(
            [report.breakdown for report in reports], _NON_ADDITIVE_BREAKDOWN
        )
        breakdown["makespan"] = max(
            report.breakdown.get("makespan", 0.0) for report in reports
        )
        reuse_stats = _merge_stat_maps(
            [report.reuse_stats for report in reports], _NON_ADDITIVE_REUSE
        )
        extras: Dict[str, float] = {"num_shards": float(self.num_shards)}
        for shard, report in enumerate(reports):
            extras[f"shard{shard}_requests"] = float(report.metrics.num_requests)
        extras["per_replica_store_bytes"] = float(
            np.mean([replica.store.window_bytes() for replica in self.replicas])
        )
        # Feature-cache tier counters add up across replicas; the aggregate
        # recomputes the blended hit rate rather than summing ratios.
        cache_stats = [
            replica.feature_cache.stats()
            for replica in self.replicas
            if replica.feature_cache is not None
        ]
        if cache_stats:
            extras.update(aggregate_cache_stats(cache_stats))
        return ServingReport(
            engine=f"{reports[0].engine}-x{self.num_shards}",
            model=reports[0].model,
            dataset=reports[0].dataset,
            simulated_seconds=max(r.simulated_seconds for r in reports),
            wall_seconds=(
                0.0 if self._wall_start is None else time.perf_counter() - self._wall_start
            ),
            metrics=merged,
            breakdown=breakdown,
            reuse_stats=reuse_stats,
            gpu_utilization=float(np.mean([r.gpu_utilization for r in reports])),
            peak_memory_bytes=max(r.peak_memory_bytes for r in reports),
            extras=extras,
        )


def build_sharded_serving_engine(
    graph: DynamicGraph,
    model: DGNNModel,
    num_shards: int,
    config: Optional[ServingConfig] = None,
    *,
    gpu: Optional[GPUSpec] = None,
    pcie: Optional[PCIeSpec] = None,
    host: Optional[HostSpec] = None,
    scale: float = 1.0,
    data: Optional["DataPipeConfig"] = None,
    memory: Optional[MemoryConfig] = None,
) -> ShardedServingEngine:
    """Wire ``num_shards`` serving replicas behind one sharded entry point."""
    check_positive("num_shards", num_shards)
    replicas = [
        _build_serving_scheduler(
            graph,
            model,
            config,
            gpu=gpu,
            pcie=pcie,
            host=host,
            scale=scale,
            data=data,
            memory=memory,
        )
        for _ in range(num_shards)
    ]
    return ShardedServingEngine(replicas)
