"""Fleet-scale serving: node-sharded store, load-aware admission, elastic replicas.

:class:`FleetServingEngine` is the "millions of users" counterpart of the
replicated :class:`~repro.distributed.serving.ShardedServingEngine`.  Three
things change relative to round-robin replication:

**Node-sharded store.**  All replicas share one
:class:`~repro.serving.store.IncrementalSnapshotStore`, and a
:class:`~repro.graph.partition.GraphPartitioner` plan assigns each replica a
contiguous node range it *owns*.  A deployed shard holds only its own rows
(features + adjacency row range + halo rows) instead of a full window copy,
so per-replica store memory drops ~K-fold; the report accounts that
shard-local footprint per replica.  Requests whose nodes spill outside the
owner's range pay an explicit *halo gather* — a host op sized by the remote
rows times the window depth at the host gather bandwidth — scheduled through
the :attr:`~repro.serving.scheduler.ServingScheduler.pre_batch_ops` seam so
the batch's transfers wait on it.  Because the numerics still read the shared
store, predictions stay bit-identical to the single-device scheduler.

**Load-aware routing with admission control.**  Each request routes to the
active replica owning the most of its nodes, tie-broken by micro-batcher
queue depth.  When the chosen replica's queue depth has reached
``admission_limit`` the request is *shed*: :meth:`FleetServingEngine.submit`
returns ``None`` and the report surfaces ``rejected_requests``.  Shedding
bounds the tail latency of admitted traffic under bursts, which unbounded
round-robin queueing cannot.

**Elastic replica pool.**  ``num_shards`` replicas are provisioned, but only
``min_replicas`` start active; a rolling p99 over recently completed
requests is compared against ``slo_p99_ms`` on every submission, scaling the
active pool up (p99 above SLO) or down (p99 under half the SLO) within
``[min_replicas, max_replicas]``, with a cooldown between decisions.  Scale
events emit through the engine's telemetry hooks (``on_phase_start`` /
``on_phase_end``) and are counted in the report.  Inactive replicas keep
absorbing deltas so their caches are consistent the moment they activate.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.datapipe import DataPipeConfig
from repro.distributed.serving import _BATCH_ID_STRIDE, ShardedServingEngine
from repro.graph.csr import INDEX_BYTES
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.partition import PARTITION_MODES, GraphPartitioner
from repro.gpu.spec import GPUSpec, HostSpec, PCIeSpec
from repro.memory import MemoryConfig
from repro.nn.base_model import DGNNModel
from repro.serving.batcher import MicroBatch
from repro.serving.deltas import GraphDelta
from repro.serving.metrics import ServingReport
from repro.serving.scheduler import BatchResult, ServingConfig, ServingScheduler
from repro.serving.store import DeltaReport, IncrementalSnapshotStore
from repro.telemetry.hooks import NULL_CALLBACK, TelemetryCallback
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the fleet engine: sharding, admission and autoscaling."""

    #: provisioned replicas; also the number of node shards (pool ceiling)
    num_shards: int = 2
    #: replicas active at start (and the scale-down floor)
    min_replicas: int = 1
    #: scale-up ceiling; ``None`` means all provisioned shards
    max_replicas: Optional[int] = None
    #: per-replica queue depth at which new requests are shed
    admission_limit: int = 32
    #: p99 latency target (milliseconds, simulated time) driving autoscale
    slo_p99_ms: float = 50.0
    #: node-assignment strategy of the ownership plan (``"edges"``/``"nodes"``)
    partition_mode: str = "edges"
    #: completed requests in the rolling p99 window
    scale_window: int = 16
    #: admitted submissions between scale decisions
    scale_cooldown: int = 8

    def __post_init__(self) -> None:
        check_positive("num_shards", self.num_shards)
        check_positive("min_replicas", self.min_replicas)
        check_positive("admission_limit", self.admission_limit)
        check_positive("slo_p99_ms", self.slo_p99_ms)
        check_positive("scale_window", self.scale_window)
        check_positive("scale_cooldown", self.scale_cooldown)
        ceiling = self.num_shards if self.max_replicas is None else self.max_replicas
        if not self.min_replicas <= ceiling <= self.num_shards:
            raise ValueError(
                f"need min_replicas <= max_replicas <= num_shards, got "
                f"min={self.min_replicas} max={ceiling} shards={self.num_shards}"
            )
        if self.partition_mode not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition mode {self.partition_mode!r}; expected one "
                f"of {PARTITION_MODES}"
            )

    @property
    def replica_ceiling(self) -> int:
        return self.num_shards if self.max_replicas is None else self.max_replicas


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscale decision of the elastic pool."""

    direction: str  # "up" | "down"
    active_replicas: int  # pool size *after* the decision
    at: float  # simulated time of the triggering submission
    p99_ms: float  # rolling p99 that triggered it


class FleetServingEngine(ShardedServingEngine):
    """Node-sharded, admission-controlled, autoscaling serving fleet.

    Inherits the id bookkeeping, pump re-keying, trace replay and report
    merging of :class:`ShardedServingEngine`; overrides ingestion (shared
    store, applied once), routing (ownership + queue depth + admission) and
    extends the merged report with fleet accounting.
    """

    def __init__(
        self,
        replicas: List[ServingScheduler],
        store: IncrementalSnapshotStore,
        config: Optional[FleetConfig] = None,
    ) -> None:
        super().__init__(replicas)
        self.fleet_config = config or FleetConfig()
        if self.fleet_config.num_shards != len(replicas):
            raise ValueError(
                f"FleetConfig.num_shards={self.fleet_config.num_shards} but "
                f"{len(replicas)} replicas were provided"
            )
        for replica in replicas:
            if replica.store is not store:
                raise ValueError(
                    "fleet replicas must share one IncrementalSnapshotStore; "
                    "build them through build_fleet_serving_engine"
                )
        self.store = store
        #: engine-level telemetry sink (scale events); the runtime swaps in a
        #: live CallbackList alongside the per-replica hooks
        self.hooks: TelemetryCallback = NULL_CALLBACK
        partitioner = GraphPartitioner(
            self.fleet_config.num_shards, mode=self.fleet_config.partition_mode
        )
        #: persistent node-ownership boundaries (length ``num_shards + 1``)
        self.boundaries = partitioner.plan(store.window_snapshots())
        self._partitioner = partitioner
        self._active = self.fleet_config.min_replicas
        self._since_scale = self.fleet_config.scale_cooldown
        self.rejected_requests = 0
        self.scale_events: List[ScaleEvent] = []
        self.halo_gather_bytes = 0.0
        self.halo_gather_seconds = 0.0
        self.halo_gather_batches = 0
        #: per-shard outstanding requests (queued + in flight), maintained
        #: incrementally by submit/pump instead of re-scanned from the
        #: ever-growing request records on every admission decision
        self._outstanding = [0] * self.num_shards
        #: per-shard min-heaps of (completion_time, finished requests);
        #: ``pump`` pushes as batches execute, ``queue_depth`` drains <= now
        self._completions: List[List[Tuple[float, int]]] = [
            [] for _ in range(self.num_shards)
        ]
        for shard in range(self.num_shards):
            replicas[shard].pre_batch_ops = self._make_halo_gather(shard)
            # Scope each replica's feature cache to the node rows it owns:
            # blocks keyed outside the owner range would alias rows another
            # replica serves, and the halo seam already charges remote rows.
            replicas[shard].scope_feature_cache(
                int(self.boundaries[shard]), int(self.boundaries[shard + 1])
            )

    # ------------------------------------------------------------------ pool state
    @property
    def active_replicas(self) -> int:
        """Replicas currently receiving traffic (a prefix of the pool)."""
        return self._active

    def owner_of(self, node_id: int) -> int:
        """Shard owning a node id under the persistent partition plan."""
        return int(np.searchsorted(self.boundaries, node_id, side="right") - 1)

    # ------------------------------------------------------------------ halo gather
    def _make_halo_gather(self, shard: int):
        """Per-replica ``pre_batch_ops`` hook charging boundary-row gathers."""
        replica = self.replicas[shard]
        lo, hi = int(self.boundaries[shard]), int(self.boundaries[shard + 1])

        def gather(batch: MicroBatch) -> List[object]:
            remote = int(np.count_nonzero((batch.node_ids < lo) | (batch.node_ids >= hi)))
            if remote == 0:
                return []
            store = replica.store
            gather_bytes = (
                remote * store.feature_dim * 4.0 * store.window_size * replica.scale
            )
            seconds = gather_bytes / (replica.device.host.gather_bandwidth_gbs * 1e9)
            op = replica.device.host_op(
                seconds,
                label=f"halo_gather_b{batch.batch_id}",
                stream="cpu_prep" if replica.config.enable_pipeline else "default",
                not_before=batch.formed_time,
            )
            self.halo_gather_bytes += gather_bytes
            self.halo_gather_seconds += seconds
            self.halo_gather_batches += 1
            return [op]

        return gather

    # ------------------------------------------------------------------ ingestion
    def ingest(self, delta: GraphDelta, *, at: Optional[float] = None) -> List[DeltaReport]:
        """Apply a delta once to the shared store; every replica absorbs it.

        Inactive replicas absorb too — their caches must be consistent the
        moment a scale-up routes traffic at them.  Returns the single
        :class:`DeltaReport` (in a list, for signature compatibility with the
        replicated engine).
        """
        self._touch_wall_clock()
        report = self.store.apply(delta)
        for replica in self.replicas:
            replica.absorb_delta(report, at=at)
        return [report]

    # ------------------------------------------------------------------ routing
    def queue_depth(self, shard: int, now: float) -> int:
        """Outstanding requests on a replica: queued plus in flight.

        A request stays "in flight" until its simulated completion time
        passes — admission must see the device backlog, not just the
        micro-batcher's queue, or small forced batches pile up on a hot
        replica far beyond the admission limit.  The depth is maintained
        incrementally: :meth:`submit` counts admissions, :meth:`pump`
        records batch completion times, and this query drains completions
        up to ``now`` — O(log batches) amortised instead of re-scanning
        every request record ever completed on each admission decision.
        """
        heap = self._completions[shard]
        while heap and heap[0][0] <= now:
            _, finished = heapq.heappop(heap)
            self._outstanding[shard] -= finished
        return self._outstanding[shard]

    def _route(self, ids: np.ndarray, now: float) -> Optional[int]:
        """Owner-most routing over the active pool with admission control."""
        active = range(self._active)
        owned = [
            int(
                np.count_nonzero(
                    (ids >= self.boundaries[s]) & (ids < self.boundaries[s + 1])
                )
            )
            for s in active
        ]
        best = max(owned)
        candidates = [s for s in active if owned[s] == best]
        depths = {s: self.queue_depth(s, now) for s in candidates}
        shard = min(candidates, key=lambda s: depths[s])
        if depths[shard] >= self.fleet_config.admission_limit:
            return None
        return shard

    def submit(
        self, node_ids: Iterable[int], *, at: Optional[float] = None
    ) -> Optional[int]:
        """Route one request through admission control.

        Returns the global request id, or ``None`` when every eligible
        replica is at its admission limit and the request is shed.
        """
        self._touch_wall_clock()
        ids = np.asarray(list(node_ids), dtype=np.int64)
        now = at if at is not None else max(
            replica.device.elapsed_seconds() for replica in self.replicas
        )
        self._maybe_scale(now)
        shard = self._route(ids, now)
        if shard is None:
            self.rejected_requests += 1
            return None
        local_id = self.replicas[shard].submit(ids, at=at)
        # Count only after the replica accepted the request — submit raises
        # on out-of-range node ids and a failed submission is not backlog.
        self._outstanding[shard] += 1
        return self._register_route(shard, local_id)

    def pump(self, now: Optional[float] = None, *, force: bool = False) -> List[BatchResult]:
        """Pump every shard, then account completions and re-check scale.

        Completion times feed the per-shard admission heaps, and every pump
        tick — :meth:`run_trace` issues one per trace event — drives the
        autoscaler, so an idle fleet whose rolling p99 has headroom drains
        back down to ``min_replicas`` even when no submissions arrive to
        trigger a decision.
        """
        results = super().pump(now, force=force)
        for result in results:
            shard = result.batch_id // _BATCH_ID_STRIDE
            heapq.heappush(
                self._completions[shard],
                (result.completion_time, len(result.predictions)),
            )
        tick = (
            now
            if now is not None
            else max(replica.device.elapsed_seconds() for replica in self.replicas)
        )
        self._maybe_scale(tick)
        return results

    # ------------------------------------------------------------------ autoscale
    def _recent_p99_seconds(self) -> float:
        """Rolling p99 over the most recently completed requests, fleet-wide."""
        records = [
            record
            for replica in self.replicas
            for record in replica.metrics.requests
        ]
        if not records:
            return float("nan")
        records.sort(key=lambda r: (r.completion_time, r.arrival_time))
        recent = records[-self.fleet_config.scale_window :]
        return float(np.percentile([r.latency for r in recent], 99.0))

    def _maybe_scale(self, now: float) -> None:
        cfg = self.fleet_config
        if self._since_scale < cfg.scale_cooldown:
            self._since_scale += 1
            return
        p99 = self._recent_p99_seconds()
        if math.isnan(p99):
            return
        p99_ms = p99 * 1e3
        if p99_ms > cfg.slo_p99_ms and self._active < cfg.replica_ceiling:
            self._active += 1
            self._emit_scale("up", now, p99_ms)
        elif p99_ms < 0.5 * cfg.slo_p99_ms and self._active > cfg.min_replicas:
            self._active -= 1
            self._emit_scale("down", now, p99_ms)

    def _emit_scale(self, direction: str, now: float, p99_ms: float) -> None:
        self._since_scale = 0
        event = ScaleEvent(
            direction=direction, active_replicas=self._active, at=now, p99_ms=p99_ms
        )
        self.scale_events.append(event)
        phase = f"fleet_scale_{direction}_to_{self._active}"
        self.hooks.on_phase_start(phase, now)
        self.hooks.on_phase_end(phase, now)

    # ------------------------------------------------------------------ reporting
    def shard_store_bytes(self) -> List[float]:
        """Store bytes a deployed replica of each shard would hold today.

        Per window snapshot: the shard's feature-row slice, a compacted CSR of
        its adjacency row range, and the halo feature rows it caches to
        aggregate across the boundary.  The shared in-process store keeps the
        full window once; this is the per-node accounting the node-sharded
        deployment is built to achieve (vs. ``window_bytes()`` per replica in
        the replicated engine).
        """
        snapshots = self.store.window_snapshots()
        num_nodes = self.store.num_nodes
        feature_row_bytes = [
            snap.feature_bytes() / max(1, num_nodes) for snap in snapshots
        ]
        totals = [0.0] * self.num_shards
        for snap, row_bytes in zip(snapshots, feature_row_bytes):
            for shard in self._partitioner.shard_snapshot(snap, self.boundaries):
                local_adjacency = (
                    2 * shard.num_edges + shard.num_local_nodes + 1
                ) * INDEX_BYTES
                totals[shard.device] += (
                    shard.num_local_nodes * row_bytes
                    + local_adjacency
                    + shard.halo_feature_bytes(self.store.feature_dim)
                )
        return totals

    def report(self) -> ServingReport:
        """Merged report plus fleet accounting (admission, scaling, halo)."""
        merged = super().report()
        merged.engine = f"PiPAD-Fleet-x{self.num_shards}"
        shard_bytes = self.shard_store_bytes()
        cfg = self.fleet_config
        merged.extras.update(
            {
                "admitted_requests": float(len(self._routes)),
                "rejected_requests": float(self.rejected_requests),
                "active_replicas": float(self._active),
                "min_replicas": float(cfg.min_replicas),
                "max_replicas": float(cfg.replica_ceiling),
                "scale_up_events": float(
                    sum(1 for e in self.scale_events if e.direction == "up")
                ),
                "scale_down_events": float(
                    sum(1 for e in self.scale_events if e.direction == "down")
                ),
                "halo_gather_bytes": float(self.halo_gather_bytes),
                "halo_gather_seconds": float(self.halo_gather_seconds),
                "halo_gather_batches": float(self.halo_gather_batches),
                # node-sharded footprint overrides the replicated full-window
                # figure the base merge reports
                "per_replica_store_bytes": float(np.mean(shard_bytes)),
                "fleet_store_bytes": float(self.store.window_bytes()),
                "prefetch_depth": float(self.replicas[0].data.prefetch_depth),
                "prefetch_host_seconds": float(
                    sum(
                        replica.prefetcher.stats().get("prefetch_host_seconds", 0.0)
                        for replica in self.replicas
                    )
                ),
            }
        )
        for shard, value in enumerate(shard_bytes):
            merged.extras[f"shard{shard}_store_bytes"] = float(value)
        return merged


def build_fleet_serving_engine(
    graph: Union[DynamicGraph, IncrementalSnapshotStore],
    model: DGNNModel,
    fleet: Optional[FleetConfig] = None,
    config: Optional[ServingConfig] = None,
    *,
    gpu: Optional[GPUSpec] = None,
    pcie: Optional[PCIeSpec] = None,
    host: Optional[HostSpec] = None,
    scale: float = 1.0,
    data: Optional[DataPipeConfig] = None,
    memory: Optional[MemoryConfig] = None,
) -> FleetServingEngine:
    """Wire a node-sharded fleet: one shared store, ``num_shards`` replicas."""
    fleet = fleet or FleetConfig()
    config = config or ServingConfig()
    if isinstance(graph, IncrementalSnapshotStore):
        store = graph
        dataset = "serving"
    else:
        store = IncrementalSnapshotStore(graph, window=config.window, host=host)
        dataset = graph.name
    replicas = [
        ServingScheduler(
            model,
            store,
            config,
            gpu=gpu,
            pcie=pcie,
            host=host,
            scale=scale,
            dataset=dataset,
            data=data,
            memory=memory,
        )
        for _ in range(fleet.num_shards)
    ]
    return FleetServingEngine(replicas, store, fleet)
