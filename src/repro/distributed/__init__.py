"""Multi-GPU sharded execution: partitioner → device group → collectives → trainer.

This package is the façade of the distributed subsystem; the implementation
lives next to its single-device counterparts so each layer stays cohesive:

- :class:`~repro.graph.partition.GraphPartitioner` (``repro.graph``) shards
  the node set across devices with halo-node bookkeeping and per-shard
  overlap decompositions;
- :class:`~repro.gpu.interconnect.Interconnect` and
  :class:`~repro.gpu.device_group.DeviceGroup` (``repro.gpu``) model the
  NVLink/PCIe peer links and coordinate ``K`` simulated-GPU timelines with
  cross-device dependency edges and ring collectives;
- :class:`~repro.core.distributed_trainer.DistributedTrainer`
  (``repro.core``) runs data-parallel PiPAD training over the shards with
  halo exchanges, state all-gathers and per-frame gradient all-reduce;
- :class:`~repro.core.pipeline_trainer.PipelineTrainer` (``repro.core``) is
  the frame-pipeline alternative: a
  :class:`~repro.graph.partition.FramePartitioner` shards the *snapshot
  groups* instead of the node set, and the recurrent state hops between
  stages over point-to-point ``DeviceGroup.send`` transfers;
- :class:`ShardedServingEngine` (here) is the sharded entry point for the
  streaming serving scheduler: requests fan out across per-device serving
  replicas while graph deltas broadcast to every shard;
- :class:`FleetServingEngine` (here) is its fleet-scale successor: one
  node-sharded store shared by the replicas, ownership routing with
  queue-depth admission control, and an elastic replica pool that scales on
  p99/SLO pressure.
"""

from repro.core.distributed_trainer import DistributedConfig, DistributedTrainer
from repro.core.pipeline_trainer import PipelineConfig, PipelineTrainer
from repro.distributed.fleet import (
    FleetConfig,
    FleetServingEngine,
    ScaleEvent,
    build_fleet_serving_engine,
)
from repro.distributed.serving import ShardedServingEngine, build_sharded_serving_engine
from repro.gpu.device_group import COMM_STREAM, RESOURCE_PEER_LINK, DeviceGroup
from repro.gpu.interconnect import NVLINK, PCIE_PEER, Interconnect, LinkSpec
from repro.graph.partition import (
    PARTITION_MODES,
    SCHEDULE_MODES,
    FramePartitioner,
    FrameStage,
    GraphPartitioner,
    ShardGroup,
    SnapshotShard,
)

__all__ = [
    "COMM_STREAM",
    "DeviceGroup",
    "DistributedConfig",
    "DistributedTrainer",
    "FleetConfig",
    "FleetServingEngine",
    "FramePartitioner",
    "FrameStage",
    "GraphPartitioner",
    "Interconnect",
    "LinkSpec",
    "NVLINK",
    "PARTITION_MODES",
    "PCIE_PEER",
    "PipelineConfig",
    "PipelineTrainer",
    "RESOURCE_PEER_LINK",
    "SCHEDULE_MODES",
    "ScaleEvent",
    "ShardGroup",
    "ShardedServingEngine",
    "SnapshotShard",
    "build_fleet_serving_engine",
    "build_sharded_serving_engine",
]
