"""Loss functions."""

from __future__ import annotations

from repro.tensor import ops
from repro.tensor.tensor import Tensor


def _check_same_shape(prediction: Tensor, target: Tensor) -> None:
    if prediction.shape != target.shape:
        raise ValueError(
            f"prediction shape {prediction.shape} does not match target shape {target.shape}"
        )


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    _check_same_shape(prediction, target)
    diff = prediction - target
    return ops.mean(diff * diff)


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error (via a smooth |x| = sqrt(x^2 + eps) surrogate)."""
    _check_same_shape(prediction, target)
    diff = prediction - target
    return ops.mean(ops.power(diff * diff + Tensor(1e-12), 0.5))


def bce_with_logits_loss(logits: Tensor, target: Tensor) -> Tensor:
    """Numerically stable binary cross-entropy on logits.

    Uses ``max(x, 0) - x*y + log(1 + exp(-|x|))``; the max/abs terms are
    computed with differentiable primitives (relu / two relus).
    """
    _check_same_shape(logits, target)
    positive_part = ops.relu(logits)
    abs_logits = ops.relu(logits) + ops.relu(-logits)
    log_term = ops.log(Tensor(1.0) + ops.exp(-abs_logits))
    return ops.mean(positive_part - logits * target + log_term)


def cross_entropy_loss(logits: Tensor, target_one_hot: Tensor) -> Tensor:
    """Softmax cross-entropy against one-hot targets of the same shape."""
    _check_same_shape(logits, target_one_hot)
    log_probs = ops.log(ops.softmax(logits, axis=-1) + Tensor(1e-12))
    per_row = ops.sum(log_probs * target_one_hot, axis=-1)
    return -ops.mean(per_row)
