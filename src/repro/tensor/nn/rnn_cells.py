"""Recurrent cells (LSTM / GRU) used by the DGNN time-dependent components."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.tensor import ops
from repro.tensor.function import op_scope
from repro.tensor.nn import init
from repro.tensor.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng


class LSTMCell(Module):
    """A standard LSTM cell operating on ``(batch, input_size)`` inputs.

    Gate layout along the last axis of the packed weights is
    ``[input, forget, cell, output]``.
    """

    def __init__(self, input_size: int, hidden_size: int, seed: SeedLike = None) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = as_rng(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            init.xavier_uniform((input_size, 4 * hidden_size), seed=rng), name="weight_ih"
        )
        self.weight_hh = Parameter(
            init.xavier_uniform((hidden_size, 4 * hidden_size), seed=rng), name="weight_hh"
        )
        self.bias = Parameter(init.zeros(4 * hidden_size), name="bias")

    def init_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        """Zero-initialized ``(h, c)`` state for a batch of ``batch`` rows."""
        return (
            Tensor(init.zeros(batch, self.hidden_size)),
            Tensor(init.zeros(batch, self.hidden_size)),
        )

    def forward(
        self, x: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None
    ) -> Tuple[Tensor, Tensor]:
        if state is None:
            state = self.init_state(x.shape[0])
        h_prev, c_prev = state
        with op_scope("rnn"):
            gates = x @ self.weight_ih + h_prev @ self.weight_hh + self.bias
            hs = self.hidden_size
            i_gate = ops.sigmoid(gates[:, 0 * hs : 1 * hs])
            f_gate = ops.sigmoid(gates[:, 1 * hs : 2 * hs])
            g_gate = ops.tanh(gates[:, 2 * hs : 3 * hs])
            o_gate = ops.sigmoid(gates[:, 3 * hs : 4 * hs])
            c_next = f_gate * c_prev + i_gate * g_gate
            h_next = o_gate * ops.tanh(c_next)
        return h_next, c_next


class GRUCell(Module):
    """A standard GRU cell operating on ``(batch, input_size)`` inputs.

    Gate layout along the last axis is ``[reset, update, new]``.
    EvolveGCN uses this cell directly on weight matrices (each weight row is
    treated as one batch element), T-GCN wires graph convolutions into the
    gate inputs.
    """

    def __init__(self, input_size: int, hidden_size: int, seed: SeedLike = None) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = as_rng(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            init.xavier_uniform((input_size, 3 * hidden_size), seed=rng), name="weight_ih"
        )
        self.weight_hh = Parameter(
            init.xavier_uniform((hidden_size, 3 * hidden_size), seed=rng), name="weight_hh"
        )
        self.bias_ih = Parameter(init.zeros(3 * hidden_size), name="bias_ih")
        self.bias_hh = Parameter(init.zeros(3 * hidden_size), name="bias_hh")

    def init_state(self, batch: int) -> Tensor:
        return Tensor(init.zeros(batch, self.hidden_size))

    def forward(self, x: Tensor, h_prev: Optional[Tensor] = None) -> Tensor:
        if h_prev is None:
            h_prev = self.init_state(x.shape[0])
        hs = self.hidden_size
        with op_scope("rnn"):
            gi = x @ self.weight_ih + self.bias_ih
            gh = h_prev @ self.weight_hh + self.bias_hh
            r_gate = ops.sigmoid(gi[:, 0 * hs : 1 * hs] + gh[:, 0 * hs : 1 * hs])
            z_gate = ops.sigmoid(gi[:, 1 * hs : 2 * hs] + gh[:, 1 * hs : 2 * hs])
            n_gate = ops.tanh(gi[:, 2 * hs : 3 * hs] + r_gate * gh[:, 2 * hs : 3 * hs])
            return (Tensor(1.0) - z_gate) * n_gate + z_gate * h_prev
