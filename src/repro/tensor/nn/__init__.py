"""Neural-network building blocks over the autograd tensor."""

from repro.tensor.nn.module import Module, Parameter
from repro.tensor.nn.linear import Linear
from repro.tensor.nn.rnn_cells import GRUCell, LSTMCell
from repro.tensor.nn.loss import (
    bce_with_logits_loss,
    cross_entropy_loss,
    l1_loss,
    mse_loss,
)
from repro.tensor.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "GRUCell",
    "LSTMCell",
    "bce_with_logits_loss",
    "cross_entropy_loss",
    "l1_loss",
    "mse_loss",
    "init",
]
