"""Fully connected layer."""

from __future__ import annotations

from typing import Optional

from repro.tensor.nn import init
from repro.tensor.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor
from repro.utils.rng import SeedLike


class Linear(Module):
    """``y = x @ W + b`` with ``W`` of shape ``(in_features, out_features)``.

    This is the "update" half of a GCN layer (paper §2.1) and the building
    block of every RNN gate.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), seed=seed), name="weight"
        )
        self.bias: Optional[Parameter] = (
            Parameter(init.zeros(out_features), name="bias") if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"
