"""Parameter initializers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def zeros(*shape: int) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(*shape: int) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def uniform(shape, low: float = -0.1, high: float = 0.1, seed: SeedLike = None) -> np.ndarray:
    rng = as_rng(seed)
    return rng.uniform(low, high, size=shape).astype(np.float32)


def xavier_uniform(shape, gain: float = 1.0, seed: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization for 2-D weights."""
    rng = as_rng(seed)
    fan_in, fan_out = shape[0], shape[-1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape, gain: float = 1.0, seed: SeedLike = None) -> np.ndarray:
    rng = as_rng(seed)
    fan_in, fan_out = shape[0], shape[-1]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(size=shape) * std).astype(np.float32)
