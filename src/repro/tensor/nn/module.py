"""Module/Parameter containers, loosely mirroring ``torch.nn``."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network modules.

    Sub-modules and parameters assigned as attributes are registered
    automatically, so :meth:`parameters` walks the whole tree.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute magic -----------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- forward -------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- parameter access ------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- sub-modules ------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> List["Module"]:
        return [m for _, m in self.named_modules()]

    # -- train / eval -------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- state ----------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()
