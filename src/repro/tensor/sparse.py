"""Differentiable sparse–dense multiplication (the GNN aggregation op).

The heavy lifting — numerics *and* the hardware cost estimate — lives in an
*aggregation kernel* object supplied by :mod:`repro.kernels`.  This module
only adapts such a kernel into the autograd graph: the adjacency is a
constant (gradients flow to the dense features only, via ``A^T @ grad``), and
the kernel's cost estimates are attached to the emitted op events so the
simulated device can charge them.
"""

from __future__ import annotations

from typing import Any, Protocol, Tuple

import numpy as np

from repro.tensor.function import Function
from repro.tensor.tensor import Tensor


class AggregationKernel(Protocol):
    """Interface the SpMM autograd op expects from an aggregation kernel."""

    name: str

    def forward(self, dense: np.ndarray) -> np.ndarray:
        """Compute ``A @ dense``."""

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Compute ``A^T @ grad``."""

    def forward_cost(self, dense_shape: Tuple[int, int]):
        """KernelCost of the forward aggregation for a dense operand shape."""

    def backward_cost(self, grad_shape: Tuple[int, int]):
        """KernelCost of the backward aggregation."""


class SpMM(Function):
    """``A @ X`` where ``A`` is a fixed sparse adjacency wrapped in a kernel."""

    op_name = "spmm"

    def forward(self, kernel: AggregationKernel, dense: np.ndarray) -> np.ndarray:
        self.kernel = kernel
        self.dense_shape = dense.shape
        self.extra_attrs = {
            "kernel": kernel.name,
            "kernel_cost": kernel.forward_cost(dense.shape),
        }
        return kernel.forward(dense)

    def backward(self, grad: np.ndarray):
        # Swap in the backward cost so the backward OpEvent is charged correctly.
        self.extra_attrs = {
            "kernel": self.kernel.name,
            "kernel_cost": self.kernel.backward_cost(grad.shape),
        }
        return None, self.kernel.backward(grad)


def spmm(kernel: AggregationKernel, dense: Tensor) -> Tensor:
    """Aggregate dense features through a sparse adjacency kernel."""
    return SpMM.apply(kernel, dense)
