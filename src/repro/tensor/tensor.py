"""The :class:`Tensor` class: a NumPy array with reverse-mode autograd."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor.function import Function

ArrayLike = Union[np.ndarray, float, int, Sequence]


class Tensor:
    """A dense float32 tensor participating in the autograd graph.

    Parameters
    ----------
    data:
        Array-like payload; always stored as a C-contiguous float32 array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "requires_grad", "grad", "_ctx", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = "") -> None:
        self.data = np.ascontiguousarray(np.asarray(data, dtype=np.float32))
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._ctx: Optional[Function] = None
        self.name = name

    # -- basic introspection -------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        from repro.tensor import ops

        return ops.transpose(self)

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def clone(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad, name=self.name)

    def zero_grad(self) -> None:
        self.grad = None

    # -- autograd -------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (so calling ``backward()`` on a
            scalar loss computes ordinary gradients).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor {self.data.shape}")

        # Iterative post-order DFS (avoids recursion limits on long RNN chains).
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if node._ctx is None:
                continue
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._ctx.inputs:
                if (
                    isinstance(parent, Tensor)
                    and parent._ctx is not None
                    and id(parent) not in visited
                ):
                    stack.append((parent, False))

        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(topo):
            ctx = node._ctx
            assert ctx is not None
            if node.grad is None:
                continue
            input_grads = ctx.run_backward(node.grad)
            tensor_args = list(ctx.inputs)
            if len(input_grads) != len(tensor_args):
                raise RuntimeError(
                    f"{type(ctx).__name__}.backward returned {len(input_grads)} grads "
                    f"for {len(tensor_args)} inputs"
                )
            for arg, g in zip(tensor_args, input_grads):
                if g is None or not isinstance(arg, Tensor) or not arg.requires_grad:
                    continue
                g = np.asarray(g, dtype=np.float32)
                if arg.grad is None:
                    arg.grad = g.copy()
                else:
                    arg.grad = arg.grad + g

    # -- operator sugar --------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(np.asarray(other, dtype=np.float32))

    def __add__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.add(self, self._coerce(other))

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(self, self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(self._coerce(other), self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.mul(self, self._coerce(other))

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.div(self, self._coerce(other))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from repro.tensor import ops

        return ops.div(self._coerce(other), self)

    def __neg__(self) -> "Tensor":
        from repro.tensor import ops

        return ops.neg(self)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.tensor import ops

        return ops.matmul(self, self._coerce(other))

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.tensor import ops

        return ops.power(self, exponent)

    def __getitem__(self, index) -> "Tensor":
        from repro.tensor import ops

        return ops.getitem(self, index)

    # -- convenience methods ----------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.tensor import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self) -> "Tensor":
        from repro.tensor import ops

        return ops.transpose(self)

    def sigmoid(self) -> "Tensor":
        from repro.tensor import ops

        return ops.sigmoid(self)

    def tanh(self) -> "Tensor":
        from repro.tensor import ops

        return ops.tanh(self)

    def relu(self) -> "Tensor":
        from repro.tensor import ops

        return ops.relu(self)

    def exp(self) -> "Tensor":
        from repro.tensor import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from repro.tensor import ops

        return ops.log(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"
