"""Minimal reverse-mode autograd tensor library over NumPy.

Stands in for PyTorch in this reproduction: it provides the dense/sparse
differentiable operations the DGNN models need, plus an op-observer hook the
simulated GPU uses to charge kernel costs for every executed operation.
"""

from repro.tensor.tensor import Tensor
from repro.tensor.function import (
    Function,
    OpEvent,
    current_scope,
    emit_event,
    get_op_observer,
    is_grad_enabled,
    no_grad,
    observe_ops,
    op_scope,
    set_op_observer,
    unbroadcast,
)
from repro.tensor import ops
from repro.tensor.sparse import AggregationKernel, spmm
from repro.tensor import nn
from repro.tensor.optim import SGD, Adam, Optimizer

__all__ = [
    "Tensor",
    "Function",
    "OpEvent",
    "current_scope",
    "op_scope",
    "emit_event",
    "get_op_observer",
    "is_grad_enabled",
    "no_grad",
    "observe_ops",
    "set_op_observer",
    "unbroadcast",
    "ops",
    "AggregationKernel",
    "spmm",
    "nn",
    "SGD",
    "Adam",
    "Optimizer",
]
