"""Dense differentiable operations and their functional API.

Every public function takes/returns :class:`~repro.tensor.tensor.Tensor` and
is backed by a :class:`~repro.tensor.function.Function` subclass implementing
the forward numerics and the backward rule.  The backward of each function
returns one gradient per positional input recorded by the engine.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.tensor.function import Function, unbroadcast
from repro.tensor.tensor import Tensor


# ---------------------------------------------------------------------------
# elementwise binary ops
# ---------------------------------------------------------------------------
class Add(Function):
    op_name = "add"

    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.a_shape, self.b_shape = a.shape, b.shape
        return a + b

    def backward(self, grad: np.ndarray):
        return unbroadcast(grad, self.a_shape), unbroadcast(grad, self.b_shape)


class Sub(Function):
    op_name = "sub"

    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.a_shape, self.b_shape = a.shape, b.shape
        return a - b

    def backward(self, grad: np.ndarray):
        return unbroadcast(grad, self.a_shape), unbroadcast(-grad, self.b_shape)


class Mul(Function):
    op_name = "mul"

    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.a, self.b = a, b
        return a * b

    def backward(self, grad: np.ndarray):
        return unbroadcast(grad * self.b, self.a.shape), unbroadcast(grad * self.a, self.b.shape)


class Div(Function):
    op_name = "div"

    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.a, self.b = a, b
        return a / b

    def backward(self, grad: np.ndarray):
        grad_a = unbroadcast(grad / self.b, self.a.shape)
        grad_b = unbroadcast(-grad * self.a / (self.b * self.b), self.b.shape)
        return grad_a, grad_b


class Neg(Function):
    op_name = "neg"

    def forward(self, a: np.ndarray) -> np.ndarray:
        return -a

    def backward(self, grad: np.ndarray):
        return (-grad,)


class Power(Function):
    op_name = "power"

    def forward(self, a: np.ndarray, exponent: float) -> np.ndarray:
        self.a, self.exponent = a, float(exponent)
        return a**self.exponent

    def backward(self, grad: np.ndarray):
        return (grad * self.exponent * self.a ** (self.exponent - 1.0), None)


# ---------------------------------------------------------------------------
# matrix multiplication
# ---------------------------------------------------------------------------
class MatMul(Function):
    op_name = "matmul"

    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError(f"matmul expects 2-D operands, got {a.shape} @ {b.shape}")
        self.a, self.b = a, b
        return a @ b

    def backward(self, grad: np.ndarray):
        return grad @ self.b.T, self.a.T @ grad


# ---------------------------------------------------------------------------
# activations / elementwise unary
# ---------------------------------------------------------------------------
class Sigmoid(Function):
    op_name = "sigmoid"

    def forward(self, a: np.ndarray) -> np.ndarray:
        # Numerically stable split over the sign of the input.
        out = np.empty_like(a)
        positive = a >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-a[positive]))
        exp_a = np.exp(a[~positive])
        out[~positive] = exp_a / (1.0 + exp_a)
        self.out = out
        return out

    def backward(self, grad: np.ndarray):
        return (grad * self.out * (1.0 - self.out),)


class Tanh(Function):
    op_name = "tanh"

    def forward(self, a: np.ndarray) -> np.ndarray:
        self.out = np.tanh(a)
        return self.out

    def backward(self, grad: np.ndarray):
        return (grad * (1.0 - self.out * self.out),)


class ReLU(Function):
    op_name = "relu"

    def forward(self, a: np.ndarray) -> np.ndarray:
        self.mask = a > 0
        return a * self.mask

    def backward(self, grad: np.ndarray):
        return (grad * self.mask,)


class LeakyReLU(Function):
    op_name = "leaky_relu"

    def forward(self, a: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
        self.mask = a > 0
        self.slope = float(negative_slope)
        return np.where(self.mask, a, a * self.slope)

    def backward(self, grad: np.ndarray):
        return (np.where(self.mask, grad, grad * self.slope), None)


class Exp(Function):
    op_name = "exp"

    def forward(self, a: np.ndarray) -> np.ndarray:
        self.out = np.exp(a)
        return self.out

    def backward(self, grad: np.ndarray):
        return (grad * self.out,)


class Log(Function):
    op_name = "log"

    def forward(self, a: np.ndarray) -> np.ndarray:
        self.a = a
        return np.log(a)

    def backward(self, grad: np.ndarray):
        return (grad / self.a,)


class Softmax(Function):
    op_name = "softmax"

    def forward(self, a: np.ndarray, axis: int = -1) -> np.ndarray:
        self.axis = axis
        shifted = a - a.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        self.out = exp / exp.sum(axis=axis, keepdims=True)
        return self.out

    def backward(self, grad: np.ndarray):
        dot = (grad * self.out).sum(axis=self.axis, keepdims=True)
        return ((grad - dot) * self.out,)


class Dropout(Function):
    op_name = "dropout"

    def forward(self, a: np.ndarray, p: float = 0.5, training: bool = True, seed=None) -> np.ndarray:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        if not training or p == 0.0:
            self.mask = None
            return a
        rng = np.random.default_rng(seed)
        self.mask = (rng.random(a.shape) >= p).astype(np.float32) / (1.0 - p)
        return a * self.mask

    def backward(self, grad: np.ndarray):
        if self.mask is None:
            return (grad, None, None, None)
        return (grad * self.mask, None, None, None)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------
class Sum(Function):
    op_name = "sum"

    def forward(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        self.a_shape, self.axis, self.keepdims = a.shape, axis, keepdims
        return a.sum(axis=axis, keepdims=keepdims)

    def backward(self, grad: np.ndarray):
        grad = np.asarray(grad, dtype=np.float32)
        if self.axis is not None and not self.keepdims:
            axes = self.axis if isinstance(self.axis, tuple) else (self.axis,)
            for axis in sorted(a % len(self.a_shape) for a in axes):
                grad = np.expand_dims(grad, axis)
        return (np.broadcast_to(grad, self.a_shape).astype(np.float32), None, None)


class Mean(Function):
    op_name = "mean"

    def forward(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        self.a_shape, self.axis, self.keepdims = a.shape, axis, keepdims
        if axis is None:
            self.count = a.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            self.count = int(np.prod([a.shape[ax] for ax in axes]))
        return a.mean(axis=axis, keepdims=keepdims)

    def backward(self, grad: np.ndarray):
        grad = np.asarray(grad, dtype=np.float32)
        if self.axis is not None and not self.keepdims:
            axes = self.axis if isinstance(self.axis, tuple) else (self.axis,)
            for axis in sorted(a % len(self.a_shape) for a in axes):
                grad = np.expand_dims(grad, axis)
        full = np.broadcast_to(grad, self.a_shape).astype(np.float32) / float(self.count)
        return (full, None, None)


class Max(Function):
    op_name = "max"

    def forward(self, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        self.a, self.axis, self.keepdims = a, axis, keepdims
        self.out = a.max(axis=axis, keepdims=True) if axis is not None else a.max()
        result = self.out if keepdims or axis is None else np.squeeze(self.out, axis=axis)
        return np.asarray(result)

    def backward(self, grad: np.ndarray):
        grad = np.asarray(grad, dtype=np.float32)
        if self.axis is not None and not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        mask = (self.a == self.out).astype(np.float32)
        mask /= np.maximum(mask.sum(axis=self.axis, keepdims=True) if self.axis is not None else mask.sum(), 1.0)
        return (mask * grad, None, None)


# ---------------------------------------------------------------------------
# shape manipulation
# ---------------------------------------------------------------------------
class Reshape(Function):
    op_name = "reshape"

    def forward(self, a: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
        self.a_shape = a.shape
        return a.reshape(shape)

    def backward(self, grad: np.ndarray):
        return (grad.reshape(self.a_shape), None)


class Transpose(Function):
    op_name = "transpose"

    def forward(self, a: np.ndarray) -> np.ndarray:
        if a.ndim != 2:
            raise ValueError(f"transpose expects a 2-D tensor, got shape {a.shape}")
        return np.ascontiguousarray(a.T)

    def backward(self, grad: np.ndarray):
        return (np.ascontiguousarray(grad.T),)


class Concat(Function):
    op_name = "concat"

    def forward(self, *arrays: np.ndarray, axis: int = -1) -> np.ndarray:
        self.axis = axis
        self.sizes = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad: np.ndarray):
        splits = np.cumsum(self.sizes)[:-1]
        return tuple(np.ascontiguousarray(g) for g in np.split(grad, splits, axis=self.axis))


class Stack(Function):
    op_name = "stack"

    def forward(self, *arrays: np.ndarray, axis: int = 0) -> np.ndarray:
        self.axis = axis
        return np.stack(arrays, axis=axis)

    def backward(self, grad: np.ndarray):
        pieces = np.split(grad, grad.shape[self.axis], axis=self.axis)
        return tuple(np.ascontiguousarray(np.squeeze(p, axis=self.axis)) for p in pieces)


class GetItem(Function):
    op_name = "getitem"

    def forward(self, a: np.ndarray, index) -> np.ndarray:
        self.a_shape, self.index = a.shape, index
        return np.ascontiguousarray(a[index])

    def backward(self, grad: np.ndarray):
        full = np.zeros(self.a_shape, dtype=np.float32)
        np.add.at(full, self.index, grad)
        return (full, None)


# ---------------------------------------------------------------------------
# functional API
# ---------------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    return Add.apply(a, b)


def sub(a: Tensor, b: Tensor) -> Tensor:
    return Sub.apply(a, b)


def mul(a: Tensor, b: Tensor) -> Tensor:
    return Mul.apply(a, b)


def div(a: Tensor, b: Tensor) -> Tensor:
    return Div.apply(a, b)


def neg(a: Tensor) -> Tensor:
    return Neg.apply(a)


def power(a: Tensor, exponent: float) -> Tensor:
    return Power.apply(a, exponent)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return MatMul.apply(a, b)


def sigmoid(a: Tensor) -> Tensor:
    return Sigmoid.apply(a)


def tanh(a: Tensor) -> Tensor:
    return Tanh.apply(a)


def relu(a: Tensor) -> Tensor:
    return ReLU.apply(a)


def leaky_relu(a: Tensor, negative_slope: float = 0.01) -> Tensor:
    return LeakyReLU.apply(a, negative_slope)


def exp(a: Tensor) -> Tensor:
    return Exp.apply(a)


def log(a: Tensor) -> Tensor:
    return Log.apply(a)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    return Softmax.apply(a, axis=axis)


def dropout(a: Tensor, p: float = 0.5, training: bool = True, seed=None) -> Tensor:
    return Dropout.apply(a, p, training, seed)


def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001 - mirrors numpy
    return Sum.apply(a, axis, keepdims)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return Mean.apply(a, axis, keepdims)


def max(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001 - mirrors numpy
    return Max.apply(a, axis, keepdims)


def reshape(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    return Reshape.apply(a, shape)


def transpose(a: Tensor) -> Tensor:
    return Transpose.apply(a)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    if not tensors:
        raise ValueError("concat needs at least one tensor")
    return Concat.apply(*tensors, axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    if not tensors:
        raise ValueError("stack needs at least one tensor")
    return Stack.apply(*tensors, axis=axis)


def getitem(a: Tensor, index) -> Tensor:
    return GetItem.apply(a, index)
