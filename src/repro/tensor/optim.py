"""Optimizers (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.tensor.nn.module import Parameter
from repro.utils.validation import check_in_range, check_positive


class Optimizer:
    """Base optimizer over a flat list of parameters."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        check_positive("lr", lr)
        check_in_range("momentum", momentum, 0.0, 1.0)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                velocity = (
                    self.momentum * velocity + grad if velocity is not None else grad.copy()
                )
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        check_positive("lr", lr)
        check_in_range("beta1", betas[0], 0.0, 1.0, inclusive=False)
        check_in_range("beta2", betas[1], 0.0, 1.0, inclusive=False)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._step_count = 0

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1**self._step_count
        bias_correction2 = 1.0 - self.beta2**self._step_count
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param), np.zeros_like(param.data))
            v = self._v.get(id(param), np.zeros_like(param.data))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[id(param)], self._v[id(param)] = m, v
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
