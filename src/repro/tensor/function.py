"""Autograd machinery: differentiable functions, gradient mode, op observer.

The engine is a small reverse-mode autodiff over NumPy arrays.  Every
differentiable operation subclasses :class:`Function`; calling
``SomeOp.apply(...)`` runs the forward numerics and, when gradients are
enabled, links the output tensor back to the function so
:meth:`repro.tensor.tensor.Tensor.backward` can replay the chain rule.

A process-wide *op observer* can be installed (see :func:`observe_ops`) to
receive an :class:`OpEvent` for every forward and backward execution.  The
simulated GPU uses this hook to charge kernel costs for the exact sequence of
operations a model executes, without the model code knowing about the device.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# gradient mode
# ---------------------------------------------------------------------------
_grad_enabled: bool = True


def is_grad_enabled() -> bool:
    """Whether newly created tensors will record the autograd graph."""
    return _grad_enabled


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


# ---------------------------------------------------------------------------
# op observer
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OpEvent:
    """A single executed operation, reported to the installed observer.

    Attributes
    ----------
    name:
        Operation name (e.g. ``"matmul"``, ``"sigmoid"``, ``"spmm"``).
    phase:
        ``"forward"`` or ``"backward"``.
    input_shapes, output_shapes:
        Shapes of the array operands involved.
    attrs:
        Operation-specific extras.  Kernels that know their own hardware cost
        (the SpMM flavours, the weight-reuse GEMM) put a pre-built
        ``KernelCost`` under ``attrs["kernel_cost"]``; generic dense ops leave
        it to the observer to estimate.
    """

    name: str
    phase: str
    input_shapes: Tuple[Tuple[int, ...], ...]
    output_shapes: Tuple[Tuple[int, ...], ...]
    attrs: Dict[str, Any] = field(default_factory=dict)


OpObserver = Callable[[OpEvent], None]

_observer: Optional[OpObserver] = None

# ---------------------------------------------------------------------------
# op scopes — lightweight tags ("update", "rnn", ...) that model code pushes
# around blocks of operations so the cost observer can attribute generic
# dense ops to the right breakdown category (Fig. 4).
# ---------------------------------------------------------------------------
_scope_stack: List[str] = []


def current_scope() -> str:
    """The innermost active op scope, or ``"other"`` when none is set."""
    return _scope_stack[-1] if _scope_stack else "other"


@contextlib.contextmanager
def op_scope(name: str):
    """Tag all operations executed in the block with ``name``."""
    _scope_stack.append(name)
    try:
        yield
    finally:
        _scope_stack.pop()


def set_op_observer(observer: Optional[OpObserver]) -> None:
    """Install (or clear, with ``None``) the process-wide op observer."""
    global _observer
    _observer = observer


def get_op_observer() -> Optional[OpObserver]:
    return _observer


@contextlib.contextmanager
def observe_ops(observer: OpObserver):
    """Temporarily install ``observer``, restoring the previous one after."""
    global _observer
    previous = _observer
    _observer = observer
    try:
        yield observer
    finally:
        _observer = previous


def emit_event(event: OpEvent) -> None:
    """Send an event to the installed observer, if any."""
    if _observer is not None:
        _observer(event)


# ---------------------------------------------------------------------------
# broadcasting helper
# ---------------------------------------------------------------------------
def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


# ---------------------------------------------------------------------------
# Function base class
# ---------------------------------------------------------------------------
class Function:
    """Base class for differentiable operations.

    Subclasses implement :meth:`forward` (NumPy in, NumPy out, may stash
    arrays on ``self`` for the backward pass) and :meth:`backward` (gradient
    of the output in, one gradient per positional input out — ``None`` for
    inputs that are not tensors or do not need gradients).
    """

    #: name reported in OpEvents; defaults to the lower-cased class name
    op_name: str = ""

    def __init__(self) -> None:
        self.inputs: Tuple[Any, ...] = ()
        self.extra_attrs: Dict[str, Any] = {}
        self.scope: str = "other"

    # -- to be implemented by subclasses -----------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        raise NotImplementedError

    # -- engine machinery ---------------------------------------------------
    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> "Tensor":
        from repro.tensor.tensor import Tensor

        fn = cls()
        fn.scope = current_scope()
        raw_args = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = fn.forward(*raw_args, **kwargs)
        out_data = np.asarray(out_data, dtype=np.float32)

        tensor_inputs = [a for a in args if isinstance(a, Tensor)]
        requires_grad = is_grad_enabled() and any(t.requires_grad for t in tensor_inputs)
        out = Tensor(out_data, requires_grad=requires_grad)
        if requires_grad:
            fn.inputs = tuple(args)
            out._ctx = fn

        attrs = dict(fn.extra_attrs)
        attrs.setdefault("scope", fn.scope)
        emit_event(
            OpEvent(
                name=fn.op_name or cls.__name__.lower(),
                phase="forward",
                input_shapes=tuple(
                    tuple(a.shape) for a in args if isinstance(a, (Tensor, np.ndarray))
                ),
                output_shapes=(tuple(out_data.shape),),
                attrs=attrs,
            )
        )
        return out

    def run_backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        """Execute the backward pass and report it to the observer."""
        grads = self.backward(grad)
        attrs = dict(self.extra_attrs)
        attrs.setdefault("scope", self.scope)
        emit_event(
            OpEvent(
                name=self.op_name or type(self).__name__.lower(),
                phase="backward",
                input_shapes=(tuple(grad.shape),),
                output_shapes=tuple(tuple(g.shape) for g in grads if g is not None),
                attrs=attrs,
            )
        )
        return grads
