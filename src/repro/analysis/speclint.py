"""Static spec lint: cross-section contradictions caught before any build.

Each rule inspects one :class:`~repro.api.spec.RunSpec` (already
field-validated by the spec layer itself — these rules only add the
*cross-section* reasoning no single ``__post_init__`` can do) and returns
violations.  Rules are registered individually in ``CHECK_REGISTRY`` so
``python -m repro list`` shows the full catalog and ``analysis.checks``
can select them one by one.
"""

from __future__ import annotations

from typing import List

from .base import SEVERITY_WARNING, Violation


def lint_pinned_staging(spec: object) -> List[Violation]:
    """``pinned_budget_mb`` must fit the prefetch depth's staging buffers."""
    memory, data = spec.memory, spec.data
    if not (memory.feature_cache and data.pin_memory):
        return []
    budget_bytes = memory.pinned_budget_mb * 1024 * 1024
    # Floor estimate: depth+1 buffers in flight, each at least one block of
    # single-column float32 rows.  Real feature dims only make this larger.
    needed = (data.prefetch_depth + 1) * memory.block_rows * 4
    if budget_bytes >= needed:
        return []
    return [
        Violation(
            check="spec-pinned-staging",
            message=(
                f"memory.pinned_budget_mb ({memory.pinned_budget_mb}) cannot "
                f"hold even {data.prefetch_depth + 1} in-flight staging "
                f"block(s) of {memory.block_rows} rows "
                f"(data.prefetch_depth={data.prefetch_depth}); raise the "
                "pinned budget or lower the prefetch depth"
            ),
            source="spec.memory",
        )
    ]


def lint_fleet_admission(spec: object) -> List[Violation]:
    """A fleet replica must be able to accumulate one full micro-batch."""
    serving = spec.serving
    if serving is None or serving.kind != "fleet":
        return []
    if serving.max_batch_requests <= serving.admission_limit:
        return []
    return [
        Violation(
            check="spec-fleet-admission",
            message=(
                f"serving.max_batch_requests ({serving.max_batch_requests}) "
                f"exceeds serving.admission_limit ({serving.admission_limit}): "
                "a replica sheds requests before a full batch can ever form; "
                "raise the admission limit or shrink the batch"
            ),
            source="spec.serving",
        )
    ]


def lint_dead_memory_knobs(spec: object) -> List[Violation]:
    """Tier budgets declared while the feature cache is off do nothing."""
    memory = spec.memory
    if memory.feature_cache:
        return []
    dead = [
        f"memory.{field_name}"
        for field_name, value in (
            ("gpu_budget_mb", memory.gpu_budget_mb),
            ("spill_budget_mb", memory.spill_budget_mb),
        )
        if value is not None
    ]
    if not dead:
        return []
    return [
        Violation(
            check="spec-dead-memory",
            message=(
                f"{', '.join(dead)} set while memory.feature_cache is false — "
                "the tier budgets are ignored; enable the cache or drop them"
            ),
            severity=SEVERITY_WARNING,
            source="spec.memory",
        )
    ]


def lint_telemetry_paths(spec: object) -> List[Violation]:
    """Trace/report outputs require telemetry to be enabled."""
    telemetry = spec.telemetry
    if telemetry.enabled:
        return []
    dead = [
        f"telemetry.{field_name}"
        for field_name, value in (
            ("trace_path", telemetry.trace_path),
            ("report_path", telemetry.report_path),
        )
        if value
    ]
    if not dead:
        return []
    return [
        Violation(
            check="spec-telemetry-paths",
            message=(
                f"{', '.join(dead)} set while telemetry.enabled is false — "
                "nothing will be written; enable telemetry or drop the paths"
            ),
            source="spec.telemetry",
        )
    ]


def lint_partitioning(spec: object) -> List[Violation]:
    """Fixed partition sizes must fit their frame/window."""
    violations: List[Violation] = []
    fixed = spec.pipad.get("fixed_s_per")
    if fixed is not None and int(fixed) > spec.frame_size:
        violations.append(
            Violation(
                check="spec-partitioning",
                message=(
                    f"pipad.fixed_s_per ({fixed}) exceeds frame_size "
                    f"({spec.frame_size}): a partition cannot span more "
                    "snapshots than its frame holds"
                ),
                source="spec.pipad",
            )
        )
    serving = spec.serving
    if (
        serving is not None
        and serving.fixed_s_per is not None
        and serving.fixed_s_per > serving.window
    ):
        violations.append(
            Violation(
                check="spec-partitioning",
                message=(
                    f"serving.fixed_s_per ({serving.fixed_s_per}) exceeds "
                    f"serving.window ({serving.window})"
                ),
                source="spec.serving",
            )
        )
    return violations


def lint_serving_window(spec: object) -> List[Violation]:
    """The serving window cannot outgrow the snapshot stream feeding it."""
    serving = spec.serving
    if serving is None or serving.window <= spec.num_snapshots:
        return []
    return [
        Violation(
            check="spec-serving-window",
            message=(
                f"serving.window ({serving.window}) exceeds num_snapshots "
                f"({spec.num_snapshots}): the store can never fill its "
                "window; shrink the window or extend the stream"
            ),
            source="spec.serving",
        )
    ]


def lint_prefetch_pipeline(spec: object) -> List[Violation]:
    """Prefetch depth is silently forced to 0 when the pipeline is disabled."""
    if spec.method != "pipad":
        return []
    if spec.pipad.get("enable_pipeline", True) or spec.data.prefetch_depth == 0:
        return []
    return [
        Violation(
            check="spec-prefetch-pipeline",
            message=(
                f"data.prefetch_depth ({spec.data.prefetch_depth}) has no "
                "effect while pipad.enable_pipeline is false (the ablation "
                "forces fully serialized prep); set the depth to 0 or "
                "re-enable the pipeline"
            ),
            severity=SEVERITY_WARNING,
            source="spec.data",
        )
    ]
