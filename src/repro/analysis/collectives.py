"""Collective lint: mismatch/deadlock detection over DeviceGroup traffic.

The simulator schedules collectives bulk-synchronously, so a mismatched
program — rank A entering ``all_reduce`` while rank B entered
``all_gather``, a ``send`` with no matching ``recv``, a barrier some rank
never reaches — still *runs*; on real NCCL it hangs or corrupts.  These
checks replay each group's per-rank communication sequences the way the
NCCL kernel matcher would:

- ``collective-match`` — the k-th group collective must agree across every
  rank in kind and byte count, and every rank must issue the same number;
- ``p2p-pairing`` — each point-to-point send must pair with exactly one
  recv on its peer, same label and bytes, in channel order;
- ``pipeline-order`` — within one backward pass (delimited by
  ``grad_all_reduce``), the gradient hops a stage participates in must walk
  the group chain strictly backward (1F1B's reverse stage order).
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from .base import ExecutionArtifacts, Violation

_GRAD_HOP = re.compile(r"^grad_p(\d+)_(send|recv)$")
_GRAD_REDUCE = "grad_all_reduce"


def _rank_sequences(group: object) -> List[List[object]]:
    """Per-rank list of collective ops (kind ``collective``), program order."""
    return [
        [op for op in device.timeline.ops if op.kind == "collective"]
        for device in group.devices
    ]


def check_collective_match(
    artifacts: ExecutionArtifacts, spec: Optional[object] = None
) -> List[Violation]:
    violations: List[Violation] = []
    for name, domain, group in artifacts.groups:
        ranks = _rank_sequences(group)
        group_seqs = [
            [op for op in seq if op.attrs.get("collective") != "peer_transfer"]
            for seq in ranks
        ]
        counts = [len(seq) for seq in group_seqs]
        if len(set(counts)) > 1:
            lo, hi = min(counts), max(counts)
            lo_rank, hi_rank = counts.index(lo), counts.index(hi)
            violations.append(
                Violation(
                    check="collective-match",
                    message=(
                        f"{name}: rank {lo_rank} issued {lo} group "
                        f"collective(s) but rank {hi_rank} issued {hi}; the "
                        f"extra call(s) on rank {hi_rank} will block forever "
                        "waiting for the missing participant"
                    ),
                    domain=domain,
                    time=group_seqs[hi_rank][min(lo, hi - 1)].start,
                    source=name,
                )
            )
        for position in range(min(counts)):
            ops = [seq[position] for seq in group_seqs]
            kinds = [op.attrs.get("collective") for op in ops]
            if len(set(kinds)) > 1:
                detail = ", ".join(
                    f"rank {i}: {kind} ({op.label!r})"
                    for i, (kind, op) in enumerate(zip(kinds, ops))
                )
                violations.append(
                    Violation(
                        check="collective-match",
                        message=(
                            f"{name}: collective #{position} differs across "
                            f"ranks — {detail}; mismatched collectives "
                            "deadlock the communicator"
                        ),
                        domain=domain,
                        time=min(op.start for op in ops),
                        source=name,
                    )
                )
                continue
            nbytes = [float(op.attrs.get("bytes", 0.0)) for op in ops]
            if max(nbytes) - min(nbytes) > 1e-9 * max(1.0, max(nbytes)):
                violations.append(
                    Violation(
                        check="collective-match",
                        message=(
                            f"{name}: collective #{position} "
                            f"({ops[0].label!r}) has mismatched byte counts "
                            f"across ranks ({min(nbytes):.0f} vs "
                            f"{max(nbytes):.0f}); partial reductions corrupt "
                            "the result"
                        ),
                        domain=domain,
                        time=min(op.start for op in ops),
                        source=name,
                    )
                )
    return violations


def check_p2p_pairing(
    artifacts: ExecutionArtifacts, spec: Optional[object] = None
) -> List[Violation]:
    violations: List[Violation] = []
    for name, domain, group in artifacts.groups:
        sends: Dict[Tuple[int, int], List[object]] = defaultdict(list)
        recvs: Dict[Tuple[int, int], List[object]] = defaultdict(list)
        for rank, seq in enumerate(_rank_sequences(group)):
            for op in seq:
                if op.attrs.get("collective") != "peer_transfer":
                    continue
                peer = int(op.attrs.get("peer", -1))
                if op.label.endswith("_send"):
                    sends[(rank, peer)].append(op)
                elif op.label.endswith("_recv"):
                    recvs[(peer, rank)].append(op)
        for channel in sorted(set(sends) | set(recvs)):
            src, dst = channel
            pending_sends, pending_recvs = sends[channel], recvs[channel]
            for position, (send, recv) in enumerate(
                zip(pending_sends, pending_recvs)
            ):
                send_base = send.label[: -len("_send")]
                recv_base = recv.label[: -len("_recv")]
                if send_base != recv_base:
                    violations.append(
                        Violation(
                            check="p2p-pairing",
                            message=(
                                f"{name}: transfer #{position} on channel "
                                f"{src}->{dst} pairs send {send.label!r} with "
                                f"recv {recv.label!r}; out-of-order p2p "
                                "matching deadlocks both endpoints"
                            ),
                            domain=domain,
                            time=min(send.start, recv.start),
                            source=name,
                        )
                    )
                elif abs(
                    float(send.attrs.get("bytes", 0.0))
                    - float(recv.attrs.get("bytes", 0.0))
                ) > 1e-9:
                    violations.append(
                        Violation(
                            check="p2p-pairing",
                            message=(
                                f"{name}: send/recv pair {send_base!r} on "
                                f"channel {src}->{dst} disagrees on bytes; "
                                "truncated or overrun receive"
                            ),
                            domain=domain,
                            time=send.start,
                            source=name,
                        )
                    )
            for op in pending_sends[len(pending_recvs):]:
                violations.append(
                    Violation(
                        check="p2p-pairing",
                        message=(
                            f"{name}: send {op.label!r} on channel "
                            f"{src}->{dst} has no matching recv on rank "
                            f"{dst}; rank {src} blocks forever"
                        ),
                        domain=domain,
                        time=op.start,
                        source=name,
                    )
                )
            for op in pending_recvs[len(pending_sends):]:
                violations.append(
                    Violation(
                        check="p2p-pairing",
                        message=(
                            f"{name}: recv {op.label!r} on channel "
                            f"{src}->{dst} has no matching send on rank "
                            f"{src}; rank {dst} blocks forever"
                        ),
                        domain=domain,
                        time=op.start,
                        source=name,
                    )
                )
    return violations


def check_pipeline_order(
    artifacts: ExecutionArtifacts, spec: Optional[object] = None
) -> List[Violation]:
    """1F1B backward order: gradient hops walk stages strictly backward."""
    violations: List[Violation] = []
    for name, domain, group in artifacts.groups:
        for rank, seq in enumerate(_rank_sequences(group)):
            previous: Optional[int] = None
            previous_op = None
            for op in seq:
                if op.label == _GRAD_REDUCE:
                    previous, previous_op = None, None  # next backward pass
                    continue
                match = _GRAD_HOP.match(op.label)
                if match is None:
                    continue
                index = int(match.group(1))
                if previous is not None and index >= previous:
                    violations.append(
                        Violation(
                            check="pipeline-order",
                            message=(
                                f"{name}: rank {rank} handled gradient hop "
                                f"{op.label!r} after "
                                f"{previous_op.label!r} within one backward "
                                "pass; 1F1B requires the gradient chain to "
                                "visit groups in strictly decreasing order"
                            ),
                            domain=domain,
                            time=op.start,
                            source=name,
                        )
                    )
                previous, previous_op = index, op
    return violations
