"""Memory-watermark verification: replay budgets over the op stream.

Three ceilings, checked at every instant rather than just at the end:

- **pinned** — the pin stage annotates each op with the staging bytes it
  acquired and the pinned-tier residency at that moment; the h2d op
  releases the staging bytes when it completes.  Replaying acquire/release
  events in simulated-time order recovers the exact pinned high-water mark,
  which must stay within ``pinned_budget_mb`` (the ROADMAP overshoot this
  checker was built to catch).
- **cache tiers** — final GPU/pinned/spill residency (+ reservations) must
  sit within each tier's declared capacity.
- **HBM** — every device's ``peak_bytes`` ledger must stay within its
  simulated GPU's memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .base import ExecutionArtifacts, Violation

#: relative slack for float accumulation over long replays
_REL_EPS = 1e-6


def _over(value: float, budget: float) -> bool:
    return value > budget * (1.0 + _REL_EPS) + 1e-6


def _replay_pinned(
    name: str, domain: str, timeline: object
) -> Optional[Violation]:
    """Replay one timeline's staging acquire/release events against budget."""
    events: List[Tuple[float, int, float, object]] = []
    budget: Optional[float] = None
    for op in timeline.ops:
        acquired = op.attrs.get("pinned_acquire_bytes")
        if acquired is not None:
            # Order (release, acquire) at equal timestamps: a buffer drained
            # exactly when the next pin starts is free for reuse.
            events.append((op.start, 1, float(acquired), op))
            declared = op.attrs.get("pinned_budget_bytes")
            if declared is not None:
                budget = float(declared)
        released = op.attrs.get("pinned_release_bytes")
        if released is not None:
            events.append((op.end, 0, float(released), op))
    if budget is None or not events:
        return None
    events.sort(key=lambda e: (e[0], e[1]))
    staging = 0.0
    tier_used = 0.0
    peak, peak_time, peak_op = 0.0, 0.0, None
    for time, kind, nbytes, op in events:
        if kind == 0:
            staging -= nbytes
            continue
        staging += nbytes
        tier_used = float(op.attrs.get("pinned_tier_used_bytes", tier_used))
        total = staging + tier_used
        if total > peak:
            peak, peak_time, peak_op = total, time, op
    if _over(peak, budget):
        return Violation(
            check="memory-watermark",
            message=(
                f"{name}: pinned watermark {peak / 1024**2:.1f} MiB at "
                f"t={peak_time:.6f}s (op {peak_op.label!r}) exceeds "
                f"pinned_budget_mb ({budget / 1024**2:.1f} MiB); in-flight "
                "staging must be charged against the pinned tier — raise "
                "memory.pinned_budget_mb or lower data.prefetch_depth"
            ),
            domain=domain,
            time=peak_time,
            source=name,
        )
    return None


def check_memory_watermark(
    artifacts: ExecutionArtifacts, spec: Optional[object] = None
) -> List[Violation]:
    violations: List[Violation] = []
    for name, domain, timeline in artifacts.timelines:
        violation = _replay_pinned(name, domain, timeline)
        if violation is not None:
            violations.append(violation)
    for name, domain, cache in artifacts.caches:
        for tier_name, tier in cache.tiers.items():
            if tier.capacity_bytes is None:
                continue
            occupied = tier.used_bytes + tier.reserved_bytes
            if _over(occupied, float(tier.capacity_bytes)):
                violations.append(
                    Violation(
                        check="memory-watermark",
                        message=(
                            f"{name}: {tier_name} tier holds "
                            f"{occupied / 1024**2:.1f} MiB "
                            f"(residency + reservations) against a "
                            f"{tier.capacity_bytes / 1024**2:.1f} MiB budget"
                        ),
                        domain=domain,
                        source=name,
                    )
                )
        budget = cache.tiers["pinned"].capacity_bytes
        if budget is not None and _over(cache.peak_pinned_bytes, float(budget)):
            violations.append(
                Violation(
                    check="memory-watermark",
                    message=(
                        f"{name}: peak pinned bytes "
                        f"{cache.peak_pinned_bytes / 1024**2:.1f} MiB exceeded "
                        f"pinned_budget_mb ({budget / 1024**2:.1f} MiB) at "
                        "some point of the run"
                    ),
                    domain=domain,
                    source=name,
                )
            )
    for name, domain, device in artifacts.devices:
        spec_obj = getattr(device, "spec", None)
        capacity = getattr(spec_obj, "memory_bytes", None)
        peak = getattr(device, "peak_bytes", None)
        if capacity is None or peak is None:
            continue
        if _over(float(peak), float(capacity)):
            violations.append(
                Violation(
                    check="memory-watermark",
                    message=(
                        f"{name}: peak HBM allocation {peak / 1024**3:.2f} GiB "
                        f"exceeds {spec_obj.name} memory "
                        f"({capacity / 1024**3:.2f} GiB)"
                    ),
                    domain=domain,
                    source=name,
                )
            )
    return violations
