"""``CHECK_REGISTRY``: the catalog of sanitizer checks, plus the runner.

Two check families share one registry:

- **static** checks need only a :class:`~repro.api.spec.RunSpec`; they run
  from ``python -m repro check`` before any engine exists.
- **execution** checks additionally replay
  :class:`~repro.analysis.base.ExecutionArtifacts` gathered from a
  finished run (``--sanitize`` / ``Engine.sanitize``).

Adding a check is one entry: write a ``runner(spec, artifacts) ->
List[Violation]`` and register it with :func:`register_check` (or extend
the literal table below).  ``python -m repro list`` renders the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import collectives, hb, speclint, watermark
from .base import AnalysisReport, ExecutionArtifacts, Violation

FAMILY_STATIC = "static"
FAMILY_EXECUTION = "execution"

#: runner signature: ``(spec, artifacts) -> violations``; static checks
#: ignore the artifacts argument
CheckRunner = Callable[[object, Optional[ExecutionArtifacts]], List[Violation]]


@dataclass(frozen=True)
class CheckInfo:
    """One registered check: identity, family, and how to run it."""

    name: str
    family: str
    description: str
    runner: CheckRunner


def _static(rule: Callable[[object], List[Violation]]) -> CheckRunner:
    return lambda spec, artifacts: rule(spec)


def _execution(
    rule: Callable[[ExecutionArtifacts, object], List[Violation]]
) -> CheckRunner:
    return lambda spec, artifacts: (
        [] if artifacts is None or artifacts.empty else rule(artifacts, spec)
    )


CHECK_REGISTRY: Dict[str, CheckInfo] = {}


def register_check(
    name: str, family: str, description: str, runner: CheckRunner
) -> CheckInfo:
    """Add one check to the registry (how downstream PRs extend the catalog)."""
    if family not in (FAMILY_STATIC, FAMILY_EXECUTION):
        raise ValueError(
            f"family must be {FAMILY_STATIC!r} or {FAMILY_EXECUTION!r}, "
            f"got {family!r}"
        )
    if name in CHECK_REGISTRY:
        raise ValueError(f"check {name!r} is already registered")
    info = CheckInfo(name=name, family=family, description=description, runner=runner)
    CHECK_REGISTRY[name] = info
    return info


register_check(
    "hb-race",
    FAMILY_EXECUTION,
    "ops touching one cache block / staging buffer with no happens-before path",
    _execution(hb.check_hb_races),
)
register_check(
    "collective-match",
    FAMILY_EXECUTION,
    "group collectives agree across ranks in count, kind and bytes",
    _execution(collectives.check_collective_match),
)
register_check(
    "p2p-pairing",
    FAMILY_EXECUTION,
    "every p2p send pairs with one recv on its peer, in channel order",
    _execution(collectives.check_p2p_pairing),
)
register_check(
    "pipeline-order",
    FAMILY_EXECUTION,
    "1F1B backward gradient hops visit pipeline groups strictly backward",
    _execution(collectives.check_pipeline_order),
)
register_check(
    "memory-watermark",
    FAMILY_EXECUTION,
    "HBM / pinned / spill budgets hold at every simulated instant",
    _execution(watermark.check_memory_watermark),
)
register_check(
    "spec-pinned-staging",
    FAMILY_STATIC,
    "pinned budget fits the prefetch depth's in-flight staging buffers",
    _static(speclint.lint_pinned_staging),
)
register_check(
    "spec-fleet-admission",
    FAMILY_STATIC,
    "fleet admission limit admits at least one full micro-batch",
    _static(speclint.lint_fleet_admission),
)
register_check(
    "spec-dead-memory",
    FAMILY_STATIC,
    "tier budgets are not declared while the feature cache is off",
    _static(speclint.lint_dead_memory_knobs),
)
register_check(
    "spec-telemetry-paths",
    FAMILY_STATIC,
    "trace/report paths require telemetry to be enabled",
    _static(speclint.lint_telemetry_paths),
)
register_check(
    "spec-partitioning",
    FAMILY_STATIC,
    "fixed partition sizes fit their frame / serving window",
    _static(speclint.lint_partitioning),
)
register_check(
    "spec-serving-window",
    FAMILY_STATIC,
    "the serving window fits the snapshot stream",
    _static(speclint.lint_serving_window),
)
register_check(
    "spec-prefetch-pipeline",
    FAMILY_STATIC,
    "prefetch depth is not silently disabled by the pipeline ablation",
    _static(speclint.lint_prefetch_pipeline),
)


def static_checks() -> Tuple[str, ...]:
    return tuple(
        name
        for name, info in CHECK_REGISTRY.items()
        if info.family == FAMILY_STATIC
    )


def resolve_checks(names: Optional[Sequence[str]] = None) -> Tuple[str, ...]:
    """Validate and normalize a check selection (empty/None = all)."""
    if not names:
        return tuple(CHECK_REGISTRY)
    unknown = [name for name in names if name not in CHECK_REGISTRY]
    if unknown:
        known = ", ".join(sorted(CHECK_REGISTRY))
        raise ValueError(
            f"unknown analysis check(s) {', '.join(map(repr, unknown))} "
            f"(known: {known})"
        )
    return tuple(dict.fromkeys(names))


def run_checks(
    spec: object,
    *,
    artifacts: Optional[ExecutionArtifacts] = None,
    checks: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run the selected checks and collect their findings.

    Without artifacts only static checks can fire; execution checks are
    still listed as having run (vacuously clean) when selected, so a
    ``check`` invocation reports the same catalog a sanitized run does.
    """
    selected = resolve_checks(checks)
    if artifacts is None:
        selected = tuple(
            name
            for name in selected
            if CHECK_REGISTRY[name].family == FAMILY_STATIC
        )
    violations: List[Violation] = []
    for name in selected:
        violations.extend(CHECK_REGISTRY[name].runner(spec, artifacts))
    return AnalysisReport(checks=selected, violations=violations)
