"""Common vocabulary of the sanitizer: violations, reports, artifacts.

Every checker in :mod:`repro.analysis` consumes artifacts the stack
already produces — :class:`~repro.gpu.timeline.Timeline` op streams,
:class:`~repro.gpu.device_group.DeviceGroup` collectives, feature-cache
stats — and emits :class:`Violation` records.  :func:`collect_artifacts`
gathers those artifacts duck-typed from a trainer and/or serving engine,
the same way :class:`repro.telemetry.runtime.Telemetry` attaches, so the
analyzer never needs bespoke plumbing per topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


class AnalysisError(RuntimeError):
    """Raised when a sanitized run finished with error-severity violations."""

    def __init__(self, report: "AnalysisReport") -> None:
        self.report = report
        errors = report.errors
        lines = [f"{len(errors)} sanitizer violation(s):"]
        lines += [f"  [{v.check}] {v.message}" for v in errors[:10]]
        if len(errors) > 10:
            lines.append(f"  ... and {len(errors) - 10} more")
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class Violation:
    """One broken invariant, located in simulated time and space."""

    #: name of the check that fired (a ``CHECK_REGISTRY`` key)
    check: str
    #: human-actionable description: what conflicts, where, and what to change
    message: str
    severity: str = SEVERITY_ERROR
    #: trace domain the violation belongs to (``train`` or ``serve``)
    domain: str = "train"
    #: simulated seconds the violation anchors to (instant-event timestamp)
    time: float = 0.0
    #: offending component (``gpu0``, ``serve_gpu2``, ``spec.memory`` ...)
    source: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "message": self.message,
            "severity": self.severity,
            "domain": self.domain,
            "time": self.time,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Violation":
        return cls(
            check=str(data["check"]),
            message=str(data["message"]),
            severity=str(data.get("severity", SEVERITY_ERROR)),
            domain=str(data.get("domain", "train")),
            time=float(data.get("time", 0.0)),
            source=str(data.get("source", "")),
        )


@dataclass
class AnalysisReport:
    """Outcome of one sanitizer pass: which checks ran, what they found."""

    checks: Tuple[str, ...] = ()
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == SEVERITY_WARNING]

    def by_check(self, check: str) -> List[Violation]:
        return [v for v in self.violations if v.check == check]

    def format(self) -> str:
        lines = [
            f"analysis: {len(self.checks)} check(s), "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        ]
        for violation in self.violations:
            lines.append(
                f"  {violation.severity.upper():7s} [{violation.check}] "
                f"{violation.message}"
            )
        if not self.violations:
            lines.append("  clean: no violations")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "checks": list(self.checks),
            "num_violations": len(self.violations),
            "num_errors": len(self.errors),
            "num_warnings": len(self.warnings),
            "violations": [v.to_dict() for v in self.violations],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AnalysisReport":
        return cls(
            checks=tuple(data.get("checks", ())),
            violations=[
                Violation.from_dict(v) for v in data.get("violations", [])
            ],
        )


@dataclass
class ExecutionArtifacts:
    """Everything the dynamic checkers replay, gathered after a run.

    ``timelines`` carries ``(source_name, domain, timeline)`` triples —
    source names follow the Chrome-trace track naming (``gpu{i}`` /
    ``serve_gpu{i}``) so a violation points at the same track the user sees
    in the trace viewer.  ``groups`` are :class:`DeviceGroup`-likes whose
    member timelines the collective lint cross-checks; ``caches`` and
    ``devices`` feed the watermark checker's budget assertions.
    """

    timelines: List[Tuple[str, str, object]] = field(default_factory=list)
    groups: List[Tuple[str, str, object]] = field(default_factory=list)
    caches: List[Tuple[str, str, object]] = field(default_factory=list)
    devices: List[Tuple[str, str, object]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.timelines or self.groups or self.caches or self.devices)


def _collect_side(
    artifacts: ExecutionArtifacts,
    domain: str,
    prefix: str,
    devices: Sequence[object],
    group: Optional[object],
    caches: Sequence[object],
) -> None:
    for index, device in enumerate(devices):
        name = f"{prefix}{index}"
        artifacts.devices.append((name, domain, device))
        artifacts.timelines.append((name, domain, device.timeline))
    if group is not None and len(getattr(group, "devices", [])) > 1:
        artifacts.groups.append((prefix.rstrip("_") or prefix, domain, group))
    for index, cache in enumerate(caches):
        if cache is not None:
            artifacts.caches.append((f"{prefix}{index}", domain, cache))


def collect_artifacts(
    trainer: Optional[object] = None, serving_engine: Optional[object] = None
) -> ExecutionArtifacts:
    """Duck-typed artifact gathering, mirroring how telemetry attaches.

    Trainers expose ``device``/``group``/``feature_caches``; serving engines
    expose either ``replicas`` (sharded/fleet) or a single ``device`` plus
    ``feature_cache``.  Unknown shapes contribute nothing rather than fail:
    the sanitizer must run against any engine telemetry can trace.
    """
    artifacts = ExecutionArtifacts()
    if trainer is not None:
        group = getattr(trainer, "group", None)
        devices = list(group.devices) if group is not None else [trainer.device]
        caches = list(getattr(trainer, "feature_caches", []) or [])
        if not caches:
            single = getattr(trainer, "feature_cache", None)
            if single is not None:
                caches = [single]
        _collect_side(artifacts, "train", "gpu", devices, group, caches)
    if serving_engine is not None:
        replicas = getattr(serving_engine, "replicas", None)
        if replicas is None:
            replicas = [serving_engine]
        devices = [r.device for r in replicas if hasattr(r, "device")]
        caches = [getattr(r, "feature_cache", None) for r in replicas]
        _collect_side(artifacts, "serve", "serve_gpu", devices, None, caches)
    return artifacts
