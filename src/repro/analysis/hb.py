"""Happens-before race detection over the simulated timelines.

The HB graph has one node per :class:`~repro.gpu.timeline.TimelineOp` and
three edge families, exactly the mechanisms the list scheduler serializes
with:

- **dependency edges** — ``submit(depends_on=...)``, recorded as op uids
  (these may cross timelines: p2p recvs, cross-device gates);
- **stream edges** — FIFO order of ops sharing a stream on one timeline;
- **resource edges** — FIFO order of ops sharing an engine on one timeline.

Ops declare what they touch through ``attrs["hb_reads"]`` /
``attrs["hb_writes"]`` key lists: the gather stage reads its item's cache
block keys, a delta op writes the blocks it invalidates, the pin stage
writes (and the h2d copy reads) a per-occurrence staging key.  Two ops on
one timeline touching a common key, at least one writing, with no directed
path between them in either direction, race: nothing in the schedule stops
a reordering from exposing stale or half-written data.

Every HB edge points forward in simulated time (a successor never starts
before its predecessor ends), so reachability searches prune any node
starting after the target.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .base import ExecutionArtifacts, Violation

#: cap per run so a systemically broken schedule reports a digest, not a flood
MAX_RACES_REPORTED = 25


def build_hb_graph(
    timelines: Sequence[Tuple[str, str, object]]
) -> Tuple[Dict[int, object], Dict[int, List[int]]]:
    """Return ``(ops_by_uid, successors)`` across all given timelines."""
    ops_by_uid: Dict[int, object] = {}
    successors: Dict[int, List[int]] = defaultdict(list)
    for _, _, timeline in timelines:
        last_on_resource: Dict[str, int] = {}
        last_on_stream: Dict[str, int] = {}
        for op in timeline.ops:
            ops_by_uid[op.uid] = op
            for dep in op.deps:
                successors[dep].append(op.uid)
            prev = last_on_resource.get(op.resource)
            if prev is not None:
                successors[prev].append(op.uid)
            last_on_resource[op.resource] = op.uid
            prev = last_on_stream.get(op.stream)
            if prev is not None:
                successors[prev].append(op.uid)
            last_on_stream[op.stream] = op.uid
    return ops_by_uid, dict(successors)


def _reaches(
    source: int,
    target: int,
    ops_by_uid: Dict[int, object],
    successors: Dict[int, List[int]],
) -> bool:
    """Is there a directed HB path ``source -> target``?"""
    target_start = ops_by_uid[target].start
    seen: Set[int] = {source}
    frontier = [source]
    while frontier:
        uid = frontier.pop()
        if uid == target:
            return True
        for nxt in successors.get(uid, ()):  # edges move forward in time
            if nxt in seen:
                continue
            nxt_op = ops_by_uid.get(nxt)
            if nxt_op is None or nxt_op.start > target_start:
                continue
            seen.add(nxt)
            frontier.append(nxt)
    return False


def ordered(
    a: int,
    b: int,
    ops_by_uid: Dict[int, object],
    successors: Dict[int, List[int]],
) -> bool:
    """Is there an HB path between the two ops, in either direction?"""
    first, second = (a, b) if ops_by_uid[a].start <= ops_by_uid[b].start else (b, a)
    return _reaches(first, second, ops_by_uid, successors)


def _accesses(
    timelines: Sequence[Tuple[str, str, object]]
) -> Dict[Tuple[str, object], List[Tuple[int, bool]]]:
    """Map ``(source_name, key) -> [(uid, is_write), ...]`` per timeline.

    Keys are scoped per timeline: block ids on one device's cache are
    unrelated to the same ids on another device.
    """
    out: Dict[Tuple[str, object], List[Tuple[int, bool]]] = defaultdict(list)
    for name, _, timeline in timelines:
        for op in timeline.ops:
            for key in op.attrs.get("hb_reads", ()) or ():
                out[(name, key)].append((op.uid, False))
            for key in op.attrs.get("hb_writes", ()) or ():
                out[(name, key)].append((op.uid, True))
    return out


def check_hb_races(
    artifacts: ExecutionArtifacts, spec: Optional[object] = None
) -> List[Violation]:
    """Flag annotated-access pairs with no ordering path between them."""
    ops_by_uid, successors = build_hb_graph(artifacts.timelines)
    accesses = _accesses(artifacts.timelines)
    domains = {name: domain for name, domain, _ in artifacts.timelines}
    violations: List[Violation] = []
    seen_pairs: Set[Tuple[int, int]] = set()
    for (name, key), ops in sorted(accesses.items(), key=lambda kv: str(kv[0])):
        writers = [uid for uid, is_write in ops if is_write]
        if not writers:
            continue
        readers = [uid for uid, is_write in ops if not is_write]
        for writer in writers:
            others = [uid for uid in writers if uid != writer] + readers
            for other in others:
                pair = (min(writer, other), max(writer, other))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                if ordered(writer, other, ops_by_uid, successors):
                    continue
                a, b = ops_by_uid[pair[0]], ops_by_uid[pair[1]]
                violations.append(
                    Violation(
                        check="hb-race",
                        message=(
                            f"{name}: {a.label!r} [{a.start:.6f}, {a.end:.6f}]s "
                            f"({a.resource}/{a.stream}) and {b.label!r} "
                            f"[{b.start:.6f}, {b.end:.6f}]s ({b.resource}/"
                            f"{b.stream}) both touch {key!r} with no "
                            "happens-before path; add a dependency edge or "
                            "serialize them on one stream"
                        ),
                        domain=domains.get(name, "train"),
                        time=min(a.start, b.start),
                        source=name,
                    )
                )
                if len(violations) >= MAX_RACES_REPORTED:
                    violations.append(
                        Violation(
                            check="hb-race",
                            message=(
                                f"stopped after {MAX_RACES_REPORTED} races; "
                                "fix the above and re-run"
                            ),
                            domain=domains.get(name, "train"),
                            time=min(a.start, b.start),
                            source=name,
                        )
                    )
                    return violations
    return violations
