"""repro.analysis — execution sanitizer + spec lint over the simulated stack.

The correctness gate of the reproduction: happens-before race detection
over the timelines (:mod:`repro.analysis.hb`), collective deadlock /
mismatch lint (:mod:`repro.analysis.collectives`), memory-watermark
replay (:mod:`repro.analysis.watermark`) and static ``RunSpec``
cross-section lint (:mod:`repro.analysis.speclint`), all catalogued in
:data:`CHECK_REGISTRY` (:mod:`repro.analysis.registry`).

Entry points: ``python -m repro check <spec>`` for the static family,
``--sanitize`` on run/serve (or :meth:`repro.api.Engine.sanitize`) for
the execution family.
"""

from .base import (
    AnalysisError,
    AnalysisReport,
    ExecutionArtifacts,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Violation,
    collect_artifacts,
)
from .registry import (
    CHECK_REGISTRY,
    CheckInfo,
    FAMILY_EXECUTION,
    FAMILY_STATIC,
    register_check,
    resolve_checks,
    run_checks,
    static_checks,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "CHECK_REGISTRY",
    "CheckInfo",
    "ExecutionArtifacts",
    "FAMILY_EXECUTION",
    "FAMILY_STATIC",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Violation",
    "collect_artifacts",
    "register_check",
    "resolve_checks",
    "run_checks",
    "static_checks",
]
