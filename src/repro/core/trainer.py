"""The PiPAD trainer: pipelined, partition-parallel DGNN training (§4).

The trainer extends the shared training loop with PiPAD's four mechanisms:

1. *Overlap-aware data organization* — snapshots are shipped per partition as
   one sliced-CSR overlap adjacency plus per-snapshot exclusives
   (:class:`~repro.core.data_prep.DataPreparer`,
   :class:`~repro.core.slicer.GraphSlicer`).
2. *Intra-frame parallelism* — the GNN part of a partition executes through
   the :class:`~repro.core.parallel_gnn.ParallelAggregationProvider`, with
   locality-optimized weight reuse in the update GEMM and CUDA-Graph
   launches.
3. *Pipeline execution* — CPU preparation, PCIe transfers and kernels run on
   separate streams of the simulated device so partition ``k+1``'s transfer
   hides behind partition ``k``'s compute.
4. *Inter-frame reuse and dynamic tuning* — first-layer aggregation results
   are cached on the host and (capacity permitting) on the device
   (:class:`~repro.core.reuse.ReuseManager`), and the per-frame parallelism
   level is chosen by the :class:`~repro.core.tuner.DynamicTuner` from the
   offline kernel analysis plus statistics gathered in the preparing epochs.

Epoch 0..``preparing_epochs-1`` run in the canonical one-snapshot manner
(while populating caches and statistics); subsequent epochs run the
partition-parallel schedule.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import DGNNTrainerBase, TrainerConfig
from repro.baselines.results import EpochMetrics
from repro.core.config import PiPADConfig
from repro.core.data_prep import PartitionData
from repro.core.datapipe import DataPipe, DataPipeConfig, PipeItem, Prefetcher
from repro.core.parallel_gnn import ParallelAggregationProvider
from repro.core.reuse import ReuseManager
from repro.core.slicer import GraphSlicer
from repro.core.tuner import DynamicTuner, FrameProfile, OfflineAnalysis, TuningDecision
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.frame import Frame
from repro.graph.snapshot import GraphSnapshot
from repro.gpu.device import OutOfMemoryError, SimulatedGPU
from repro.gpu.memory_model import feature_cache_budget_bytes
from repro.gpu.timeline import TimelineOp
from repro.memory import (
    AccessPlan,
    FeatureCache,
    MemoryConfig,
    aggregate_cache_stats,
    blocks_covering,
)
from repro.nn.context import ExecutionContext

#: per-snapshot activation-memory amplification used by the tuner's OOM check
_ACTIVATION_FACTOR = 4.0


class PiPADTrainer(DGNNTrainerBase):
    """End-to-end PiPAD training on the simulated device."""

    method_name = "PiPAD"
    kernel_name = "coo"  # only used for the canonical preparing epochs
    adjacency_format = "coo"
    async_transfer = True
    use_reuse = True
    use_cuda_graph = True

    def __init__(
        self,
        graph: DynamicGraph,
        config: Optional[TrainerConfig] = None,
        pipad_config: Optional[PiPADConfig] = None,
        data_config: Optional[DataPipeConfig] = None,
        memory_config: Optional[MemoryConfig] = None,
    ) -> None:
        self.pipad = pipad_config or PiPADConfig()
        self.memory = memory_config or MemoryConfig()
        # Mirror the ablation switches onto the knobs the base class reads.
        self.use_reuse = self.pipad.enable_inter_frame_reuse
        self.async_transfer = self.pipad.enable_pipeline
        self.use_cuda_graph = self.pipad.use_cuda_graph
        super().__init__(graph, config)

        self.reuse = ReuseManager(
            self.device,
            enabled=self.pipad.enable_inter_frame_reuse,
            gpu_buffer_fraction=self.pipad.gpu_reuse_buffer_fraction,
        )
        self.cache = self.reuse if self.pipad.enable_inter_frame_reuse else None
        self.slicer = GraphSlicer(self.pipad.slice_capacity, self.config.host)
        data = data_config or DataPipeConfig()
        if not self.pipad.enable_pipeline:
            # The ablation switch keeps its meaning: no pipeline means fully
            # serialized, unpinned prep — regardless of the declared depth.
            data = dataclasses.replace(data, prefetch_depth=0, pin_memory=False)
        self.data = data
        self.datapipe = DataPipe(
            data,
            self.config.host,
            slice_capacity=self.pipad.slice_capacity,
            use_sliced_csr=self.pipad.use_sliced_csr,
        )
        self.preparer = self.datapipe.preparer
        self.prefetcher = Prefetcher(
            self.datapipe, self.device, hooks=lambda: self.hooks
        )
        candidates = self._candidate_s_per()
        self.tuner = DynamicTuner(
            self.config.gpu,
            candidates,
            memory_safety_fraction=self.pipad.memory_safety_fraction,
            analysis=OfflineAnalysis(spec=self.config.gpu),
            feature_dim=self.graph.feature_dim,
        )
        self._frame_s_per: Dict[int, int] = {}
        self._tuning_decisions: List[TuningDecision] = []
        self._preparing = self.pipad.preparing_epochs > 0
        self._preprocessed = False
        self._epochs_run = 0
        self._hidden_dim = self.model.hidden_features
        self._check_feature_capacity()
        #: one cache per device; distributed/pipeline subclasses append one
        #: per extra shard/stage.  Empty when the cache is disabled.
        self.feature_caches: List[FeatureCache] = []
        if self.memory.feature_cache:
            self.feature_caches.append(self._build_feature_cache(self.device))
        self.feature_cache: Optional[FeatureCache] = (
            self.feature_caches[0] if self.feature_caches else None
        )
        # The pin stage's staging buffers are pinned memory too: charge them
        # against the cache's pinned tier instead of budgeting them separately.
        self.prefetcher.cache = self.feature_cache

    # ------------------------------------------------------------------ memory tiers
    def _feature_shards(self) -> int:
        """Devices the frame's feature working set is split across (1 here)."""
        return 1

    def _frame_feature_bytes(self) -> float:
        """Extrapolated feature bytes one frame keeps in flight."""
        features = float(np.mean([s.feature_bytes() for s in self.graph.snapshots]))
        return features * self.config.frame_size * self.scale

    def _check_feature_capacity(self) -> None:
        """Refuse runs whose features cannot exist on the device uncached."""
        if self.memory.feature_cache:
            return
        per_device = self._frame_feature_bytes() / float(self._feature_shards())
        if per_device > self.config.gpu.memory_bytes:
            raise OutOfMemoryError(
                f"frame feature working set ({per_device / 1024**3:.1f} GiB per "
                f"device) exceeds {self.config.gpu.name} HBM "
                f"({self.config.gpu.memory_gb:.0f} GiB); enable the multi-tier "
                "feature cache (memory.feature_cache=true) to stage features "
                "through the pinned-host and spill tiers"
            )

    def _build_feature_cache(self, device: SimulatedGPU) -> FeatureCache:
        """One per-device cache; the GPU tier is carved out of real HBM."""
        mem = self.memory
        if mem.gpu_budget_mb is not None:
            gpu_budget = int(mem.gpu_budget_mb * 1024 * 1024)
        else:
            model_bytes = float(sum(p.data.nbytes for p in self.model.parameters()))
            gpu_budget = feature_cache_budget_bytes(
                self.config.gpu,
                model_bytes=model_bytes,
                activation_bytes=self._frame_activation_bytes()
                / float(self._feature_shards()),
                fraction=mem.gpu_budget_fraction,
            )
        cache = FeatureCache(
            gpu_budget_bytes=gpu_budget,
            pinned_budget_bytes=int(mem.pinned_budget_mb * 1024 * 1024),
            spill_budget_bytes=(
                None
                if mem.spill_budget_mb is None
                else int(mem.spill_budget_mb * 1024 * 1024)
            ),
            policy=mem.policy,
        )
        if gpu_budget > 0:
            # Peak-memory honesty: the GPU tier occupies real HBM alongside
            # the reuse buffer (raises OutOfMemoryError on absurd budgets).
            device.malloc("feature_cache", gpu_budget)
        return cache

    def _feature_block_requests(
        self, snapshots: Sequence[GraphSnapshot], lo: int, hi: int
    ) -> List[Tuple[Tuple[int, int], float]]:
        """Cache keys + bytes for the feature rows a partition will read.

        One key per (timestep, node block): training features are distinct
        per snapshot.  The inter-frame reuse cache discounts the *bytes* a
        partition ships independently (``_partition_transfer_bytes``); the
        tier plan is applied on top and clamps at zero, so the two
        discounts never drive a stage's bytes negative.
        """
        row_bytes = self.graph.feature_dim * 4.0 * self.scale
        requests: List[Tuple[Tuple[int, int], float]] = []
        for snapshot in snapshots:
            for block, b_lo, b_hi in blocks_covering(lo, hi, self.memory.block_rows):
                requests.append(((snapshot.timestep, block), (b_hi - b_lo) * row_bytes))
        return requests

    def _cache_plan(
        self,
        snapshots: Sequence[GraphSnapshot],
        *,
        index: int,
        lo: int,
        hi: int,
        label: str,
    ) -> AccessPlan:
        plan = self.feature_caches[index].access(
            self._feature_block_requests(snapshots, lo, hi)
        )
        self.hooks.on_cache_access(
            label,
            index,
            plan.gpu_bytes,
            plan.pinned_bytes,
            plan.miss_bytes,
            plan.gpu_hits + plan.pinned_hits + plan.spill_hits,
            plan.misses,
            self._sim_now(),
            "train",
        )
        return plan

    @staticmethod
    def _apply_cache_plan(item: PipeItem, plan: AccessPlan) -> PipeItem:
        """Shrink an item's stage bytes by what the cache tiers absorb."""
        total = item.transfer_bytes
        gather = max(0.0, total - plan.gpu_bytes - plan.pinned_bytes)
        return dataclasses.replace(
            item,
            transfer_bytes=max(0.0, total - plan.gpu_bytes),
            gather_bytes=gather,
            pin_bytes=gather,
            block_keys=plan.block_keys,
        )

    # ------------------------------------------------------------------ setup
    def _candidate_s_per(self) -> Tuple[int, ...]:
        if self.pipad.fixed_s_per is not None:
            return (self.pipad.fixed_s_per,)
        candidates = tuple(self.pipad.s_per_candidates)
        max_s_per = self.graph.metadata.get("max_s_per")
        if max_s_per:
            capped = tuple(c for c in candidates if c <= int(max_s_per))
            candidates = capped or (int(max_s_per),)
        return candidates

    # ------------------------------------------------------------------ preprocessing & tuning
    def _per_snapshot_bytes(self) -> Tuple[float, float]:
        """(transfer bytes, memory footprint bytes) per snapshot, extrapolated."""
        snapshots = self.graph.snapshots
        features = float(np.mean([s.feature_bytes() for s in snapshots]))
        adjacency = float(np.mean([s.adjacency.nbytes for s in snapshots]))
        activations = (
            self.graph.num_nodes
            * (self.graph.feature_dim + self._hidden_dim)
            * 4.0
            * _ACTIVATION_FACTOR
        )
        transfer = (features + adjacency) * self.scale
        footprint = (features + adjacency + activations * self.config.frame_size / 2.0) * self.scale
        return transfer, footprint

    def _frame_activation_bytes(self) -> float:
        return (
            self.config.frame_size
            * self.graph.num_nodes
            * self._hidden_dim
            * 4.0
            * _ACTIVATION_FACTOR
            * self.scale
        )

    def _measured_per_snapshot_compute(self) -> float:
        """Average per-snapshot kernel seconds observed so far (preparing epochs)."""
        total = sum(stats.seconds for stats in self.device.kernel_stats.values())
        executed = max(1, self._epochs_run) * self.frames.num_frames * self.config.frame_size
        if total <= 0:
            # No preparing epoch ran: fall back to a coarse analytic estimate.
            return 5e-4 * self.scale / max(1.0, self.scale)
        return total / executed

    def _run_preprocessing(self) -> None:
        """Graph slicing, overlap extraction and per-frame tuning (one-off)."""
        # Slicing every snapshot once (host work, overlapped with training).
        slicing_seconds = sum(
            self.slicer.conversion_seconds(s.adjacency) for s in self.graph.snapshots
        )
        self.slicer.total_host_seconds += slicing_seconds
        self.device.host_op(slicing_seconds, label="graph_slicing", stream="cpu_prep")

        transfer_bytes, footprint_bytes = self._per_snapshot_bytes()
        compute_seconds = self._measured_per_snapshot_compute()
        frame_activation = self._frame_activation_bytes()

        for frame in self.frames:
            overlap_rates: Dict[int, float] = {}
            for candidate in self.tuner.candidates:
                before = self.preparer.total_extraction_seconds
                partitions = self.preparer.prepare_frame(list(frame.snapshots), candidate)
                extraction_delta = self.preparer.total_extraction_seconds - before
                if extraction_delta > 0:
                    self.device.host_op(
                        extraction_delta,
                        label=f"overlap_extraction_f{frame.index}_s{candidate}",
                        stream="cpu_prep",
                    )
                overlap_rates[candidate] = float(
                    np.mean([p.overlap_rate for p in partitions])
                )
            profile = FrameProfile(
                frame_index=frame.index,
                overlap_rate_per_candidate=overlap_rates,
                per_snapshot_compute_seconds=compute_seconds,
                per_snapshot_transfer_bytes=transfer_bytes,
                per_snapshot_footprint_bytes=footprint_bytes,
                frame_activation_bytes=frame_activation,
            )
            decision = self.tuner.decide(
                profile, pcie_bandwidth_gbs=self.config.pcie.bandwidth_gbs
            )
            if self.pipad.fixed_s_per is not None:
                decision = TuningDecision(
                    frame_index=frame.index,
                    s_per=self.pipad.fixed_s_per,
                    estimated_speedup=decision.estimated_speedup,
                    overlap_rate=decision.overlap_rate,
                    reason="fixed by configuration",
                )
            self._frame_s_per[frame.index] = decision.s_per
            self._tuning_decisions.append(decision)
        self._preprocessed = True

    # ------------------------------------------------------------------ frame execution overrides
    def _make_partitions(self, frame: Frame) -> List[Tuple[GraphSnapshot, ...]]:
        if self._preparing:
            return super()._make_partitions(frame)
        s_per = self._frame_s_per.get(frame.index, self.tuner.candidates[0])
        return [
            tuple(frame.snapshots[start : start + s_per])
            for start in range(0, frame.size, s_per)
        ]

    def _make_provider(self, snapshots: Sequence[GraphSnapshot]):
        if self._preparing:
            return super()._make_provider(snapshots)
        partition = self.datapipe.partition(snapshots)
        return ParallelAggregationProvider(
            partition,
            spec=self.config.gpu,
            scale=self.scale,
            cache=self.cache,
            reusable_layers=self.model.reusable_aggregation_layers if self.use_reuse else (),
            slice_capacity=self.pipad.slice_capacity,
            use_sliced_csr=self.pipad.use_sliced_csr,
        )

    def _partition_context(self, snapshots: Sequence[GraphSnapshot]) -> ExecutionContext:
        if self._preparing:
            return self.context
        reuse_group = 1
        if self.pipad.enable_weight_reuse and not self.model.evolves_weights:
            reuse_group = len(snapshots)
        return self.context.with_reuse_group(reuse_group)

    def _before_frame(self, frame: Frame, epoch: int) -> None:
        if self._preparing or self.cache is None:
            return
        # Keep the aggregation results this frame will consume resident on the
        # GPU-side buffer (capacity permitting), in use order.
        agg_bytes = int(
            self.graph.num_nodes * self.graph.feature_dim * 4 * self.scale
        )
        timesteps = [s.timestep for s in frame.snapshots]
        self.reuse.plan_gpu_residency(timesteps, {t: agg_bytes for t in timesteps})

    def _partition_transfer_bytes(self, snapshots: Sequence[GraphSnapshot]) -> float:
        partition = self.datapipe.partition(snapshots)
        nbytes = 0.0
        topology_needed = False
        for snapshot in snapshots:
            cached = self.reuse.has_cached(snapshot.timestep) if self.cache is not None else False
            if cached:
                if not self.reuse.is_gpu_resident(snapshot.timestep):
                    # Ship the cached aggregation result instead of raw features.
                    nbytes += snapshot.num_nodes * snapshot.feature_dim * 4
                if self.model.needs_topology_with_reuse:
                    topology_needed = True
            else:
                nbytes += snapshot.feature_bytes()
                topology_needed = True
            nbytes += snapshot.num_nodes * 4  # targets
        if topology_needed:
            nbytes += partition.adjacency_bytes
        return nbytes * self.scale

    def _transfer_partition(
        self,
        snapshots: Sequence[GraphSnapshot],
        depends_on: Optional[Sequence[TimelineOp]],
    ) -> List[TimelineOp]:
        if self._preparing:
            return super()._transfer_partition(snapshots, depends_on)
        item = PipeItem(
            label=f"p{snapshots[0].timestep}",
            num_snapshots=len(snapshots),
            transfer_bytes=self._partition_transfer_bytes(snapshots),
        )
        if self.feature_cache is not None:
            plan = self._cache_plan(
                snapshots, index=0, lo=0, hi=self.graph.num_nodes, label=item.label
            )
            item = self._apply_cache_plan(item, plan)
        return self.prefetcher.schedule(item, depends_on=depends_on)

    def _launch_partition_kernels(
        self,
        costs,
        snapshots: Sequence[GraphSnapshot],
        transfer_ops: Sequence[TimelineOp],
        last_compute: Sequence[TimelineOp],
    ) -> List[TimelineOp]:
        ops = super()._launch_partition_kernels(
            costs, snapshots, transfer_ops, last_compute
        )
        if not self._preparing:
            # The last kernel of the partition is what frees the prefetcher's
            # depth slot: item k+depth+1's host prep may not start before it.
            self.prefetcher.mark_consumed(ops)
        return ops

    def _compute_stream(self) -> str:
        if self._preparing:
            return super()._compute_stream()
        return "compute" if self.pipad.enable_pipeline else "default"

    # ------------------------------------------------------------------ epochs
    def run_epoch(self, epoch: int) -> EpochMetrics:
        was_preparing = self._preparing
        self._preparing = self._epochs_run < self.pipad.preparing_epochs
        if self._preparing and self._epochs_run == 0:
            self.hooks.on_phase_start("prepare", self._sim_now())
        if not self._preparing and not self._preprocessed:
            self._run_preprocessing()
            if was_preparing and self.pipad.preparing_epochs > 0:
                self.hooks.on_phase_end("prepare", self._sim_now())
        metrics = super().run_epoch(epoch)
        self._epochs_run += 1
        return metrics

    def _extra_metrics(self) -> Dict[str, float]:
        extras: Dict[str, float] = dict(self.reuse.stats()) if self.cache is not None else {}
        extras["slicing_host_seconds"] = self.slicer.total_host_seconds
        extras["extraction_host_seconds"] = self.preparer.total_extraction_seconds
        extras.update(self.prefetcher.stats())
        if self.feature_caches:
            extras.update(
                aggregate_cache_stats([c.stats() for c in self.feature_caches])
            )
        if self._tuning_decisions:
            extras["mean_s_per"] = float(np.mean([d.s_per for d in self._tuning_decisions]))
            extras["mean_estimated_speedup"] = float(
                np.mean([d.estimated_speedup for d in self._tuning_decisions])
            )
        return extras

    # ------------------------------------------------------------------ introspection
    @property
    def tuning_decisions(self) -> List[TuningDecision]:
        return list(self._tuning_decisions)

    def chosen_s_per(self) -> Dict[int, int]:
        return dict(self._frame_s_per)
