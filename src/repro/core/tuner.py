"""Offline parallel-GNN analysis and the online dynamic tuner (§4.4).

The offline analysis estimates the speedup of PiPAD's parallel GNN over
one-snapshot execution on synthetic snapshot groups with controlled overlap
rates and feature dimensions (this is exactly the data behind Fig. 9).  The
online :class:`DynamicTuner` combines that table with the statistics the
runtime gathers during the preparing epochs — per-frame overlap rates,
per-snapshot memory footprint, compute and transfer times — to pick the
parallelism level ``S_per`` for every frame without triggering OOM or
stalling the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRMatrix
from repro.gpu.spec import GPUSpec
from repro.kernels.gemm import update_gemm_cost
from repro.kernels.spmm_sliced import SlicedParallelAggregation
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_in_range, check_positive


# ---------------------------------------------------------------------------
# controlled-overlap snapshot groups
# ---------------------------------------------------------------------------
def build_overlap_group(
    num_nodes: int,
    edges_per_snapshot: int,
    group_size: int,
    overlap_rate: float,
    seed: SeedLike = 0,
) -> Tuple[CSRMatrix, List[CSRMatrix], List[CSRMatrix]]:
    """Construct a snapshot group with a target overlap rate.

    Returns ``(overlap, exclusives, full_snapshots)`` where every snapshot is
    ``overlap ∪ exclusive_i`` and the group's ``|∩|/|∪|`` equals
    ``overlap_rate`` up to rounding (paper §4.4: "randomly selecting snapshot
    groups that satisfy the target overlap requirements").
    """
    check_positive("num_nodes", num_nodes)
    check_positive("edges_per_snapshot", edges_per_snapshot)
    check_positive("group_size", group_size)
    check_in_range("overlap_rate", overlap_rate, 0.0, 1.0)
    rng = as_rng(seed)

    shape = (num_nodes, num_nodes)
    # |core| such that core/(S*E - (S-1)*core) == overlap_rate
    core_size = int(
        round(overlap_rate * group_size * edges_per_snapshot / (1.0 + overlap_rate * (group_size - 1)))
    )
    core_size = min(core_size, edges_per_snapshot)
    exclusive_size = edges_per_snapshot - core_size

    def sample(count: int, forbidden: np.ndarray) -> np.ndarray:
        keys: np.ndarray = np.zeros(0, dtype=np.int64)
        while len(keys) < count:
            need = int((count - len(keys)) * 1.5) + 8
            rows = rng.integers(0, num_nodes, size=need, dtype=np.int64)
            cols = rng.integers(0, num_nodes, size=need, dtype=np.int64)
            mask = rows != cols
            fresh = rows[mask] * num_nodes + cols[mask]
            fresh = np.setdiff1d(fresh, forbidden, assume_unique=False)
            keys = np.union1d(keys, fresh)
        return rng.permutation(keys)[:count]

    core = sample(core_size, np.zeros(0, dtype=np.int64)) if core_size else np.zeros(0, dtype=np.int64)
    used = core.copy()
    exclusives: List[np.ndarray] = []
    for _ in range(group_size):
        exclusive = (
            sample(exclusive_size, used) if exclusive_size else np.zeros(0, dtype=np.int64)
        )
        used = np.union1d(used, exclusive)
        exclusives.append(exclusive)

    overlap_mat = CSRMatrix.from_edge_keys(np.sort(core), shape)
    exclusive_mats = [CSRMatrix.from_edge_keys(np.sort(e), shape) for e in exclusives]
    full = [
        CSRMatrix.from_edge_keys(np.union1d(core, e), shape) for e in exclusives
    ]
    return overlap_mat, exclusive_mats, full


# ---------------------------------------------------------------------------
# offline analysis (Fig. 9)
# ---------------------------------------------------------------------------
@dataclass
class OfflineAnalysis:
    """Cost-model estimates of the parallel GNN speedup (offline profiling)."""

    spec: GPUSpec = field(default_factory=GPUSpec)
    num_nodes: int = 1024
    avg_degree: float = 4.0
    slice_capacity: int = 32
    seed: int = 0

    def parallel_gnn_seconds(
        self,
        overlap: CSRMatrix,
        exclusives: Sequence[CSRMatrix],
        feature_dim: int,
        hidden_dim: int,
        *,
        weight_reuse: bool = True,
    ) -> float:
        """Estimated time to aggregate + update a group with the parallel GNN."""
        group = len(exclusives)
        seconds = 0.0
        launch = self.spec.cudagraph_launch_overhead_us * 1e-6
        if overlap.nnz:
            kernel = SlicedParallelAggregation(
                overlap, self.spec, slice_capacity=self.slice_capacity, snapshots_coalesced=group
            )
            seconds += kernel.forward_cost((overlap.num_rows, feature_dim * group)).execution_seconds(
                self.spec
            ) + launch
        for exclusive in exclusives:
            if exclusive.nnz:
                kernel = SlicedParallelAggregation(
                    exclusive, self.spec, slice_capacity=self.slice_capacity, snapshots_coalesced=1
                )
                seconds += kernel.forward_cost(
                    (exclusive.num_rows, feature_dim)
                ).execution_seconds(self.spec) + launch
        reuse_group = group if weight_reuse else 1
        update = update_gemm_cost(
            self.num_nodes, feature_dim, hidden_dim, self.spec, reuse_group=reuse_group
        )
        seconds += group * (update.execution_seconds(self.spec) + launch)
        return seconds

    def sequential_gnn_seconds(
        self, snapshots: Sequence[CSRMatrix], feature_dim: int, hidden_dim: int
    ) -> float:
        """Estimated time to process the same group one snapshot at a time."""
        seconds = 0.0
        launch = self.spec.kernel_launch_overhead_us * 1e-6
        for adjacency in snapshots:
            if adjacency.nnz:
                kernel = SlicedParallelAggregation(
                    adjacency, self.spec, slice_capacity=self.slice_capacity, snapshots_coalesced=1
                )
                seconds += kernel.forward_cost(
                    (adjacency.num_rows, feature_dim)
                ).execution_seconds(self.spec) + launch
            update = update_gemm_cost(
                self.num_nodes, feature_dim, hidden_dim, self.spec, reuse_group=1
            )
            seconds += update.execution_seconds(self.spec) + launch
        return seconds

    def speedup(
        self,
        s_per: int,
        overlap_rate: float,
        feature_dim: int,
        hidden_dim: Optional[int] = None,
        *,
        weight_reuse: bool = True,
    ) -> float:
        """Parallel-over-sequential speedup for one configuration."""
        hidden_dim = hidden_dim or max(4, feature_dim * 2)
        edges = max(1, int(round(self.num_nodes * self.avg_degree)))
        overlap, exclusives, full = build_overlap_group(
            self.num_nodes, edges, s_per, overlap_rate, seed=self.seed
        )
        parallel = self.parallel_gnn_seconds(
            overlap, exclusives, feature_dim, hidden_dim, weight_reuse=weight_reuse
        )
        sequential = self.sequential_gnn_seconds(full, feature_dim, hidden_dim)
        return sequential / parallel if parallel > 0 else 1.0

    def speedup_table(
        self,
        s_per_values: Sequence[int] = (2, 4, 8),
        overlap_rates: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
        feature_dim: int = 16,
    ) -> Dict[Tuple[int, float], float]:
        """Speedup vs. overlap rate for each parallelism level (Fig. 9a)."""
        return {
            (s, overlap_rate): self.speedup(s, overlap_rate, feature_dim)
            for s in s_per_values
            for overlap_rate in overlap_rates
        }

    def dimension_table(
        self,
        s_per_values: Sequence[int] = (2, 4, 8),
        feature_dims: Sequence[int] = (2, 8, 16, 32, 64, 128),
        overlap_rate: float = 0.8,
    ) -> Dict[Tuple[int, int], float]:
        """Speedup vs. feature dimension for each parallelism level (Fig. 9b)."""
        return {
            (s, dim): self.speedup(s, overlap_rate, dim)
            for s in s_per_values
            for dim in feature_dims
        }


# ---------------------------------------------------------------------------
# online dynamic tuner
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FrameProfile:
    """Per-frame statistics gathered online during the preparing epochs."""

    frame_index: int
    overlap_rate_per_candidate: Dict[int, float]
    per_snapshot_compute_seconds: float
    per_snapshot_transfer_bytes: float
    per_snapshot_footprint_bytes: float
    frame_activation_bytes: float


@dataclass(frozen=True)
class TuningDecision:
    """Outcome of the tuner for one frame."""

    frame_index: int
    s_per: int
    estimated_speedup: float
    overlap_rate: float
    reason: str


class DynamicTuner:
    """Chooses the parallelism level per frame (§4.4's three-factor procedure)."""

    def __init__(
        self,
        spec: GPUSpec,
        candidates: Sequence[int] = (2, 4, 8),
        *,
        memory_safety_fraction: float = 0.9,
        stall_tolerance: float = 1.25,
        analysis: Optional[OfflineAnalysis] = None,
        feature_dim: int = 16,
    ) -> None:
        if not candidates:
            raise ValueError("candidates must not be empty")
        self.spec = spec
        self.candidates = tuple(sorted(set(int(c) for c in candidates)))
        self.memory_safety_fraction = memory_safety_fraction
        self.stall_tolerance = stall_tolerance
        self.feature_dim = feature_dim
        self.analysis = analysis or OfflineAnalysis(spec=spec)
        #: speedup table from the offline analysis: (s_per, OR bucket) -> speedup
        self._or_buckets = (0.1, 0.3, 0.5, 0.7, 0.9)
        self._table = self.analysis.speedup_table(
            self.candidates, self._or_buckets, feature_dim=feature_dim
        )

    def _lookup_speedup(self, s_per: int, overlap_rate: float) -> float:
        bucket = min(self._or_buckets, key=lambda b: abs(b - overlap_rate))
        return self._table[(s_per, bucket)]

    def decide(
        self,
        profile: FrameProfile,
        *,
        pcie_bandwidth_gbs: float = 12.0,
        memory_bytes: Optional[int] = None,
    ) -> TuningDecision:
        """Pick ``S_per`` for one frame given its online profile."""
        capacity = (memory_bytes or self.spec.memory_bytes) * self.memory_safety_fraction
        available = capacity - profile.frame_activation_bytes

        feasible: List[int] = []
        for candidate in self.candidates:
            needed = candidate * profile.per_snapshot_footprint_bytes
            if needed <= available:
                feasible.append(candidate)
        if not feasible:
            return TuningDecision(
                frame_index=profile.frame_index,
                s_per=1,
                estimated_speedup=1.0,
                overlap_rate=profile.overlap_rate_per_candidate.get(self.candidates[0], 0.0),
                reason="memory-bound: no candidate fits, fall back to one-snapshot",
            )

        scored: List[Tuple[int, float, bool]] = []
        for candidate in feasible:
            overlap_rate = profile.overlap_rate_per_candidate.get(candidate, 0.5)
            speedup = self._lookup_speedup(candidate, overlap_rate)
            transfer_seconds = (
                candidate * profile.per_snapshot_transfer_bytes / (pcie_bandwidth_gbs * 1e9)
            )
            compute_seconds = candidate * profile.per_snapshot_compute_seconds / max(speedup, 1e-9)
            stalls = transfer_seconds > compute_seconds * self.stall_tolerance
            scored.append((candidate, speedup, stalls))

        non_stalling = [entry for entry in scored if not entry[2]]
        pool = non_stalling or scored
        best = max(pool, key=lambda entry: entry[1])
        reason = "best estimated speedup among non-stalling candidates"
        if not non_stalling:
            reason = "all candidates stall the pipeline; picked best speedup anyway"
        return TuningDecision(
            frame_index=profile.frame_index,
            s_per=best[0],
            estimated_speedup=best[1],
            overlap_rate=profile.overlap_rate_per_candidate.get(best[0], 0.0),
            reason=reason,
        )

    def decide_forward(
        self,
        profile: FrameProfile,
        *,
        pcie_bandwidth_gbs: float = 12.0,
        memory_bytes: Optional[int] = None,
    ) -> TuningDecision:
        """Forward-only (inference/serving) variant of :meth:`decide`.

        Serving keeps no gradients, optimizer state or backward activations,
        so only about half of the training-time footprint applies; the
        speedup table itself is already a forward-pass estimate and carries
        over unchanged.  The serving scheduler calls this per micro-batch to
        pick the window-partition parallelism.
        """
        forward_profile = FrameProfile(
            frame_index=profile.frame_index,
            overlap_rate_per_candidate=profile.overlap_rate_per_candidate,
            per_snapshot_compute_seconds=profile.per_snapshot_compute_seconds,
            per_snapshot_transfer_bytes=profile.per_snapshot_transfer_bytes,
            per_snapshot_footprint_bytes=profile.per_snapshot_footprint_bytes * 0.5,
            frame_activation_bytes=profile.frame_activation_bytes * 0.5,
        )
        decision = self.decide(
            forward_profile, pcie_bandwidth_gbs=pcie_bandwidth_gbs, memory_bytes=memory_bytes
        )
        return TuningDecision(
            frame_index=decision.frame_index,
            s_per=decision.s_per,
            estimated_speedup=decision.estimated_speedup,
            overlap_rate=decision.overlap_rate,
            reason=f"forward-only: {decision.reason}",
        )
