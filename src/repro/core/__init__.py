"""PiPAD runtime: data organization, parallel GNN, pipeline, reuse, tuning."""

from repro.core.config import PiPADConfig
from repro.core.slicer import GraphSlicer
from repro.core.data_prep import DataPreparer, PartitionData
from repro.core.datapipe import (
    DATAPIPE_VARIANTS,
    DataPipe,
    DataPipeConfig,
    PipeItem,
    Prefetcher,
    STAGE_REGISTRY,
    build_datapipe,
)
from repro.core.reuse import ReuseManager
from repro.core.parallel_gnn import ParallelAggregationProvider
from repro.core.tuner import (
    DynamicTuner,
    FrameProfile,
    OfflineAnalysis,
    TuningDecision,
    build_overlap_group,
)
from repro.core.trainer import PiPADTrainer
from repro.core.distributed_trainer import DistributedConfig, DistributedTrainer
from repro.core.pipeline_trainer import PipelineConfig, PipelineTrainer

__all__ = [
    "PiPADConfig",
    "GraphSlicer",
    "DataPreparer",
    "PartitionData",
    "DATAPIPE_VARIANTS",
    "DataPipe",
    "DataPipeConfig",
    "PipeItem",
    "Prefetcher",
    "STAGE_REGISTRY",
    "build_datapipe",
    "ReuseManager",
    "ParallelAggregationProvider",
    "DynamicTuner",
    "FrameProfile",
    "OfflineAnalysis",
    "TuningDecision",
    "build_overlap_group",
    "PiPADTrainer",
    "DistributedConfig",
    "DistributedTrainer",
    "PipelineConfig",
    "PipelineTrainer",
]
