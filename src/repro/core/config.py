"""PiPAD runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.graph.sliced_csr import DEFAULT_SLICE_CAPACITY
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class PiPADConfig:
    """Knobs of the PiPAD runtime (§4).

    Every optimization can be disabled individually so the ablation benches
    can quantify its contribution.
    """

    #: candidate parallelism levels the dynamic tuner may pick per frame
    s_per_candidates: Tuple[int, ...] = (2, 4, 8)
    #: force a fixed parallelism level (bypasses the tuner) when set
    fixed_s_per: Optional[int] = None
    #: maximum non-zeros per slice of the sliced CSR format
    slice_capacity: int = DEFAULT_SLICE_CAPACITY
    #: number of profiling ("preparing") epochs run in the canonical
    #: one-snapshot manner before switching to partition-parallel training
    preparing_epochs: int = 1
    #: cache first-layer aggregation results across frames and epochs (§4.4)
    enable_inter_frame_reuse: bool = True
    #: keep one weight tile resident while sweeping all snapshots of a
    #: partition in the update GEMM (§4.2)
    enable_weight_reuse: bool = True
    #: overlap transfers/compute/CPU work on separate streams (§4.3);
    #: disabling serializes everything (ablation)
    enable_pipeline: bool = True
    #: launch the per-partition kernel group through CUDA Graphs
    use_cuda_graph: bool = True
    #: use sliced CSR for overlap/exclusive adjacencies; ``False`` falls back
    #: to the plain-CSR kernel (the Fig. 12 ablation)
    use_sliced_csr: bool = True
    #: fraction of the remaining device memory the GPU-side reuse buffer may
    #: occupy (§4.4 "the maximal buffer size is limited by ... GPU memory")
    gpu_reuse_buffer_fraction: float = 0.25
    #: safety margin kept free when the tuner checks the memory bound
    memory_safety_fraction: float = 0.9

    def __post_init__(self) -> None:
        if not self.s_per_candidates:
            raise ValueError("s_per_candidates must not be empty")
        for s in self.s_per_candidates:
            check_positive("s_per candidate", s)
        if self.fixed_s_per is not None:
            check_positive("fixed_s_per", self.fixed_s_per)
        check_positive("slice_capacity", self.slice_capacity)
        if self.preparing_epochs < 0:
            raise ValueError("preparing_epochs must be >= 0")
        check_in_range("gpu_reuse_buffer_fraction", self.gpu_reuse_buffer_fraction, 0.0, 1.0)
        check_in_range("memory_safety_fraction", self.memory_safety_fraction, 0.1, 1.0)
