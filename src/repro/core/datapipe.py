"""Staged data pipeline with transparent, depth-bounded prefetching.

The monolithic :class:`~repro.core.data_prep.DataPreparer` path scheduled
one opaque ``host_prep`` op and one H2D transfer per partition; this module
decomposes that into composable stages —

    slice  →  gather  →  pin  →  h2d

(``slice`` builds the partition's batched index structures, ``gather``
collects the feature/adjacency rows into one contiguous staging buffer,
``pin`` copies it into page-locked memory, ``h2d`` crosses the PCIe link) —
and adds a :class:`Prefetcher` that schedules item ``i``'s host stages while
item ``i - 1`` (.. ``i - depth``) still computes, the GraphBolt-style
bounded prefetch buffer.  Only timeline accounting changes: the numerics
(:class:`~repro.core.data_prep.PartitionData` and everything downstream)
are untouched, so losses and serving outputs stay bit-identical to the
monolithic path.

Depth semantics on the deterministic list-scheduler: the first host stage
of item ``i`` depends on the *consumption* op (the kernels that read the
transferred data) of item ``i - depth - 1``, so at most ``depth`` items are
prepared ahead of the one currently computing.  ``depth == 0`` reproduces
fully serialized prep — item ``i``'s slice cannot start until item
``i - 1``'s kernels finished — which is also what the ``enable_pipeline``
ablation switch forces.

Depth 0 additionally models the *single* synchronous host thread: without
prefetch workers, one Python loop prepares every item in program order —
across all of a trainer's devices.  All prefetchers sharing a
:class:`DataPipe` (one per pipeline stage, per distributed shard) therefore
chain their depth-0 host stages through ``DataPipe.last_host_op`` and gate
them on ``DataPipe.last_consumed_op``, the most recent consumption anywhere
in the trainer: the loop only reaches item ``i``'s prep after the kernels
reading item ``i - 1`` — possibly on a different device — were launched.
With ``depth >= 1`` each device gets its own prefetch worker, so host
stages serialize (and the depth bound counts) per device only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.data_prep import DataPreparer, PartitionData
from repro.gpu.device import SimulatedGPU
from repro.gpu.spec import HostSpec
from repro.gpu.timeline import TimelineOp
from repro.graph.overlap import SnapshotOverlap
from repro.graph.sliced_csr import DEFAULT_SLICE_CAPACITY
from repro.graph.snapshot import GraphSnapshot
from repro.memory.cache import TIER_PINNED
from repro.telemetry.hooks import NULL_CALLBACK, TelemetryCallback

#: canonical stage names, in execution order
STAGE_SLICE = "slice"
STAGE_GATHER = "gather"
STAGE_PIN = "pin"
STAGE_H2D = "h2d"

#: stage name -> human description (``python -m repro list`` shows these)
STAGE_REGISTRY: Dict[str, str] = {
    STAGE_SLICE: "build the partition's batched index structures (host)",
    STAGE_GATHER: "gather feature/adjacency rows into one staging buffer (host)",
    STAGE_PIN: "copy the staging buffer into page-locked memory (host)",
    STAGE_H2D: "ship the staged partition across the PCIe link (copy engine)",
}

#: pipeline variant -> ordered stage tuple.  ``monolithic`` is the legacy
#: accounting (one opaque host op + the transfer); ``staged`` is the default.
DATAPIPE_VARIANTS: Dict[str, Tuple[str, ...]] = {
    "staged": (STAGE_SLICE, STAGE_GATHER, STAGE_PIN, STAGE_H2D),
    "monolithic": (STAGE_SLICE, STAGE_H2D),
}


@dataclass(frozen=True)
class DataPipeConfig:
    """Plain-data configuration of the staged datapipe.

    The API layer's ``DataSpec`` converts to this (``to_pipe_config``) so the
    core never imports :mod:`repro.api`.
    """

    #: pipeline variant (key of :data:`DATAPIPE_VARIANTS`)
    pipeline: str = "staged"
    #: max items prepared ahead of the one currently computing; 0 serializes
    prefetch_depth: int = 2
    #: stage the transfer through page-locked memory (adds the ``pin`` stage;
    #: unpinned transfers pay the PCIe pageable penalty instead)
    pin_memory: bool = True

    def __post_init__(self) -> None:
        if self.pipeline not in DATAPIPE_VARIANTS:
            raise ValueError(
                f"unknown datapipe pipeline {self.pipeline!r}; valid: "
                f"{', '.join(sorted(DATAPIPE_VARIANTS))}"
            )
        if not isinstance(self.prefetch_depth, int) or isinstance(self.prefetch_depth, bool):
            raise ValueError(
                f"prefetch_depth must be an int, got {self.prefetch_depth!r}"
            )
        if self.prefetch_depth < 0:
            raise ValueError(
                f"prefetch_depth must be >= 0, got {self.prefetch_depth}"
            )


@dataclass(frozen=True)
class PipeItem:
    """One unit of work flowing through the pipe: a partition's movable data."""

    #: label suffix for the scheduled ops (e.g. ``"p3"`` or ``"b7"``)
    label: str
    #: snapshots in the partition (drives the per-snapshot slice cost)
    num_snapshots: int
    #: host→device bytes after cache/residency accounting
    transfer_bytes: float
    #: scales the ``slice`` stage only (distributed shards index a fraction
    #: of the nodes; ``gather``/``pin`` already follow the sharded bytes)
    slice_scale: float = 1.0
    #: bytes the ``gather`` stage must collect; ``None`` means
    #: ``transfer_bytes``.  The feature cache sets this lower when rows
    #: already sit in the pinned-host staging tier (skip gather+pin but
    #: still pay the h2d copy).
    gather_bytes: Optional[float] = None
    #: bytes the ``pin`` stage must copy into page-locked memory; ``None``
    #: means ``transfer_bytes``
    pin_bytes: Optional[float] = None
    #: feature-cache block keys the ``gather`` stage reads; the analyzer's
    #: happens-before race detector matches these against concurrent
    #: invalidations (delta writes) touching the same blocks
    block_keys: Tuple[object, ...] = ()


class DataPipe:
    """Composable stage pipeline over a :class:`DataPreparer`.

    Owns the preparer (partition construction + cache) and knows the analytic
    cost of every stage; the :class:`Prefetcher` turns those costs into
    timeline ops on a concrete device.
    """

    def __init__(
        self,
        config: Optional[DataPipeConfig] = None,
        host: Optional[HostSpec] = None,
        *,
        preparer: Optional[DataPreparer] = None,
        slice_capacity: int = DEFAULT_SLICE_CAPACITY,
        use_sliced_csr: bool = True,
    ) -> None:
        self.config = config or DataPipeConfig()
        self.host = host or HostSpec()
        self.preparer = preparer or DataPreparer(
            slice_capacity, self.host, use_sliced_csr=use_sliced_csr
        )
        stages = DATAPIPE_VARIANTS[self.config.pipeline]
        if not self.config.pin_memory:
            stages = tuple(s for s in stages if s != STAGE_PIN)
        self.stages: Tuple[str, ...] = stages
        #: last host-stage op of the synchronous (depth-0) path; depth-0
        #: prefetchers sharing this pipe chain their host stages through it,
        #: modelling the one host thread that prepares items in program order
        self.last_host_op: Optional[TimelineOp] = None
        #: most recent consumption op across every prefetcher of this pipe;
        #: the depth-0 gate, since the synchronous loop only reaches item
        #: ``i``'s prep after item ``i - 1``'s kernels (any device) ran
        self.last_consumed_op: Optional[TimelineOp] = None

    # ------------------------------------------------------------------ partitions
    def partition(self, snapshots: Sequence[GraphSnapshot]) -> PartitionData:
        """Prepare (or fetch from cache) one snapshot group's partition data."""
        return self.preparer._prepare(snapshots)

    def partition_frame(
        self, snapshots: Sequence[GraphSnapshot], s_per: int
    ) -> List[PartitionData]:
        """Prepare every partition of a frame at parallelism ``s_per``."""
        return self.preparer.prepare_frame(snapshots, s_per)

    def partition_from_decomposition(
        self, snapshots: Sequence[GraphSnapshot], overlap: SnapshotOverlap
    ) -> PartitionData:
        """Serving path: build partition data from a maintained decomposition."""
        return self.preparer.prepare_from_decomposition(snapshots, overlap)

    # ------------------------------------------------------------------ stage costs
    @property
    def host_stages(self) -> Tuple[str, ...]:
        return tuple(s for s in self.stages if s != STAGE_H2D)

    @property
    def pinned(self) -> bool:
        return self.config.pin_memory

    def stage_seconds(self, stage: str, item: PipeItem) -> float:
        """Analytic host seconds of one host stage for one item."""
        if stage == STAGE_SLICE:
            return item.num_snapshots * self.host.snapshot_prep_us * 1e-6 * item.slice_scale
        if stage == STAGE_GATHER:
            nbytes = item.transfer_bytes if item.gather_bytes is None else item.gather_bytes
            return nbytes / (self.host.gather_bandwidth_gbs * 1e9)
        if stage == STAGE_PIN:
            nbytes = item.transfer_bytes if item.pin_bytes is None else item.pin_bytes
            return nbytes / (self.host.pin_bandwidth_gbs * 1e9)
        raise ValueError(f"{stage!r} is not a host stage of this pipe")

    def host_seconds(self, item: PipeItem) -> float:
        """Total host-side seconds of one item across all host stages."""
        return sum(self.stage_seconds(s, item) for s in self.host_stages)


class Prefetcher:
    """Depth-bounded scheduler of pipe items onto one simulated device.

    One prefetcher per device: the single-device trainer owns one, the
    pipeline trainer one per stage, the distributed trainer one per shard and
    the serving scheduler one per replica.  ``schedule`` lays the item's host
    stages on the CPU stream and its transfer on the copy engine, gated so at
    most ``depth`` items sit prepared-but-unconsumed; ``mark_consumed``
    registers the compute op that read the item, releasing the oldest slot.
    """

    def __init__(
        self,
        pipe: DataPipe,
        device: SimulatedGPU,
        *,
        depth: Optional[int] = None,
        device_index: int = 0,
        domain: str = "train",
        hooks: Optional[Callable[[], TelemetryCallback]] = None,
    ) -> None:
        self.pipe = pipe
        self.device = device
        self.depth = pipe.config.prefetch_depth if depth is None else depth
        if self.depth < 0:
            raise ValueError(f"prefetch depth must be >= 0, got {self.depth}")
        self.device_index = device_index
        self.domain = domain
        #: zero-arg provider so hook reattachment (the engine swaps
        #: ``trainer.hooks`` after construction) is picked up live
        self._hooks = hooks if hooks is not None else (lambda: NULL_CALLBACK)
        #: consumption op of each scheduled item, in schedule order
        self._consumed: List[Optional[TimelineOp]] = []
        self._scheduled = 0
        self.items_scheduled = 0
        self.host_seconds_total = 0.0
        #: the device's :class:`~repro.memory.cache.FeatureCache`, when the
        #: run declares one — the pin stage charges its staging buffers
        #: against the cache's pinned tier (``pinned_budget_mb`` covers
        #: residency *and* in-flight staging).  Wired by the trainer/serving
        #: engine after construction.
        self.cache = None
        #: live staging reservations as ``(h2d_end_seconds, charged_bytes)``;
        #: a reservation is released once the simulated clock (the next pin
        #: op's start) passes its transfer's completion
        self._staging: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------ gating
    def _overlapping(self) -> bool:
        return self.depth > 0

    def _gate_ops(self) -> List[TimelineOp]:
        """Ops the next item's first host stage must wait for.

        Item ``i`` may start preparing while item ``i - 1`` .. ``i - depth``
        compute, so it waits for item ``i - depth - 1``'s consumption.  With
        depth 0 that collapses to "wait for the previous item's kernels".
        """
        index = self._scheduled - self.depth - 1
        if 0 <= index < len(self._consumed):
            op = self._consumed[index]
            return [op] if op is not None else []
        return []

    # ------------------------------------------------------------------ scheduling
    def schedule(
        self,
        item: PipeItem,
        *,
        depends_on: Optional[Sequence[TimelineOp]] = None,
        not_before: float = 0.0,
    ) -> List[TimelineOp]:
        """Lay one item's stages on the device timeline; returns the h2d op.

        ``depends_on`` gates the first host stage (the serving path passes
        the delta op that produced the window state); ``not_before`` pins the
        earliest start (batch formation time).
        """
        host_stream = "cpu" if self._overlapping() else "default"
        copy_stream = "copy" if self._overlapping() else "default"
        hooks = self._hooks()
        gate = self._gate_ops() + (list(depends_on) if depends_on else [])
        if not self._overlapping():
            # One synchronous host thread: chain behind the previous item's
            # host stages and behind the latest consumption, even when both
            # happened on a different device of the same trainer.
            gate = gate + [
                op
                for op in (self.pipe.last_host_op, self.pipe.last_consumed_op)
                if op is not None
            ]
        previous: List[TimelineOp] = gate
        pin_op: Optional[TimelineOp] = None
        for stage in self.pipe.host_stages:
            seconds = self.pipe.stage_seconds(stage, item)
            self.host_seconds_total += seconds
            op = self.device.host_op(
                seconds,
                label=f"{stage}_{item.label}",
                stream=host_stream,
                depends_on=previous or None,
                not_before=not_before,
            )
            if stage == STAGE_GATHER and item.block_keys:
                op.attrs["hb_reads"] = list(item.block_keys)
            if stage == STAGE_PIN:
                pin_op = op
            hooks.on_prefetch(
                stage, item.label, self.device_index, op.start, op.end, self.domain
            )
            previous = [op]
            if not self._overlapping():
                self.pipe.last_host_op = op
        transfer = self.device.transfer_h2d(
            item.transfer_bytes,
            label=f"h2d_{item.label}",
            stream=copy_stream,
            pinned=self.pipe.pinned,
            depends_on=previous or None,
            not_before=not_before,
        )
        if pin_op is not None:
            # The pin stage fills a staging buffer the h2d drains; the key is
            # unique per occurrence (labels repeat across epochs).
            staging_key = f"staging:{self.domain}{self.device_index}:{self.items_scheduled}"
            pin_op.attrs["hb_writes"] = [staging_key]
            transfer.attrs.setdefault("hb_reads", []).append(staging_key)
            self._account_staging(item, pin_op, transfer)
        hooks.on_prefetch(
            STAGE_H2D, item.label, self.device_index, transfer.start, transfer.end, self.domain
        )
        self._consumed.append(None)  # slot; filled by mark_consumed in order
        self._scheduled += 1
        self.items_scheduled += 1
        return [transfer]

    def _account_staging(
        self, item: PipeItem, pin_op: TimelineOp, transfer: TimelineOp
    ) -> None:
        """Charge this item's pin-stage staging buffer against the cache.

        The reservation lives from the pin op's start until the transfer
        drains the buffer; earlier reservations whose h2d finished by then
        are released first (the simulated clock only moves forward through
        successive pin starts on one device).  The pin and h2d ops carry the
        acquire/release annotations the memory-watermark checker replays.
        """
        if self.cache is None:
            return
        nbytes = item.transfer_bytes if item.pin_bytes is None else item.pin_bytes
        if nbytes <= 0:
            return
        live: List[Tuple[float, float]] = []
        for h2d_end, charged in self._staging:
            if h2d_end <= pin_op.start:
                self.cache.release_staging(charged)
            else:
                live.append((h2d_end, charged))
        charged = self.cache.reserve_staging(nbytes)
        live.append((transfer.end, charged))
        self._staging = live
        tier = self.cache.tiers[TIER_PINNED]
        pin_op.attrs["pinned_acquire_bytes"] = charged
        pin_op.attrs["pinned_tier_used_bytes"] = tier.used_bytes
        if tier.capacity_bytes is not None:
            pin_op.attrs["pinned_budget_bytes"] = float(tier.capacity_bytes)
        transfer.attrs["pinned_release_bytes"] = charged

    def mark_consumed(self, ops: Sequence[TimelineOp]) -> None:
        """Register the compute op that read the oldest unconsumed item."""
        if ops:
            self.pipe.last_consumed_op = ops[-1]
        try:
            index = self._consumed.index(None)
        except ValueError:
            return  # nothing outstanding: consumption of an unscheduled item
        self._consumed[index] = ops[-1] if ops else self._consumed[index - 1] if index else None

    # ------------------------------------------------------------------ introspection
    @property
    def in_flight(self) -> int:
        """Items scheduled but not yet marked consumed."""
        return sum(1 for op in self._consumed if op is None)

    def stats(self) -> Dict[str, float]:
        return {
            "prefetch_depth": float(self.depth),
            "prefetch_items": float(self.items_scheduled),
            "prefetch_host_seconds": self.host_seconds_total,
        }


def build_datapipe(
    config: Optional[DataPipeConfig] = None,
    host: Optional[HostSpec] = None,
    *,
    slice_capacity: int = DEFAULT_SLICE_CAPACITY,
    use_sliced_csr: bool = True,
) -> DataPipe:
    """The datapipe builder: one :class:`DataPipe` with its own preparer."""
    return DataPipe(
        config, host, slice_capacity=slice_capacity, use_sliced_csr=use_sliced_csr
    )


__all__ = [
    "DATAPIPE_VARIANTS",
    "DataPipe",
    "DataPipeConfig",
    "PipeItem",
    "Prefetcher",
    "STAGE_GATHER",
    "STAGE_H2D",
    "STAGE_PIN",
    "STAGE_REGISTRY",
    "STAGE_SLICE",
    "build_datapipe",
]
