"""Inter-frame reuse buffers (❸ in Fig. 7, §4.4).

The first-layer aggregation of a snapshot depends only on its topology and
raw features, so the result computed in one frame/epoch is valid in every
later frame/epoch that contains the same snapshot.  PiPAD keeps all such
results in a CPU-side buffer and, capacity permitting, keeps the ones needed
by the *next* frame resident in a GPU-side buffer so they need neither
recomputation nor re-transfer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.gpu.device import SimulatedGPU


class ReuseManager:
    """CPU + GPU aggregation-result buffers with capacity-aware residency."""

    def __init__(
        self,
        device: SimulatedGPU,
        *,
        enabled: bool = True,
        gpu_buffer_fraction: float = 0.25,
    ) -> None:
        if not 0.0 <= gpu_buffer_fraction <= 1.0:
            raise ValueError("gpu_buffer_fraction must be in [0, 1]")
        self.device = device
        self.enabled = enabled
        self.gpu_buffer_fraction = gpu_buffer_fraction
        self._cpu_store: Dict[int, np.ndarray] = {}
        self._gpu_resident: Dict[int, int] = {}  # timestep -> bytes
        self._gpu_buffer_bytes = 0
        self.cpu_hits = 0
        self.gpu_hits = 0
        self.misses = 0

    # -- AggregationCache protocol (used by the providers) ----------------------
    def lookup(self, timestep: int) -> Optional[np.ndarray]:
        if not self.enabled:
            return None
        value = self._cpu_store.get(timestep)
        if value is None:
            self.misses += 1
            return None
        if timestep in self._gpu_resident:
            self.gpu_hits += 1
        else:
            self.cpu_hits += 1
        return value

    def store(self, timestep: int, value: np.ndarray) -> None:
        if self.enabled:
            self._cpu_store[timestep] = value

    def peek(self, timestep: int) -> Optional[np.ndarray]:
        """Like :meth:`lookup` but without touching the hit/miss counters.

        The serving path uses this to patch a cached result incrementally;
        only genuine model-driven lookups should count towards the hit rate.
        """
        if not self.enabled:
            return None
        return self._cpu_store.get(timestep)

    def invalidate(self, timesteps: Iterable[int]) -> int:
        """Drop the cached aggregations of the given snapshots.

        A topology or feature delta invalidates the first-layer aggregation of
        every snapshot version it touches; callers must evict those entries
        before the next forward pass or the model would silently read stale
        results.  Returns the number of CPU-side entries actually removed.
        """
        removed = 0
        for timestep in timesteps:
            if self._cpu_store.pop(timestep, None) is not None:
                removed += 1
            self._gpu_resident.pop(timestep, None)
        return removed

    def hit_rate(self) -> float:
        """Fraction of lookups served from either buffer so far."""
        total = self.cpu_hits + self.gpu_hits + self.misses
        return (self.cpu_hits + self.gpu_hits) / total if total else 0.0

    # -- residency planning -------------------------------------------------------
    def has_cached(self, timestep: int) -> bool:
        return self.enabled and timestep in self._cpu_store

    def is_gpu_resident(self, timestep: int) -> bool:
        return self.enabled and timestep in self._gpu_resident

    def gpu_buffer_capacity(self) -> int:
        """Bytes the GPU-side buffer may occupy given current free memory."""
        free = self.device.spec.memory_bytes - self.device.allocated_bytes + self._gpu_buffer_bytes
        return int(free * self.gpu_buffer_fraction)

    def plan_gpu_residency(
        self, upcoming_timesteps: Sequence[int], bytes_per_timestep: Dict[int, int]
    ) -> List[int]:
        """Choose which cached results stay on the GPU for the next frame.

        Results are admitted in the order they will be used (§4.4: "based on
        the used order in the next frame") until the capacity budget runs out.
        The device allocation is resized only when it must grow, mirroring the
        paper's note that ``cudaMalloc``/``cudaFree`` churn is avoided.
        """
        if not self.enabled:
            return []
        capacity = self.gpu_buffer_capacity()
        resident: List[int] = []
        used = 0
        for timestep in upcoming_timesteps:
            if timestep not in self._cpu_store:
                continue
            size = bytes_per_timestep.get(timestep, self._cpu_store[timestep].nbytes)
            if used + size > capacity:
                break
            resident.append(timestep)
            used += size

        self._gpu_resident = {t: bytes_per_timestep.get(t, 0) for t in resident}
        if used > self._gpu_buffer_bytes:
            # Grow the buffer allocation (free + malloc models a realloc).
            if "reuse_buffer" in self.device._allocations:  # noqa: SLF001 - ledger access
                self.device.free("reuse_buffer")
            if self.device.would_fit(used):
                self.device.malloc("reuse_buffer", used)
                self._gpu_buffer_bytes = used
        return resident

    # -- reporting ------------------------------------------------------------------
    def cpu_bytes(self) -> int:
        return sum(v.nbytes for v in self._cpu_store.values())

    def stats(self) -> Dict[str, float]:
        return {
            "cpu_hits": float(self.cpu_hits),
            "gpu_hits": float(self.gpu_hits),
            "misses": float(self.misses),
            "cpu_cached_snapshots": float(len(self._cpu_store)),
            "gpu_resident_snapshots": float(len(self._gpu_resident)),
            "gpu_buffer_bytes": float(self._gpu_buffer_bytes),
        }

    def clear(self) -> None:
        self._cpu_store.clear()
        self._gpu_resident.clear()
        self._gpu_buffer_bytes = 0
        self.cpu_hits = self.gpu_hits = self.misses = 0
