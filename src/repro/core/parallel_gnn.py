"""Parallel aggregation provider: PiPAD's multi-snapshot GNN execution (§4.2).

For one partition of ``S`` snapshots, the provider performs a single
aggregation of the shared (overlap) topology against the coalescent feature
matrix ``[X_1 | ... | X_S]`` and one small aggregation per snapshot for its
exclusive edges; the results are recombined, the mean normalization applied
per snapshot, and — for reusable layers — the per-snapshot results are stored
in the reuse cache.  Numerically the output is identical to aggregating each
snapshot independently (the decomposition ``A_i = A_over + A_excl_i`` is
exact); only the memory behaviour and cost differ, which is the point.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.data_prep import PartitionData
from repro.graph.sliced_csr import DEFAULT_SLICE_CAPACITY
from repro.gpu.spec import GPUSpec
from repro.kernels.spmm_csr import GESpMMAggregation
from repro.kernels.spmm_sliced import SlicedParallelAggregation
from repro.nn.aggregation import AggregationCache, mean_inverse_degree
from repro.tensor import ops
from repro.tensor.function import op_scope
from repro.tensor.sparse import spmm
from repro.tensor.tensor import Tensor


class ParallelAggregationProvider:
    """Aggregates a whole partition at once over its overlap decomposition."""

    def __init__(
        self,
        partition: PartitionData,
        spec: Optional[GPUSpec] = None,
        scale: float = 1.0,
        cache: Optional[AggregationCache] = None,
        reusable_layers: Sequence[int] = (0,),
        *,
        slice_capacity: int = DEFAULT_SLICE_CAPACITY,
        use_sliced_csr: bool = True,
    ) -> None:
        self.partition = partition
        self.spec = spec or GPUSpec()
        self.scale = scale
        self.cache = cache
        self.reusable_layers = tuple(reusable_layers)
        self.slice_capacity = slice_capacity
        self.use_sliced_csr = use_sliced_csr
        self.cache_hits = 0
        self.cache_misses = 0

        snapshots = partition.snapshots
        self._inv_degree = [Tensor(mean_inverse_degree(s)) for s in snapshots]

        overlap_adj = partition.overlap.overlap
        self._overlap_kernel = None
        if overlap_adj.nnz:
            self._overlap_kernel = self._make_kernel(overlap_adj, snapshots_coalesced=len(snapshots))
        self._exclusive_kernels = [
            self._make_kernel(excl, snapshots_coalesced=1) if excl.nnz else None
            for excl in partition.overlap.exclusives
        ]

    def _make_kernel(self, adjacency, snapshots_coalesced: int):
        if self.use_sliced_csr:
            return SlicedParallelAggregation(
                adjacency,
                self.spec,
                self.scale,
                slice_capacity=self.slice_capacity,
                snapshots_coalesced=snapshots_coalesced,
            )
        return GESpMMAggregation(adjacency, self.spec, self.scale)

    # -- provider interface ---------------------------------------------------
    @property
    def num_snapshots(self) -> int:
        return self.partition.size

    def aggregate_many(self, layer: int, xs: Sequence[Tensor]) -> List[Tensor]:
        if len(xs) != self.num_snapshots:
            raise ValueError(f"expected {self.num_snapshots} feature tensors, got {len(xs)}")
        snapshots = self.partition.snapshots
        reusable = layer in self.reusable_layers and self.cache is not None

        # Serve every snapshot from the cache when possible (all-or-nothing per
        # snapshot; mixing cached and computed snapshots is still exact).
        cached_results: List[Optional[np.ndarray]] = [
            self.cache.lookup(s.timestep) if reusable else None for s in snapshots
        ]
        to_compute = [i for i, c in enumerate(cached_results) if c is None]
        self.cache_hits += len(snapshots) - len(to_compute)
        self.cache_misses += len(to_compute)

        computed: dict = {}
        if to_compute:
            feature_dim = xs[0].shape[1]
            with op_scope("aggregation"):
                # Parallel aggregation of the overlap topology against the
                # coalescent feature matrix of the snapshots still to compute.
                if self._overlap_kernel is not None:
                    coalescent = (
                        ops.concat([xs[i] for i in to_compute], axis=1)
                        if len(to_compute) > 1
                        else xs[to_compute[0]]
                    )
                    overlap_out = spmm(self._overlap_kernel, coalescent)
                else:
                    overlap_out = None
                for position, index in enumerate(to_compute):
                    x = xs[index]
                    if overlap_out is not None:
                        start = position * feature_dim
                        part = overlap_out[:, start : start + feature_dim]
                    else:
                        part = None
                    exclusive_kernel = self._exclusive_kernels[index]
                    pieces = x if part is None else part + x
                    if exclusive_kernel is not None:
                        pieces = pieces + spmm(exclusive_kernel, x)
                    computed[index] = pieces * self._inv_degree[index]

        results: List[Tensor] = []
        for index, snapshot in enumerate(snapshots):
            if cached_results[index] is not None:
                results.append(Tensor(cached_results[index]))
                continue
            result = computed[index]
            if reusable:
                self.cache.store(snapshot.timestep, result.data)
            results.append(result)
        return results
