"""Online graph analyzer: CSR → sliced CSR conversion (❶ in Fig. 7).

The slicer runs on the host during the preparing epochs, converts every
snapshot's adjacency into the sliced format once, caches the result, and
reports how long the conversion takes (an analytic per-nnz cost, charged to
the CPU resource of the timeline so it can overlap with device work).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.graph.csr import CSRMatrix
from repro.graph.sliced_csr import DEFAULT_SLICE_CAPACITY, SlicedCSRMatrix
from repro.graph.snapshot import GraphSnapshot
from repro.gpu.spec import HostSpec


class GraphSlicer:
    """Converts and caches sliced-CSR adjacencies for a snapshot sequence."""

    def __init__(
        self,
        slice_capacity: int = DEFAULT_SLICE_CAPACITY,
        host: Optional[HostSpec] = None,
    ) -> None:
        self.slice_capacity = slice_capacity
        self.host = host or HostSpec()
        self._cache: Dict[int, SlicedCSRMatrix] = {}
        self.total_host_seconds = 0.0

    def slice_adjacency(self, adjacency: CSRMatrix, key: Optional[int] = None) -> SlicedCSRMatrix:
        """Slice one adjacency (cached by ``key`` when provided)."""
        if key is not None and key in self._cache:
            return self._cache[key]
        sliced = SlicedCSRMatrix.from_csr(adjacency, slice_capacity=self.slice_capacity)
        self.total_host_seconds += self.conversion_seconds(adjacency)
        if key is not None:
            self._cache[key] = sliced
        return sliced

    def slice_snapshot(self, snapshot: GraphSnapshot) -> SlicedCSRMatrix:
        return self.slice_adjacency(snapshot.adjacency, key=snapshot.timestep)

    def conversion_seconds(self, adjacency: CSRMatrix) -> float:
        """Analytic host time of one CSR→sliced conversion."""
        return adjacency.nnz * self.host.slicing_ns_per_nnz * 1e-9

    def is_cached(self, timestep: int) -> bool:
        return timestep in self._cache

    def cached_bytes(self) -> int:
        return sum(s.nbytes for s in self._cache.values())

    def clear(self) -> None:
        self._cache.clear()
        self.total_host_seconds = 0.0
