"""Partition-wise data preparation (❷ in Fig. 7).

For every snapshot group PiPAD processes together, the data-preparation
module extracts the overlap topology, builds the overlap/exclusive sliced
adjacencies and knows how many bytes the group costs to ship.  Extraction
results are cached by ``(start timestep, group size)`` because the same
groups recur in every subsequent epoch — the paper amortizes the one-off
extraction over the preparing epochs the same way.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.overlap import SnapshotOverlap, extract_overlap
from repro.graph.sliced_csr import DEFAULT_SLICE_CAPACITY, SlicedCSRMatrix
from repro.graph.snapshot import GraphSnapshot
from repro.gpu.spec import HostSpec


@dataclass(frozen=True)
class PartitionData:
    """Prepared adjacency data of one snapshot group."""

    start_timestep: int
    snapshots: Tuple[GraphSnapshot, ...]
    overlap: SnapshotOverlap
    #: bytes of the overlap adjacency in the transfer format (sliced CSR)
    overlap_bytes: int
    #: bytes of each exclusive adjacency in the transfer format
    exclusive_bytes: Tuple[int, ...]
    #: analytic host seconds spent extracting this group's overlap
    extraction_seconds: float

    @property
    def size(self) -> int:
        return len(self.snapshots)

    @property
    def overlap_rate(self) -> float:
        return self.overlap.overlap_rate

    @property
    def adjacency_bytes(self) -> int:
        """Total adjacency bytes shipped for the group (overlap + exclusives)."""
        return self.overlap_bytes + sum(self.exclusive_bytes)

    @property
    def baseline_adjacency_bytes(self) -> int:
        """Adjacency bytes if every snapshot were shipped in full (CSR)."""
        return sum(s.adjacency.nbytes for s in self.snapshots)


class DataPreparer:
    """Builds and caches :class:`PartitionData` for snapshot groups."""

    def __init__(
        self,
        slice_capacity: int = DEFAULT_SLICE_CAPACITY,
        host: Optional[HostSpec] = None,
        *,
        use_sliced_csr: bool = True,
    ) -> None:
        self.slice_capacity = slice_capacity
        self.host = host or HostSpec()
        self.use_sliced_csr = use_sliced_csr
        self._cache: Dict[Tuple[int, int], PartitionData] = {}
        self.total_extraction_seconds = 0.0

    # -- helpers ---------------------------------------------------------------
    def _format_bytes(self, adjacency) -> int:
        if adjacency.nnz == 0:
            return 0
        if self.use_sliced_csr:
            return SlicedCSRMatrix.from_csr(adjacency, slice_capacity=self.slice_capacity).nbytes
        return adjacency.nbytes

    def _extraction_seconds(self, snapshots: Sequence[GraphSnapshot]) -> float:
        total_nnz = sum(s.adjacency.nnz for s in snapshots)
        return total_nnz * self.host.overlap_extract_ns_per_nnz * 1e-9

    # -- public API ---------------------------------------------------------------
    def prepare(self, snapshots: Sequence[GraphSnapshot]) -> PartitionData:
        """Prepare (or fetch from cache) the overlap decomposition of a group.

        .. deprecated::
            Build partitions through the staged datapipe instead:
            ``repro.core.datapipe.build_datapipe(...).partition(snapshots)``
            (the engine resolves ``RunSpec.data`` through
            ``repro.api.registries.DATAPIPE_REGISTRY``).  This shim remains
            for backward compatibility.
        """
        warnings.warn(
            "DataPreparer.prepare is deprecated; build partitions through the "
            "datapipe builder (repro.core.datapipe.build_datapipe(...)"
            ".partition) or declare a DataSpec on the RunSpec",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._prepare(snapshots)

    def _prepare(self, snapshots: Sequence[GraphSnapshot]) -> PartitionData:
        """Warning-free internal path (datapipe + in-repo callers)."""
        if not snapshots:
            raise ValueError("cannot prepare an empty snapshot group")
        key = (snapshots[0].timestep, len(snapshots))
        if key in self._cache:
            return self._cache[key]
        overlap = extract_overlap([s.adjacency for s in snapshots])
        extraction_seconds = self._extraction_seconds(snapshots)
        self.total_extraction_seconds += extraction_seconds
        data = PartitionData(
            start_timestep=snapshots[0].timestep,
            snapshots=tuple(snapshots),
            overlap=overlap,
            overlap_bytes=self._format_bytes(overlap.overlap),
            exclusive_bytes=tuple(self._format_bytes(e) for e in overlap.exclusives),
            extraction_seconds=extraction_seconds,
        )
        self._cache[key] = data
        return data

    def prepare_from_decomposition(
        self, snapshots: Sequence[GraphSnapshot], overlap: SnapshotOverlap
    ) -> PartitionData:
        """Build :class:`PartitionData` from an already-known decomposition.

        The serving path maintains the window decomposition incrementally
        (:class:`~repro.graph.overlap.IncrementalOverlapTracker`), so no
        extraction work is charged; only the transfer-format sizes are
        computed.  Results are *not* cached: snapshot versions are unique and
        the caller owns their lifetime.
        """
        if not snapshots:
            raise ValueError("cannot prepare an empty snapshot group")
        if len(snapshots) != overlap.group_size:
            raise ValueError(
                f"decomposition covers {overlap.group_size} snapshots, got {len(snapshots)}"
            )
        return PartitionData(
            start_timestep=snapshots[0].timestep,
            snapshots=tuple(snapshots),
            overlap=overlap,
            overlap_bytes=self._format_bytes(overlap.overlap),
            exclusive_bytes=tuple(self._format_bytes(e) for e in overlap.exclusives),
            extraction_seconds=0.0,
        )

    def is_cached(self, start_timestep: int, size: int) -> bool:
        return (start_timestep, size) in self._cache

    def prepare_frame(
        self, snapshots: Sequence[GraphSnapshot], s_per: int
    ) -> List[PartitionData]:
        """Prepare every partition of a frame for a given parallelism level."""
        groups = [snapshots[i : i + s_per] for i in range(0, len(snapshots), s_per)]
        return [self._prepare(group) for group in groups]

    def clear(self) -> None:
        self._cache.clear()
        self.total_extraction_seconds = 0.0
