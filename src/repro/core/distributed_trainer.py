"""Data-parallel multi-GPU training over node-sharded snapshot frames.

:class:`DistributedTrainer` wraps the PiPAD trainer with the distributed
execution model of :mod:`repro.distributed`:

- the node set is sharded across ``K`` devices by a
  :class:`~repro.graph.partition.GraphPartitioner` (edge-balanced ranges
  with halo-node bookkeeping);
- every device runs the PiPAD pipeline on its shard — per-shard transfers,
  overlap-decomposed adjacencies and kernels scaled to the shard's share of
  the work — on its own timeline inside a
  :class:`~repro.gpu.device_group.DeviceGroup`;
- remote inputs move as collectives on the interconnect: a ``halo_exchange``
  ships neighbor features before each partition's aggregation, an
  ``all_gather`` synchronizes the recurrent hidden state after each
  partition, and the partial gradients of the shard replicas are combined by
  a ring ``all_reduce`` after every frame's backward pass.

Numerics are unchanged: the model still trains on the full graph exactly as
the single-GPU trainer does (losses are bit-identical); the device group
only accounts for *when* the sharded execution of the same work would finish
on ``K`` devices.  Preparing/profiling epochs run in the canonical manner on
the lead device, mirroring PiPAD's single-device preparing phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import TrainerConfig
from repro.baselines.results import TrainingResult
from repro.core.config import PiPADConfig
from repro.core.datapipe import DataPipeConfig, PipeItem, Prefetcher
from repro.core.trainer import PiPADTrainer
from repro.gpu.device import SimulatedGPU
from repro.gpu.device_group import DeviceGroup
from repro.gpu.interconnect import Interconnect
from repro.gpu.kernel_cost import CATEGORY_AGGREGATION, KernelCost
from repro.gpu.timeline import TimelineOp
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.partition import GraphPartitioner
from repro.graph.snapshot import GraphSnapshot
from repro.memory import MemoryConfig
from repro.utils.validation import check_positive

#: smallest per-device cost fraction (guards ``KernelCost.scaled`` against
#: degenerate shards that own nodes but no edges in some snapshot)
_MIN_FRACTION = 1e-9

#: ``TrainingResult.extras`` keys itemizing the collective times of a
#: distributed run (written by the distributed/pipeline trainers'
#: ``_extra_metrics`` from ``DeviceGroup.collective_seconds``; consumed by the
#: scaling experiments and the :class:`~repro.api.engine.RunReport` collective
#: breakdown)
COLLECTIVE_KEYS = (
    "halo_exchange_seconds",
    "all_gather_seconds",
    "all_reduce_seconds",
    "peer_transfer_seconds",
)


def aggregate_group_result(result: TrainingResult, group: DeviceGroup) -> TrainingResult:
    """Re-aggregate a :class:`TrainingResult` across a whole device group.

    The base trainer fills the result from the lead device, which in a
    multi-device run only carries its share of the work; every extensive
    counter is therefore re-computed over the group so the record describes
    the run, not one device.  Shared by :class:`DistributedTrainer` and
    :class:`~repro.core.pipeline_trainer.PipelineTrainer`.
    """
    result.simulated_seconds = group.makespan()
    result.breakdown = group.breakdown()
    if group.num_devices > 1:
        category: Dict[str, float] = {}
        for device in group:
            for cat, seconds in device.category_seconds().items():
                category[cat] = category.get(cat, 0.0) + seconds
        result.category_seconds = category
        result.kernel_launches = sum(
            stats.launches
            for device in group
            for stats in device.kernel_stats.values()
        )
        result.peak_memory_bytes = max(d.peak_bytes for d in group)
        result.memory_requests = sum(
            d.memory_statistics()["requests"] for d in group
        )
        result.memory_transactions = sum(
            d.memory_statistics()["transactions"] for d in group
        )
        result.gpu_utilization = float(
            np.mean([d.gpu_utilization() for d in group])
        )
        result.sm_utilization = float(
            np.mean([d.sm_utilization() for d in group])
        )
    return result


@dataclass(frozen=True)
class DistributedConfig:
    """Knobs of the multi-GPU execution model."""

    #: number of devices the node set is sharded across
    num_devices: int = 2
    #: node-assignment strategy of the partitioner (``"edges"`` balances the
    #: aggregation work; ``"nodes"`` gives equal-sized ranges)
    partition_mode: str = "edges"
    #: peer-link model between devices (``"nvlink"`` or ``"pcie"``)
    interconnect: str = "nvlink"

    def __post_init__(self) -> None:
        check_positive("num_devices", self.num_devices)


class DistributedTrainer(PiPADTrainer):
    """PiPAD training sharded node-wise across a simulated device group."""

    method_name = "PiPAD-DP"

    def __init__(
        self,
        graph: DynamicGraph,
        config: Optional[TrainerConfig] = None,
        pipad_config: Optional[PiPADConfig] = None,
        dist_config: Optional[DistributedConfig] = None,
        data_config: Optional[DataPipeConfig] = None,
        memory_config: Optional[MemoryConfig] = None,
    ) -> None:
        self.dist = dist_config or DistributedConfig()
        super().__init__(graph, config, pipad_config, data_config, memory_config)
        devices: List[SimulatedGPU] = [self.device]
        devices += [
            SimulatedGPU(
                self.config.gpu,
                self.config.pcie,
                self.config.host,
                use_cuda_graph=self.use_cuda_graph,
            )
            for _ in range(self.dist.num_devices - 1)
        ]
        self.group = DeviceGroup(
            devices=devices,
            interconnect_kind=self.dist.interconnect,
        )
        self.partitioner = GraphPartitioner(
            self.dist.num_devices, mode=self.dist.partition_mode
        )
        #: one prefetcher per shard: each device preps/ships its own node
        #: range.  Shard 0 reuses the single-device prefetcher so gating
        #: state stays in one place.
        self.prefetchers: List[Prefetcher] = [self.prefetcher] + [
            Prefetcher(
                self.datapipe, dev, device_index=index, hooks=lambda: self.hooks
            )
            for index, dev in enumerate(devices[1:], start=1)
        ]
        if self.feature_cache is not None:
            # One cache per shard, sized against that device's own HBM; the
            # node ranges they key against follow ``self.boundaries``.
            self.feature_caches += [
                self._build_feature_cache(dev) for dev in devices[1:]
            ]
            for index, prefetcher in enumerate(self.prefetchers):
                prefetcher.cache = self.feature_caches[index]
        # Cheap provisional plan; _run_preprocessing replans (and computes the
        # halo/edge statistics, an O(devices x snapshots x edges) sharding
        # pass) right before the first steady-state frame can consume them.
        self.boundaries = self.partitioner.plan(graph.snapshots)
        self._node_fractions = self.partitioner.node_fractions(self.boundaries)
        self._edge_fractions = np.full(
            self.dist.num_devices, 1.0 / self.dist.num_devices
        )
        self._halo_nodes = np.zeros(self.dist.num_devices)
        self._gradient_bytes = float(
            sum(p.data.nbytes for p in self.model.parameters())
        )
        #: bytes per feature element (halo rows ship in the dataset's dtype)
        self._feature_itemsize = float(graph.snapshots[0].features.dtype.itemsize)
        #: bytes per state element (the hidden state carries the model's
        #: parameter dtype)
        self._state_itemsize = float(
            self.model.parameters()[0].data.dtype.itemsize
        )
        #: per-device ops the next partition's compute must wait for
        self._shard_ready: List[List[TimelineOp]] = [[] for _ in devices]
        self._halo_bytes_total = 0.0

    # ------------------------------------------------------------------ cost sharing
    def _sim_now(self) -> float:
        return self.group.makespan()

    def _feature_shards(self) -> int:
        return self.dist.num_devices

    def _cost_fraction(self, device: int, cost: KernelCost) -> float:
        """Share of one kernel's work that lands on ``device``'s shard.

        Aggregation work follows the shard's edges; dense update/RNN/
        elementwise work follows its node count.
        """
        if cost.category == CATEGORY_AGGREGATION:
            return max(float(self._edge_fractions[device]), _MIN_FRACTION)
        return max(float(self._node_fractions[device]), _MIN_FRACTION)

    def _halo_feature_bytes(self, device: int) -> float:
        return float(
            self._halo_nodes[device]
            * self.graph.feature_dim
            * self._feature_itemsize
            * self.scale
        )

    def _shard_state_bytes(self, device: int) -> float:
        """Hidden-state rows a device contributes to the post-partition sync."""
        nodes = float(self.boundaries[device + 1] - self.boundaries[device])
        return nodes * self._hidden_dim * self._state_itemsize * self.scale

    def _measured_node_weight(self) -> float:
        """Dense per-node work in units of per-edge aggregation work.

        Calibrated from the preparing-epoch kernel statistics, the same
        source the dynamic tuner feeds on; without them (``preparing_epochs
        == 0``) the node and edge masses are weighted equally.
        """
        mean_edges = float(
            np.mean([s.num_edges for s in self.graph.snapshots])
        )
        fallback = mean_edges / max(1.0, float(self.graph.num_nodes))
        stats = self.device.kernel_stats
        aggregation = stats[CATEGORY_AGGREGATION].seconds
        dense = sum(
            s.seconds for cat, s in stats.items() if cat != CATEGORY_AGGREGATION
        )
        if aggregation <= 0 or dense <= 0 or mean_edges == 0:
            return fallback
        per_edge = aggregation / mean_edges
        per_node = dense / float(self.graph.num_nodes)
        return per_node / per_edge

    def _replan(self) -> None:
        """Re-balance the shard boundaries once kernel statistics exist."""
        self.boundaries = self.partitioner.plan(
            self.graph.snapshots, node_weight=self._measured_node_weight()
        )
        self._node_fractions = self.partitioner.node_fractions(self.boundaries)
        self._edge_fractions = self.partitioner.edge_fractions(
            self.graph.snapshots, self.boundaries
        )
        self._halo_nodes = self.partitioner.mean_halo_nodes(
            self.graph.snapshots, self.boundaries
        )
        # Re-sharding remaps which device owns which node blocks; any cached
        # residency keyed against the old ranges is stale.
        for cache in self.feature_caches:
            cache.clear()

    def _run_preprocessing(self) -> None:
        super()._run_preprocessing()
        self._replan()

    # ------------------------------------------------------------------ execution overrides
    def _transfer_partition(
        self,
        snapshots: Sequence[GraphSnapshot],
        depends_on: Optional[Sequence[TimelineOp]],
    ) -> List[TimelineOp]:
        if self._preparing:
            return super()._transfer_partition(snapshots, depends_on)
        total_bytes = self._partition_transfer_bytes(snapshots)
        transfer_ops: List[List[TimelineOp]] = []
        halo_bytes: List[float] = []
        for index, device in enumerate(self.group.devices):
            fraction = max(float(self._node_fractions[index]), _MIN_FRACTION)
            item = PipeItem(
                label=f"p{snapshots[0].timestep}",
                num_snapshots=len(snapshots),
                transfer_bytes=total_bytes * fraction,
                slice_scale=fraction,
            )
            if self.feature_cache is not None:
                plan = self._cache_plan(
                    snapshots,
                    index=index,
                    lo=int(self.boundaries[index]),
                    hi=int(self.boundaries[index + 1]),
                    label=f"{item.label}_d{index}",
                )
                item = self._apply_cache_plan(item, plan)
            transfer_ops.append(
                self.prefetchers[index].schedule(item, depends_on=depends_on)
            )
            halo_bytes.append(self._halo_feature_bytes(index))
        if self.group.num_devices == 1:
            return transfer_ops[0]
        self._halo_bytes_total += sum(halo_bytes)
        halo_ops = self.group.halo_exchange(
            halo_bytes,
            label=f"halo_p{snapshots[0].timestep}",
            depends_on=transfer_ops,
        )
        return halo_ops

    def _launch_partition_kernels(
        self,
        costs: Sequence[KernelCost],
        snapshots: Sequence[GraphSnapshot],
        transfer_ops: Sequence[TimelineOp],
        last_compute: Sequence[TimelineOp],
    ) -> List[TimelineOp]:
        if self._preparing or self.group.num_devices == 1:
            return super()._launch_partition_kernels(
                costs, snapshots, transfer_ops, last_compute
            )
        compute_stream = self._compute_stream()
        per_device_last: List[List[TimelineOp]] = []
        for index, device in enumerate(self.group.devices):
            shard_costs = [c.scaled(self._cost_fraction(index, c)) for c in costs]
            device.host_op(
                self._dispatch_seconds(sum(c.launches for c in shard_costs)),
                label="dispatch",
                stream=self._dispatch_stream(),
            )
            deps = list(transfer_ops) + list(last_compute) + self._shard_ready[index]
            ops = device.launch_kernels(
                shard_costs,
                label=f"fwd_t{snapshots[0].timestep}",
                stream=compute_stream,
                depends_on=deps,
            )
            self.prefetchers[index].mark_consumed(ops[-1:])
            per_device_last.append(ops[-1:])
        # The recurrent state of remote nodes feeds the next partition's
        # aggregation, so shard results are all-gathered before moving on.
        sync_ops = self.group.all_gather(
            max(self._shard_state_bytes(k) for k in range(self.group.num_devices)),
            label=f"state_sync_t{snapshots[0].timestep}",
            depends_on=per_device_last,
        )
        self._shard_ready = [[op] for op in sync_ops]
        # The lead device's sync op carries the synchronized end time, so the
        # base class's ``last_compute`` chaining stays correct.
        return [sync_ops[0]]

    def _launch_backward(
        self, costs: Sequence[KernelCost], last_compute: Sequence[TimelineOp]
    ) -> List[TimelineOp]:
        if self._preparing or self.group.num_devices == 1:
            return super()._launch_backward(costs, last_compute)
        per_device_last: List[List[TimelineOp]] = []
        for index, device in enumerate(self.group.devices):
            shard_costs = [c.scaled(self._cost_fraction(index, c)) for c in costs]
            device.host_op(
                self._dispatch_seconds(sum(c.launches for c in shard_costs)),
                label="dispatch_bwd",
                stream=self._dispatch_stream(),
            )
            ops = device.launch_kernels(
                shard_costs,
                label="backward",
                stream=self._compute_stream(),
                depends_on=list(last_compute) + self._shard_ready[index],
            )
            per_device_last.append(ops[-1:])
        # Shard replicas hold partial gradients; combine them before the
        # optimizer step so every replica applies the same update.
        reduce_ops = self.group.all_reduce(
            self._gradient_bytes,
            label="grad_all_reduce",
            depends_on=per_device_last,
        )
        self._shard_ready = [[op] for op in reduce_ops]
        return [reduce_ops[0]]

    # ------------------------------------------------------------------ reporting
    def train(self, epochs: Optional[int] = None) -> TrainingResult:
        """Train and report group-wide quantities.

        The base class fills the result from the lead device, which in steady
        state only carries its ~1/K shard of the work; every extensive
        counter is therefore re-aggregated across the whole group so the
        record describes the run, not one shard.  ``epoch_metrics`` stay the
        lead-device view (their simulated seconds track the group clock —
        collectives keep the devices in lockstep — but their kind-seconds
        are shard-local).
        """
        result = super().train(epochs)
        return aggregate_group_result(result, self.group)

    def _extra_metrics(self) -> Dict[str, float]:
        extras = super()._extra_metrics()
        if self.group.num_devices > 1:
            extras["prefetch_items"] = float(
                sum(p.items_scheduled for p in self.prefetchers)
            )
            extras["prefetch_host_seconds"] = sum(
                p.host_seconds_total for p in self.prefetchers
            )
        extras["num_devices"] = float(self.group.num_devices)
        extras["halo_feature_bytes"] = self._halo_bytes_total
        for kind, seconds in self.group.collective_seconds.items():
            extras[f"{kind}_seconds"] = seconds
        device_seconds = self.group.device_seconds()
        extras["device_seconds_max"] = float(max(device_seconds))
        extras["device_seconds_min"] = float(min(device_seconds))
        balance = np.array(self._edge_fractions, dtype=np.float64)
        extras["edge_fraction_spread"] = float(balance.max() - balance.min())
        return extras
