"""Frame-pipeline parallelism: snapshot groups sharded across devices.

:class:`PipelineTrainer` is the multi-device analogue of the paper's Fig. 8
pipeline.  Where :class:`~repro.core.distributed_trainer.DistributedTrainer`
shards the *node set* (data parallelism), the pipeline trainer shards the
*frame*: a :class:`~repro.graph.partition.FramePartitioner` assigns each
snapshot group of a frame to one of ``K`` devices (a pipeline *stage*), and
the stages execute a 1F1B-style schedule —

- every stage prefetches its own groups' slices on its own PCIe link, so
  device ``d+1``'s transfer for group ``g+1`` hides behind device ``d``'s
  compute of group ``g`` (the cross-device generalization of partition-level
  transfer/compute overlap);
- the *aggregation* kernels of a group depend only on that group's
  transferred slices (a first-layer aggregation is a function of topology and
  raw features, the same observation inter-frame reuse is built on), so they
  run as soon as the data lands — in parallel across stages;
- the *dense* kernels (update GEMM, recurrent cell) consume the previous
  group's hidden state, which arrives as a point-to-point
  :meth:`~repro.gpu.device_group.DeviceGroup.send` on the ``peer_link``
  engine — this state chain is the pipeline's serial dependency, and the time
  a stage stalls on it beyond its own local readiness is accounted as
  **bubble time**;
- the backward pass runs the chain in reverse (state gradients hop stage to
  stage), aggregation backward drains off-chain per stage, and a ring
  ``all_reduce`` combines the replicas' weight gradients before the
  optimizer step, exactly as in the data-parallel trainer.

Numerics are untouched: the model trains on the full graph exactly as the
single-GPU PiPAD trainer does (losses are bit-identical — the preparing
epochs, tuner decisions and every forward/backward run the identical code
path); the device group only accounts for *when* the same work would finish
under the pipelined schedule.  The overlap-reuse cache is the existing
:class:`~repro.core.reuse.ReuseManager`: each stage's transfer sizing
consults the same cache, so reuse keeps cutting per-stage transfer volume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import TrainerConfig
from repro.baselines.results import TrainingResult
from repro.core.config import PiPADConfig
from repro.core.datapipe import DataPipeConfig, PipeItem, Prefetcher
from repro.core.distributed_trainer import aggregate_group_result
from repro.core.trainer import PiPADTrainer
from repro.gpu.device import SimulatedGPU
from repro.gpu.device_group import DeviceGroup
from repro.gpu.kernel_cost import CATEGORY_AGGREGATION, KernelCost
from repro.gpu.timeline import RESOURCE_COMPUTE, TimelineOp
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.frame import Frame
from repro.graph.partition import SCHEDULE_MODES, FramePartitioner
from repro.graph.snapshot import GraphSnapshot
from repro.memory import MemoryConfig
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the frame-pipeline execution model."""

    #: number of pipeline stages (devices) the frame is sharded across
    num_devices: int = 2
    #: peer-link model between stages (``"nvlink"`` or ``"pcie"``)
    interconnect: str = "nvlink"
    #: stage-assignment strategy of the :class:`FramePartitioner`
    schedule: str = "round_robin"

    def __post_init__(self) -> None:
        check_positive("num_devices", self.num_devices)
        if self.schedule not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; expected one of {SCHEDULE_MODES}"
            )


class PipelineTrainer(PiPADTrainer):
    """PiPAD training with snapshot groups pipelined across a device group."""

    method_name = "PiPAD-PP"

    def __init__(
        self,
        graph: DynamicGraph,
        config: Optional[TrainerConfig] = None,
        pipad_config: Optional[PiPADConfig] = None,
        pipe_config: Optional[PipelineConfig] = None,
        data_config: Optional[DataPipeConfig] = None,
        memory_config: Optional[MemoryConfig] = None,
    ) -> None:
        self.pipe = pipe_config or PipelineConfig()
        super().__init__(graph, config, pipad_config, data_config, memory_config)
        devices: List[SimulatedGPU] = [self.device]
        devices += [
            SimulatedGPU(
                self.config.gpu,
                self.config.pcie,
                self.config.host,
                use_cuda_graph=self.use_cuda_graph,
            )
            for _ in range(self.pipe.num_devices - 1)
        ]
        self.group = DeviceGroup(
            devices=devices, interconnect_kind=self.pipe.interconnect
        )
        self.frame_partitioner = FramePartitioner(
            self.pipe.num_devices, schedule=self.pipe.schedule
        )
        #: one prefetcher per pipeline stage: each stage prefetches its own
        #: groups' slices on its own PCIe link / host stream.  Stage 0 reuses
        #: the single-device prefetcher so gating state stays in one place.
        self.prefetchers: List[Prefetcher] = [self.prefetcher] + [
            Prefetcher(
                self.datapipe, dev, device_index=index, hooks=lambda: self.hooks
            )
            for index, dev in enumerate(devices[1:], start=1)
        ]
        if self.feature_cache is not None:
            # One cache per pipeline stage: each stage's device stages the
            # feature rows of its own snapshot groups.
            self.feature_caches += [
                self._build_feature_cache(dev) for dev in devices[1:]
            ]
            for stage, prefetcher in enumerate(self.prefetchers):
                prefetcher.cache = self.feature_caches[stage]
        self._gradient_bytes = float(
            sum(p.data.nbytes for p in self.model.parameters())
        )
        #: bytes per state element (the hidden state is produced by the model,
        #: so it carries the parameter dtype)
        self._state_itemsize = float(
            self.model.parameters()[0].data.dtype.itemsize
        )
        #: stage of each group in the current frame (set per frame)
        self._assignment = np.zeros(0, dtype=np.int64)
        self._group_index = 0
        #: op producing the latest recurrent state, and the stage holding it
        self._state_op: Optional[TimelineOp] = None
        self._state_device = 0
        #: per-device gradient-all-reduce ops gating the next frame's kernels
        self._frame_ready: List[List[TimelineOp]] = [[] for _ in devices]
        self._bubble_seconds = 0.0

    # ------------------------------------------------------------------ sizing
    def _stage_state_bytes(self) -> float:
        """Bytes handed between adjacent pipeline stages.

        Recurrent models carry the per-node hidden state; weight-evolving
        models (EvolveGCN) instead ship the evolved weight matrices, which
        are node-count independent.  The backward chain moves the matching
        gradients, so the same size applies in both directions.
        """
        if self.model.evolves_weights:
            return self._gradient_bytes
        return float(
            self.graph.num_nodes * self._hidden_dim * self._state_itemsize * self.scale
        )

    def _split_costs(
        self, costs: Sequence[KernelCost]
    ) -> "tuple[List[KernelCost], List[KernelCost]]":
        """(state-independent aggregation costs, state-dependent dense costs)."""
        aggregation = [c for c in costs if c.category == CATEGORY_AGGREGATION]
        dense = [c for c in costs if c.category != CATEGORY_AGGREGATION]
        return aggregation, dense

    def _pipelined(self) -> bool:
        return not self._preparing and self.group.num_devices > 1

    def _feature_shards(self) -> int:
        return self.pipe.num_devices

    def _sim_now(self) -> float:
        return self.group.makespan()

    # ------------------------------------------------------------------ frame hooks
    def _before_frame(self, frame: Frame, epoch: int) -> None:
        super()._before_frame(frame, epoch)
        if not self._pipelined():
            return
        num_groups = len(self._make_partitions(frame))
        self._assignment = self.frame_partitioner.assign(num_groups)
        self._group_index = 0
        # Each frame re-initializes the recurrent state; the chain restarts.
        self._state_op = None
        self._state_device = 0

    def _transfer_partition(
        self,
        snapshots: Sequence[GraphSnapshot],
        depends_on: Optional[Sequence[TimelineOp]],
    ) -> List[TimelineOp]:
        if not self._pipelined():
            return super()._transfer_partition(snapshots, depends_on)
        stage = int(self._assignment[self._group_index])
        item = PipeItem(
            label=f"p{snapshots[0].timestep}",
            num_snapshots=len(snapshots),
            transfer_bytes=self._partition_transfer_bytes(snapshots),
        )
        if self.feature_cache is not None:
            plan = self._cache_plan(
                snapshots,
                index=stage,
                lo=0,
                hi=self.graph.num_nodes,
                label=f"{item.label}_s{stage}",
            )
            item = self._apply_cache_plan(item, plan)
        return self.prefetchers[stage].schedule(item, depends_on=depends_on)

    def _launch_partition_kernels(
        self,
        costs: Sequence[KernelCost],
        snapshots: Sequence[GraphSnapshot],
        transfer_ops: Sequence[TimelineOp],
        last_compute: Sequence[TimelineOp],
    ) -> List[TimelineOp]:
        if not self._pipelined():
            return super()._launch_partition_kernels(
                costs, snapshots, transfer_ops, last_compute
            )
        stage = int(self._assignment[self._group_index])
        device = self.group.devices[stage]
        stream = self._compute_stream()
        timestep = snapshots[0].timestep
        aggregation, dense = self._split_costs(costs)
        device.host_op(
            self._dispatch_seconds(sum(c.launches for c in costs)),
            label="dispatch",
            stream=self._dispatch_stream(),
        )
        frame_ready = self._frame_ready[stage]
        agg_ops = (
            device.launch_kernels(
                aggregation,
                label=f"fwd_agg_t{timestep}",
                stream=stream,
                depends_on=list(transfer_ops) + frame_ready,
            )
            if aggregation
            else []
        )
        # The state chain: the previous group's dense output feeds this
        # group's dense kernels — across stages it travels as a p2p transfer.
        state_deps: List[TimelineOp] = []
        if self._state_op is not None:
            if self._state_device != stage:
                _, recv_op = self.group.send(
                    self._state_device,
                    stage,
                    self._stage_state_bytes(),
                    label=f"state_t{timestep}",
                    depends_on=[self._state_op],
                )
                state_deps = [recv_op]
            else:
                state_deps = [self._state_op]
        local_deps = (agg_ops[-1:] if agg_ops else list(transfer_ops)) + frame_ready
        ops = self._launch_chained(
            device, dense, f"fwd_t{timestep}", stream, local_deps, state_deps
        )
        last = ops or agg_ops
        if last:
            self._state_op = last[-1]
            self._state_device = stage
        self.prefetchers[stage].mark_consumed(last[-1:])
        self._group_index += 1
        return last[-1:]

    def _launch_chained(
        self,
        device: SimulatedGPU,
        costs: List[KernelCost],
        label: str,
        stream: str,
        local_deps: List[TimelineOp],
        chain_deps: List[TimelineOp],
    ) -> List[TimelineOp]:
        """Launch state-chained kernels and account their pipeline bubble.

        The bubble is the stall attributable to the cross-stage dependency
        alone: how much later the first kernel starts than it would have from
        purely local readiness (own transfers/aggregation, compute engine and
        stream order).
        """
        if not costs:
            return []
        timeline = device.timeline
        local_ready = max(
            [
                timeline.resource_free_at(RESOURCE_COMPUTE),
                timeline.stream_free_at(stream),
                *(op.end for op in local_deps),
            ]
        )
        ops = device.launch_kernels(
            costs,
            label=label,
            stream=stream,
            depends_on=local_deps + chain_deps,
        )
        bubble = ops[0].start - local_ready
        if bubble > 0.0:
            self._bubble_seconds += bubble
            stage = self.group.devices.index(device)
            self.hooks.on_bubble(stage, local_ready, ops[0].start)
        return ops

    def _launch_backward(
        self, costs: Sequence[KernelCost], last_compute: Sequence[TimelineOp]
    ) -> List[TimelineOp]:
        if not self._pipelined():
            return super()._launch_backward(costs, last_compute)
        num_groups = len(self._assignment)
        share = 1.0 / num_groups
        # ``scaled`` divides the extensive work; the launches are genuinely
        # split across groups too (unlike the data-parallel trainer, where
        # every replica issues the full kernel sequence on its shard).
        shares = [
            replace(c.scaled(share), launches=max(1, round(c.launches * share)))
            for c in costs
        ]
        aggregation, dense = self._split_costs(shares)
        stream = self._compute_stream()
        per_device_last: List[List[TimelineOp]] = [
            list(ready) for ready in self._frame_ready
        ]
        chain_op: Optional[TimelineOp] = None
        chain_device = 0
        # Backward runs the stage chain in reverse: the state gradient hops
        # from the stage of group g to the stage of group g-1.
        for index in range(num_groups - 1, -1, -1):
            stage = int(self._assignment[index])
            device = self.group.devices[stage]
            device.host_op(
                self._dispatch_seconds(
                    sum(c.launches for c in aggregation + dense)
                ),
                label="dispatch_bwd",
                stream=self._dispatch_stream(),
            )
            if chain_op is None:
                chain_deps = list(last_compute)
            elif chain_device != stage:
                _, recv_op = self.group.send(
                    chain_device,
                    stage,
                    self._stage_state_bytes(),
                    label=f"grad_p{index}",
                    depends_on=[chain_op],
                )
                chain_deps = [recv_op]
            else:
                chain_deps = [chain_op]
            dense_ops = self._launch_chained(
                device, dense, "backward", stream, per_device_last[stage], chain_deps
            )
            # Aggregation backward needs only this group's upstream gradient;
            # it drains off-chain while the chain continues on other stages.
            agg_ops = (
                device.launch_kernels(
                    aggregation,
                    label="backward_agg",
                    stream=stream,
                    depends_on=dense_ops[-1:] or chain_deps,
                )
                if aggregation
                else []
            )
            if dense_ops:
                chain_op, chain_device = dense_ops[-1], stage
            tail = agg_ops or dense_ops
            if tail:
                per_device_last[stage] = tail[-1:]
        # Each stage holds the weight gradients of its own groups only;
        # combine the replicas before the optimizer step.
        reduce_ops = self.group.all_reduce(
            self._gradient_bytes,
            label="grad_all_reduce",
            depends_on=per_device_last,
        )
        self._frame_ready = [[op] for op in reduce_ops]
        return [reduce_ops[0]]

    # ------------------------------------------------------------------ reporting
    def train(self, epochs: Optional[int] = None) -> TrainingResult:
        """Train and report group-wide quantities (see
        :func:`~repro.core.distributed_trainer.aggregate_group_result`)."""
        result = super().train(epochs)
        return aggregate_group_result(result, self.group)

    def _extra_metrics(self) -> Dict[str, float]:
        extras = super()._extra_metrics()
        if self.group.num_devices > 1:
            extras["prefetch_items"] = float(
                sum(p.items_scheduled for p in self.prefetchers)
            )
            extras["prefetch_host_seconds"] = sum(
                p.host_seconds_total for p in self.prefetchers
            )
        extras["num_devices"] = float(self.group.num_devices)
        extras["pipeline_bubble_seconds"] = self._bubble_seconds
        for kind, seconds in self.group.collective_seconds.items():
            extras[f"{kind}_seconds"] = seconds
        device_seconds = self.group.device_seconds()
        extras["device_seconds_max"] = float(max(device_seconds))
        extras["device_seconds_min"] = float(min(device_seconds))
        return extras
