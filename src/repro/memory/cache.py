"""Multi-tier feature cache: GPU-resident rows over pinned-host and spill.

The cache models *where feature row-blocks live*, not the rows
themselves — numerics always read the authoritative feature arrays, so
caching can never change a loss or a prediction.  What it changes is the
byte accounting handed to the datapipe:

- **GPU tier** — rows resident in device HBM.  A hit here skips the
  entire gather → pin → h2d path.
- **Pinned tier** — rows staged in page-locked host memory.  This tier
  *is* the datapipe ``pin`` stage's staging buffer: a hit skips gather
  and pin but still pays the h2d copy at pinned bandwidth.
- **Spill tier** — rows explicitly spilled to pageable host memory.
  A hit is tracked (the row was cache-managed) but costs the same as a
  miss: it re-enters the pipe at the gather stage.

Evictions cascade downward (GPU → pinned → spill); eviction from the
spill tier is final.  A *dirty* block is never silently dropped: it
survives demotion, and a final eviction is accounted as a writeback
(counter + bytes) — the invariant the hypothesis property test pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from .policy import CACHE_POLICY_REGISTRY, CachePolicy, build_policy

TIER_GPU = "gpu"
TIER_PINNED = "pinned"
TIER_SPILL = "spill"
TIER_ORDER = (TIER_GPU, TIER_PINNED, TIER_SPILL)


@dataclass(frozen=True)
class MemoryConfig:
    """Core-level knobs for the feature cache (mirrors ``MemorySpec``)."""

    feature_cache: bool = False
    policy: str = "lru"
    gpu_budget_fraction: float = 0.5
    gpu_budget_mb: Optional[float] = None
    pinned_budget_mb: float = 256.0
    spill_budget_mb: Optional[float] = None
    block_rows: int = 256

    def __post_init__(self) -> None:
        if self.policy not in CACHE_POLICY_REGISTRY:
            known = ", ".join(sorted(CACHE_POLICY_REGISTRY))
            raise ValueError(f"unknown cache policy {self.policy!r} (known: {known})")
        if not 0.0 <= self.gpu_budget_fraction <= 1.0:
            raise ValueError("gpu_budget_fraction must be within [0, 1]")
        if self.gpu_budget_mb is not None and self.gpu_budget_mb < 0:
            raise ValueError("gpu_budget_mb must be >= 0")
        if self.pinned_budget_mb < 0:
            raise ValueError("pinned_budget_mb must be >= 0")
        if self.spill_budget_mb is not None and self.spill_budget_mb < 0:
            raise ValueError("spill_budget_mb must be >= 0")
        if self.block_rows < 1:
            raise ValueError("block_rows must be a positive integer")


@dataclass
class AccessPlan:
    """Outcome of one batched cache access, in bytes per tier.

    ``transfer_bytes``/``gather_bytes`` give the datapipe accounting
    directly: GPU hits skip the whole path, pinned hits skip gather+pin.
    """

    total_bytes: float = 0.0
    gpu_bytes: float = 0.0
    pinned_bytes: float = 0.0
    spill_bytes: float = 0.0
    miss_bytes: float = 0.0
    gpu_hits: int = 0
    pinned_hits: int = 0
    spill_hits: int = 0
    misses: int = 0
    #: cache keys the access touched, in request order (the happens-before
    #: analyzer marks the gather stage as reading exactly these blocks)
    block_keys: Tuple[Hashable, ...] = ()

    @property
    def transfer_bytes(self) -> float:
        """Bytes that must still cross PCIe (everything not GPU-resident)."""
        return max(0.0, self.total_bytes - self.gpu_bytes)

    @property
    def gather_bytes(self) -> float:
        """Bytes the host must still gather+pin (missed the pinned tier too)."""
        return max(0.0, self.total_bytes - self.gpu_bytes - self.pinned_bytes)


class CacheTier:
    """One tier: capacity-bounded set of key → bytes with a policy."""

    def __init__(self, name: str, capacity_bytes: Optional[int], policy: CachePolicy) -> None:
        self.name = name
        self.capacity_bytes = capacity_bytes  # None = unbounded
        self.policy = policy
        self.entries: Dict[Hashable, float] = {}
        self.used_bytes = 0.0
        #: bytes promised to in-flight staging buffers (no key, not evictable);
        #: the prefetcher charges its pin-stage buffers here so resident
        #: blocks plus staging never exceed the tier budget
        self.reserved_bytes = 0.0

    def __contains__(self, key: Hashable) -> bool:
        return key in self.entries

    def fits(self, nbytes: float) -> bool:
        return self.capacity_bytes is None or nbytes <= self.capacity_bytes

    def has_room(self, nbytes: float) -> bool:
        if self.capacity_bytes is None:
            return True
        return self.used_bytes + self.reserved_bytes + nbytes <= self.capacity_bytes

    def admit(self, key: Hashable, nbytes: float) -> None:
        self.entries[key] = nbytes
        self.used_bytes += nbytes
        self.policy.on_admit(key)

    def remove(self, key: Hashable) -> float:
        nbytes = self.entries.pop(key)
        self.used_bytes -= nbytes
        self.policy.on_evict(key)
        return nbytes

    def victim(self) -> Optional[Hashable]:
        return self.policy.victim()

    def clear(self) -> None:
        self.entries.clear()
        self.used_bytes = 0.0
        self.policy.clear()


class FeatureCache:
    """Three-tier feature-row cache with cascading demotion.

    Budgets are explicit byte capacities; derive the GPU budget with
    :func:`repro.gpu.memory_model.feature_cache_budget_bytes`.
    """

    def __init__(
        self,
        *,
        gpu_budget_bytes: int = 0,
        pinned_budget_bytes: int = 0,
        spill_budget_bytes: Optional[int] = None,
        policy: str = "lru",
    ) -> None:
        if gpu_budget_bytes < 0 or pinned_budget_bytes < 0:
            raise ValueError("tier budgets must be >= 0")
        if spill_budget_bytes is not None and spill_budget_bytes < 0:
            raise ValueError("tier budgets must be >= 0")
        self.policy_name = policy
        self.tiers: Dict[str, CacheTier] = {
            TIER_GPU: CacheTier(TIER_GPU, int(gpu_budget_bytes), build_policy(policy)),
            TIER_PINNED: CacheTier(TIER_PINNED, int(pinned_budget_bytes), build_policy(policy)),
            TIER_SPILL: CacheTier(
                TIER_SPILL,
                None if spill_budget_bytes is None else int(spill_budget_bytes),
                build_policy(policy),
            ),
        }
        self._dirty: Dict[Hashable, float] = {}
        #: high-water mark of pinned residency + in-flight staging, the
        #: quantity the memory-watermark checker verifies against the budget
        self.peak_pinned_bytes = 0.0
        self.counters: Dict[str, float] = {
            "gpu_hits": 0,
            "pinned_hits": 0,
            "spill_hits": 0,
            "misses": 0,
            "hit_bytes": 0.0,
            "miss_bytes": 0.0,
            "evictions": 0,
            "demotions": 0,
            "writebacks": 0,
            "writeback_bytes": 0.0,
            "invalidations": 0,
        }

    # -- residency ---------------------------------------------------------

    def tier_of(self, key: Hashable) -> Optional[str]:
        for name in TIER_ORDER:
            if key in self.tiers[name]:
                return name
        return None

    def __contains__(self, key: Hashable) -> bool:
        return self.tier_of(key) is not None

    def is_dirty(self, key: Hashable) -> bool:
        return key in self._dirty

    # -- core access -------------------------------------------------------

    def access(self, requests: Iterable[Tuple[Hashable, float]]) -> AccessPlan:
        """Look up (and admit on miss) a batch of ``(key, nbytes)`` blocks.

        Returns an :class:`AccessPlan` whose per-tier byte totals the
        caller subtracts from the datapipe item's stage bytes.
        """
        plan = AccessPlan()
        keys: List[Hashable] = []
        for key, nbytes in requests:
            keys.append(key)
            nbytes = float(nbytes)
            plan.total_bytes += nbytes
            tier = self.tier_of(key)
            if tier is not None:
                self.tiers[tier].policy.on_access(key)
                self.counters["hit_bytes"] += nbytes
                if tier == TIER_GPU:
                    plan.gpu_hits += 1
                    plan.gpu_bytes += nbytes
                    self.counters["gpu_hits"] += 1
                elif tier == TIER_PINNED:
                    plan.pinned_hits += 1
                    plan.pinned_bytes += nbytes
                    self.counters["pinned_hits"] += 1
                else:
                    plan.spill_hits += 1
                    plan.spill_bytes += nbytes
                    self.counters["spill_hits"] += 1
                continue
            plan.misses += 1
            plan.miss_bytes += nbytes
            self.counters["misses"] += 1
            self.counters["miss_bytes"] += nbytes
            self._admit(key, nbytes)
        plan.block_keys = tuple(keys)
        return plan

    def _admit(self, key: Hashable, nbytes: float) -> None:
        for name in TIER_ORDER:
            tier = self.tiers[name]
            if not tier.fits(nbytes):
                continue
            self._make_room(name, nbytes)
            if not tier.has_room(nbytes):
                # Staging reservations squeeze the usable capacity below what
                # eviction can free; fall through to the next tier.
                continue
            tier.admit(key, nbytes)
            if name == TIER_PINNED:
                self._note_pinned_peak()
            return
        # Block larger than every bounded tier: stays uncached.

    def _make_room(self, name: str, nbytes: float) -> None:
        tier = self.tiers[name]
        while not tier.has_room(nbytes):
            victim = tier.victim()
            if victim is None:
                return
            victim_bytes = tier.remove(victim)
            self.counters["evictions"] += 1
            self._demote(name, victim, victim_bytes)

    def _demote(self, from_tier: str, key: Hashable, nbytes: float) -> None:
        start = TIER_ORDER.index(from_tier) + 1
        for name in TIER_ORDER[start:]:
            tier = self.tiers[name]
            if not tier.fits(nbytes):
                continue
            self._make_room(name, nbytes)
            if not tier.has_room(nbytes):
                continue
            tier.admit(key, nbytes)
            if name == TIER_PINNED:
                self._note_pinned_peak()
            self.counters["demotions"] += 1
            return
        # Evicted out of the bottom tier: dirty blocks are written back,
        # never dropped on the floor.
        if key in self._dirty:
            self.counters["writebacks"] += 1
            self.counters["writeback_bytes"] += self._dirty.pop(key)

    # -- staging reservations ---------------------------------------------

    def _note_pinned_peak(self) -> None:
        tier = self.tiers[TIER_PINNED]
        self.peak_pinned_bytes = max(
            self.peak_pinned_bytes, tier.used_bytes + tier.reserved_bytes
        )

    def reserve_staging(self, nbytes: float) -> float:
        """Charge an in-flight pin-stage staging buffer against the pinned tier.

        The pinned tier *is* the datapipe's staging memory, so a buffer being
        pinned for an h2d copy must count against ``pinned_budget_mb`` even
        though it has no cache key yet.  Resident pinned blocks are demoted
        to make room; the reservation is dropped via :meth:`release_staging`
        once the transfer completes.

        The pool is bounded: a buffer larger than what eviction can free is
        streamed through recycled bounce buffers instead of growing the pool,
        so residency + reservations never exceed the tier capacity.  Returns
        the bytes actually charged — pass the same value to
        :meth:`release_staging`.
        """
        if nbytes <= 0:
            return 0.0
        tier = self.tiers[TIER_PINNED]
        if tier.capacity_bytes is not None:
            nbytes = min(nbytes, float(tier.capacity_bytes))
        self._make_room(TIER_PINNED, nbytes)
        if tier.capacity_bytes is not None:
            nbytes = min(
                nbytes,
                max(0.0, tier.capacity_bytes - tier.used_bytes - tier.reserved_bytes),
            )
        tier.reserved_bytes += nbytes
        self._note_pinned_peak()
        return nbytes

    def release_staging(self, nbytes: float) -> None:
        """Return staging bytes reserved with :meth:`reserve_staging`."""
        tier = self.tiers[TIER_PINNED]
        tier.reserved_bytes = max(0.0, tier.reserved_bytes - nbytes)

    # -- mutation ----------------------------------------------------------

    def mark_dirty(self, keys: Iterable[Hashable]) -> None:
        """Flag resident blocks as dirty (e.g. patched by a delta)."""
        for key in keys:
            tier = self.tier_of(key)
            if tier is not None:
                self._dirty[key] = self.tiers[tier].entries[key]

    def invalidate(self, keys: Iterable[Hashable]) -> int:
        """Drop blocks whose backing rows changed.  Returns count dropped."""
        dropped = 0
        for key in keys:
            tier = self.tier_of(key)
            if tier is None:
                continue
            self.tiers[tier].remove(key)
            self._dirty.pop(key, None)
            dropped += 1
        self.counters["invalidations"] += dropped
        return dropped

    def clear(self) -> None:
        for tier in self.tiers.values():
            tier.clear()
        self._dirty.clear()

    # -- introspection -----------------------------------------------------

    def dirty_keys(self) -> Tuple[Hashable, ...]:
        return tuple(self._dirty)

    def stats(self) -> Dict[str, float]:
        c = self.counters
        hits = c["gpu_hits"] + c["pinned_hits"] + c["spill_hits"]
        accesses = hits + c["misses"]
        out = {
            "feature_cache_gpu_hits": c["gpu_hits"],
            "feature_cache_pinned_hits": c["pinned_hits"],
            "feature_cache_spill_hits": c["spill_hits"],
            "feature_cache_misses": c["misses"],
            "feature_cache_hit_rate": (hits / accesses) if accesses else 0.0,
            "feature_cache_hit_bytes": c["hit_bytes"],
            "feature_cache_miss_bytes": c["miss_bytes"],
            "feature_cache_evictions": c["evictions"],
            "feature_cache_demotions": c["demotions"],
            "feature_cache_writebacks": c["writebacks"],
            "feature_cache_writeback_bytes": c["writeback_bytes"],
            "feature_cache_invalidations": c["invalidations"],
        }
        for name in TIER_ORDER:
            tier = self.tiers[name]
            out[f"feature_cache_{name}_used_bytes"] = tier.used_bytes
            if tier.capacity_bytes is not None:
                out[f"feature_cache_{name}_capacity_bytes"] = float(tier.capacity_bytes)
        out["feature_cache_staging_reserved_bytes"] = self.tiers[
            TIER_PINNED
        ].reserved_bytes
        out["feature_cache_peak_pinned_bytes"] = self.peak_pinned_bytes
        return out


# -- block helpers ---------------------------------------------------------


def blocks_covering(lo: int, hi: int, block_rows: int) -> List[Tuple[int, int, int]]:
    """Blocks overlapping the row range ``[lo, hi)`` as (block_id, lo, hi)."""
    if hi <= lo:
        return []
    first = lo // block_rows
    last = (hi - 1) // block_rows
    out = []
    for block in range(first, last + 1):
        b_lo = max(lo, block * block_rows)
        b_hi = min(hi, (block + 1) * block_rows)
        out.append((block, b_lo, b_hi))
    return out


def blocks_of_rows(rows: Iterable[int], block_rows: int) -> List[int]:
    """Sorted, de-duplicated block ids touched by the given row indices."""
    return sorted({int(r) // block_rows for r in rows})


def aggregate_cache_stats(stats_maps: Sequence[Mapping[str, float]]) -> Dict[str, float]:
    """Sum per-cache stats maps, recomputing the overall hit rate."""
    out: Dict[str, float] = {}
    for stats in stats_maps:
        for key, value in stats.items():
            if key == "feature_cache_hit_rate":
                continue
            out[key] = out.get(key, 0.0) + value
    hits = (
        out.get("feature_cache_gpu_hits", 0.0)
        + out.get("feature_cache_pinned_hits", 0.0)
        + out.get("feature_cache_spill_hits", 0.0)
    )
    accesses = hits + out.get("feature_cache_misses", 0.0)
    out["feature_cache_hit_rate"] = (hits / accesses) if accesses else 0.0
    return out
