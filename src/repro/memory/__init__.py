"""repro.memory — multi-tier feature cache (HBM → pinned-host → spill).

See :mod:`repro.memory.cache` for the tier semantics and
:mod:`repro.memory.policy` for the eviction policies.
"""

from .cache import (
    TIER_GPU,
    TIER_ORDER,
    TIER_PINNED,
    TIER_SPILL,
    AccessPlan,
    CacheTier,
    FeatureCache,
    MemoryConfig,
    aggregate_cache_stats,
    blocks_covering,
    blocks_of_rows,
)
from .policy import CACHE_POLICY_REGISTRY, CachePolicy, ClockPolicy, LRUPolicy, build_policy

__all__ = [
    "AccessPlan",
    "CACHE_POLICY_REGISTRY",
    "CachePolicy",
    "CacheTier",
    "ClockPolicy",
    "FeatureCache",
    "LRUPolicy",
    "MemoryConfig",
    "TIER_GPU",
    "TIER_ORDER",
    "TIER_PINNED",
    "TIER_SPILL",
    "aggregate_cache_stats",
    "blocks_covering",
    "blocks_of_rows",
    "build_policy",
]
