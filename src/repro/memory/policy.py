"""Pluggable admission/eviction policies for the multi-tier feature cache.

A policy tracks the *order* in which cached keys should be evicted; the
tier itself owns capacity accounting.  Policies are deliberately tiny —
they see keys, not bytes — so the same policy class serves every tier.

Registered policies:

- ``lru``   — least-recently-used (ordered-dict recency list).
- ``clock`` — frequency-flavoured second-chance CLOCK: each access sets a
  reference bit; the hand sweeps past referenced entries (clearing the
  bit) and evicts the first unreferenced one.  Hot rows survive sweeps
  that would evict them under pure LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional


class CachePolicy:
    """Interface for eviction-order bookkeeping inside one cache tier."""

    name = "base"

    def on_admit(self, key: Hashable) -> None:
        raise NotImplementedError

    def on_access(self, key: Hashable) -> None:
        raise NotImplementedError

    def on_evict(self, key: Hashable) -> None:
        raise NotImplementedError

    def victim(self) -> Optional[Hashable]:
        """Return the key the policy would evict next (``None`` if empty)."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LRUPolicy(CachePolicy):
    """Least-recently-used ordering over an ``OrderedDict`` recency list."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_admit(self, key: Hashable) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_access(self, key: Hashable) -> None:
        if key in self._order:
            self._order.move_to_end(key)

    def on_evict(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Optional[Hashable]:
        if not self._order:
            return None
        return next(iter(self._order))

    def clear(self) -> None:
        self._order.clear()

    def __len__(self) -> int:
        return len(self._order)


class ClockPolicy(CachePolicy):
    """Second-chance CLOCK: accesses set a reference bit the hand clears.

    Approximates frequency-aware eviction without per-key counters: a key
    accessed since the hand last passed it is spared one sweep.
    """

    name = "clock"

    def __init__(self) -> None:
        self._ref: Dict[Hashable, bool] = {}

    def on_admit(self, key: Hashable) -> None:
        self._ref[key] = False

    def on_access(self, key: Hashable) -> None:
        if key in self._ref:
            self._ref[key] = True

    def on_evict(self, key: Hashable) -> None:
        self._ref.pop(key, None)

    def victim(self) -> Optional[Hashable]:
        if not self._ref:
            return None
        # Sweep in insertion order; give referenced entries a second
        # chance by clearing their bit and moving on.  Bounded by two
        # passes: after one full sweep every bit is clear.
        for _ in range(2):
            for key, referenced in list(self._ref.items()):
                if referenced:
                    self._ref[key] = False
                else:
                    return key
        return next(iter(self._ref))

    def clear(self) -> None:
        self._ref.clear()

    def __len__(self) -> int:
        return len(self._ref)


CACHE_POLICY_REGISTRY = {
    "lru": (LRUPolicy, "least-recently-used eviction"),
    "clock": (ClockPolicy, "frequency-flavoured second-chance CLOCK eviction"),
}


def build_policy(name: str) -> CachePolicy:
    try:
        factory, _ = CACHE_POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(CACHE_POLICY_REGISTRY))
        raise ValueError(f"unknown cache policy {name!r} (known: {known})") from None
    return factory()
