"""Common interface of the three DGNN models.

All models process a frame of snapshots one *partition* (contiguous group of
snapshots) at a time: the GNN part of a partition is handed to an
:class:`~repro.nn.aggregation.AggregationProvider` (which may execute it
snapshot-by-snapshot or in parallel over the group), while the RNN part
carries hidden state sequentially across snapshots and partitions.  The class
attributes describe the structural properties PiPAD's runtime keys on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.nn.aggregation import AggregationProvider
from repro.nn.context import ExecutionContext
from repro.tensor import no_grad
from repro.tensor.nn.module import Module
from repro.tensor.tensor import Tensor

#: type of the recurrent state threaded across partitions of one frame
ModelState = Dict[str, Any]


class DGNNModel(Module):
    """Base class for DTDG models trained one frame at a time."""

    #: registry name
    name: str = "dgnn"
    #: number of distinct aggregation passes per snapshot (GCN layers)
    num_gcn_layers: int = 1
    #: True when GCN weights evolve along the timeline (EvolveGCN), which
    #: rules out the locality-optimized weight reuse (§4.2)
    evolves_weights: bool = False
    #: GCN layer indices whose aggregation depends only on the raw input
    #: features (and is therefore reusable across frames/epochs, §4.4)
    reusable_aggregation_layers: Tuple[int, ...] = (0,)
    #: whether the adjacency must still be resident on the device when all
    #: reusable aggregations are served from the cache (True for models with
    #: deeper GCN stacks whose later layers re-aggregate hidden features)
    needs_topology_with_reuse: bool = True

    def __init__(self, in_features: int, hidden_features: int, out_features: int = 1) -> None:
        super().__init__()
        if in_features <= 0 or hidden_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        self.in_features = in_features
        self.hidden_features = hidden_features
        self.out_features = out_features

    # -- interface ------------------------------------------------------------
    def init_state(self, num_nodes: int) -> ModelState:
        """Fresh recurrent state for the start of a frame."""
        raise NotImplementedError

    def forward_partition(
        self,
        provider: AggregationProvider,
        features: Sequence[Tensor],
        state: ModelState,
        ctx: ExecutionContext,
    ) -> Tuple[List[Tensor], ModelState]:
        """Process one partition; returns per-snapshot predictions and new state."""
        raise NotImplementedError

    # -- convenience -------------------------------------------------------------
    def forward_frame(
        self,
        providers: Sequence[AggregationProvider],
        feature_groups: Sequence[Sequence[Tensor]],
        num_nodes: int,
        ctx: ExecutionContext,
    ) -> List[Tensor]:
        """Run a whole frame given its partitions' providers and features."""
        if len(providers) != len(feature_groups):
            raise ValueError("providers and feature groups must align")
        state = self.init_state(num_nodes)
        predictions: List[Tensor] = []
        for provider, features in zip(providers, feature_groups):
            outs, state = self.forward_partition(provider, list(features), state, ctx)
            predictions.extend(outs)
        return predictions

    def predict_frame(
        self,
        providers: Sequence[AggregationProvider],
        feature_groups: Sequence[Sequence[Tensor]],
        num_nodes: int,
        ctx: ExecutionContext,
    ) -> List[Tensor]:
        """Forward-only :meth:`forward_frame` (no autograd tape) for serving."""
        with no_grad():
            return self.forward_frame(providers, feature_groups, num_nodes, ctx)
