"""DGNN models (MPNN-LSTM, EvolveGCN, T-GCN) and aggregation providers."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.nn.aggregation import (
    AggregationCache,
    AggregationProvider,
    DictAggregationCache,
    SequentialAggregationProvider,
    mean_inverse_degree,
)
from repro.nn.base_model import DGNNModel, ModelState
from repro.nn.context import ExecutionContext
from repro.nn.gcn import GCNUpdate
from repro.nn.mpnn_lstm import MPNNLSTM
from repro.nn.evolvegcn import EvolveGCN
from repro.nn.tgcn import TGCN
from repro.utils.rng import SeedLike

#: registry of model classes by canonical name
MODEL_REGISTRY: Dict[str, Type[DGNNModel]] = {
    MPNNLSTM.name: MPNNLSTM,
    EvolveGCN.name: EvolveGCN,
    TGCN.name: TGCN,
}

#: figure order used throughout the paper's evaluation
MODEL_ORDER: List[str] = ["evolvegcn", "mpnn_lstm", "tgcn"]


def list_models() -> List[str]:
    """Canonical names of the available DGNN models."""
    return list(MODEL_ORDER)


def build_model(
    name: str,
    in_features: int,
    hidden_features: int,
    out_features: int = 1,
    seed: SeedLike = 0,
) -> DGNNModel:
    """Instantiate a DGNN model by name."""
    key = name.lower().replace("-", "_")
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key](in_features, hidden_features, out_features, seed=seed)


__all__ = [
    "AggregationCache",
    "AggregationProvider",
    "DictAggregationCache",
    "SequentialAggregationProvider",
    "mean_inverse_degree",
    "DGNNModel",
    "ModelState",
    "ExecutionContext",
    "GCNUpdate",
    "MPNNLSTM",
    "EvolveGCN",
    "TGCN",
    "MODEL_REGISTRY",
    "MODEL_ORDER",
    "list_models",
    "build_model",
]
