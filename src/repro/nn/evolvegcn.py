"""EvolveGCN (Pareja et al., AAAI'20) — Fig. 2(b) of the paper.

An *integrated* DGNN: each of its two layers pairs a 1-layer GCN with a GRU
that evolves the GCN weight matrix along the timeline (the EvolveGCN-O
variant: the weights are both the GRU input and its hidden state).  The
weight evolution creates a cross-snapshot dependence on the *update* weights,
which is why PiPAD's locality-optimized weight reuse does not apply here
(§4.2), while the aggregation remains time-independent and parallelizable.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.kernels.gemm import update_gemm
from repro.nn.aggregation import AggregationProvider
from repro.nn.base_model import DGNNModel, ModelState
from repro.nn.context import ExecutionContext
from repro.tensor import ops
from repro.tensor.function import op_scope
from repro.tensor.nn import init
from repro.tensor.nn.linear import Linear
from repro.tensor.nn.module import Parameter
from repro.tensor.nn.rnn_cells import GRUCell
from repro.tensor.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng


class EvolveGCN(DGNNModel):
    """Two weight-evolving GCN layers with a linear readout."""

    name = "evolvegcn"
    num_gcn_layers = 2
    evolves_weights = True
    reusable_aggregation_layers = (0,)
    needs_topology_with_reuse = True

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int = 1,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__(in_features, hidden_features, out_features)
        rng = as_rng(seed)
        # Initial GCN weights; they evolve per snapshot through the GRUs below.
        self.weight1 = Parameter(
            init.xavier_uniform((in_features, hidden_features), seed=rng), name="weight1"
        )
        self.weight2 = Parameter(
            init.xavier_uniform((hidden_features, hidden_features), seed=rng), name="weight2"
        )
        # The GRUs treat each weight-matrix row as one batch element.
        self.weight_gru1 = GRUCell(hidden_features, hidden_features, seed=rng)
        self.weight_gru2 = GRUCell(hidden_features, hidden_features, seed=rng)
        self.readout = Linear(hidden_features, out_features, seed=rng)

    def init_state(self, num_nodes: int) -> ModelState:
        return {"weight1": self.weight1, "weight2": self.weight2}

    def forward_partition(
        self,
        provider: AggregationProvider,
        features: Sequence[Tensor],
        state: ModelState,
        ctx: ExecutionContext,
    ) -> Tuple[List[Tensor], ModelState]:
        weight1: Tensor = state["weight1"]
        weight2: Tensor = state["weight2"]

        # Layer 1: aggregation over the group, then per-snapshot evolved update.
        agg1 = provider.aggregate_many(0, list(features))
        hidden1: List[Tensor] = []
        weights1: List[Tensor] = []
        for aggregated in agg1:
            weight1 = self.weight_gru1(weight1, weight1)
            weights1.append(weight1)
            with op_scope("update"):
                hidden1.append(
                    ops.relu(
                        update_gemm(
                            aggregated, weight1, None, reuse_group=1, spec=ctx.spec, scale=ctx.scale
                        )
                    )
                )

        # Layer 2: aggregate the evolved hidden features, evolve the second
        # weight matrix and produce per-snapshot outputs.
        agg2 = provider.aggregate_many(1, hidden1)
        predictions: List[Tensor] = []
        for aggregated in agg2:
            weight2 = self.weight_gru2(weight2, weight2)
            with op_scope("update"):
                hidden2 = ops.relu(
                    update_gemm(
                        aggregated, weight2, None, reuse_group=1, spec=ctx.spec, scale=ctx.scale
                    )
                )
            with op_scope("other"):
                predictions.append(self.readout(hidden2))
        return predictions, {"weight1": weight1, "weight2": weight2}
