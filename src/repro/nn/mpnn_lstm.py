"""MPNN-LSTM (Panagopoulos et al., AAAI'21) — Fig. 2(a) of the paper.

A *stacked* DGNN: a 2-layer GCN learns spatial structure per snapshot, two
LSTMs stacked on top capture temporal dynamics, and a linear readout produces
the per-node forecast.  The only cross-snapshot dependence is the LSTM hidden
state, so the whole GCN part of a snapshot group can execute in parallel.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.nn.aggregation import AggregationProvider
from repro.nn.base_model import DGNNModel, ModelState
from repro.nn.context import ExecutionContext
from repro.nn.gcn import GCNUpdate
from repro.tensor import ops
from repro.tensor.function import op_scope
from repro.tensor.nn.linear import Linear
from repro.tensor.nn.rnn_cells import LSTMCell
from repro.tensor.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng


class MPNNLSTM(DGNNModel):
    """Two GCN layers followed by two stacked LSTMs and a linear readout."""

    name = "mpnn_lstm"
    num_gcn_layers = 2
    evolves_weights = False
    reusable_aggregation_layers = (0,)
    needs_topology_with_reuse = True

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int = 1,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__(in_features, hidden_features, out_features)
        rng = as_rng(seed)
        self.gcn1 = GCNUpdate(in_features, hidden_features, seed=rng)
        self.gcn2 = GCNUpdate(hidden_features, hidden_features, seed=rng)
        self.lstm1 = LSTMCell(hidden_features, hidden_features, seed=rng)
        self.lstm2 = LSTMCell(hidden_features, hidden_features, seed=rng)
        self.readout = Linear(hidden_features, out_features, seed=rng)

    def init_state(self, num_nodes: int) -> ModelState:
        return {"lstm1": None, "lstm2": None}

    def forward_partition(
        self,
        provider: AggregationProvider,
        features: Sequence[Tensor],
        state: ModelState,
        ctx: ExecutionContext,
    ) -> Tuple[List[Tensor], ModelState]:
        # Time-independent GNN part: both layers over the whole group.
        agg1 = provider.aggregate_many(0, list(features))
        hidden1 = [ops.relu(self.gcn1(a, ctx)) for a in agg1]
        agg2 = provider.aggregate_many(1, hidden1)
        hidden2 = [ops.relu(self.gcn2(a, ctx)) for a in agg2]

        # Time-dependent part: LSTM stack walks the snapshots in order.
        predictions: List[Tensor] = []
        state1, state2 = state.get("lstm1"), state.get("lstm2")
        for hidden in hidden2:
            state1 = self.lstm1(hidden, state1)
            state2 = self.lstm2(state1[0], state2)
            with op_scope("other"):
                predictions.append(self.readout(state2[0]))
        return predictions, {"lstm1": state1, "lstm2": state2}
