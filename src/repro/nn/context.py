"""Execution context threaded through the DGNN models.

The context tells model code which simulated-GPU spec to cost against, how
strongly to extrapolate the workload (``scale``) and how many snapshots share
a weight tile in the update GEMM (``weight_reuse_group`` — 1 for the
canonical one-snapshot execution, ``S_per`` under PiPAD's locality-optimized
weight reuse).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.gpu.spec import GPUSpec


@dataclass(frozen=True)
class ExecutionContext:
    """Per-run execution parameters shared by all layers of a model."""

    spec: GPUSpec = field(default_factory=GPUSpec)
    scale: float = 1.0
    weight_reuse_group: int = 1

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be > 0")
        if self.weight_reuse_group < 1:
            raise ValueError("weight_reuse_group must be >= 1")

    def with_reuse_group(self, group: int) -> "ExecutionContext":
        return replace(self, weight_reuse_group=group)
