"""T-GCN (Zhao et al., T-ITS'19) — Fig. 2(c) of the paper.

An *integrated* DGNN: the GEMMs inside a GRU cell are replaced by graph
convolutions of the input features, and the hidden state propagates along the
timeline.  All graph aggregations operate on the raw input features, so with
inter-frame reuse every aggregation disappears (§5.2's observation that
PyGT-R catches up with PyGT-G on T-GCN); the three gate updates share one
aggregation result per snapshot.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.nn.aggregation import AggregationProvider
from repro.nn.base_model import DGNNModel, ModelState
from repro.nn.context import ExecutionContext
from repro.nn.gcn import GCNUpdate
from repro.tensor import ops
from repro.tensor.function import op_scope
from repro.tensor.nn.linear import Linear
from repro.tensor.nn.rnn_cells import GRUCell  # noqa: F401  (kept for API parity)
from repro.tensor.nn.module import Parameter
from repro.tensor.nn import init
from repro.tensor.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng


class TGCN(DGNNModel):
    """Graph-convolutional GRU with a linear readout."""

    name = "tgcn"
    num_gcn_layers = 1
    evolves_weights = False
    reusable_aggregation_layers = (0,)
    # With every aggregation served from the reuse cache, no topology needs to
    # stay resident: the remaining computation is dense.
    needs_topology_with_reuse = False

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int = 1,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__(in_features, hidden_features, out_features)
        rng = as_rng(seed)
        # Three graph-convolution updates (update gate, reset gate, candidate)
        # share one aggregation of the input features per snapshot.
        self.gc_update = GCNUpdate(in_features, hidden_features, seed=rng)
        self.gc_reset = GCNUpdate(in_features, hidden_features, seed=rng)
        self.gc_candidate = GCNUpdate(in_features, hidden_features, seed=rng)
        # Recurrent (hidden-state) weights of the three gates.
        self.hidden_update = Parameter(
            init.xavier_uniform((hidden_features, hidden_features), seed=rng), name="hidden_update"
        )
        self.hidden_reset = Parameter(
            init.xavier_uniform((hidden_features, hidden_features), seed=rng), name="hidden_reset"
        )
        self.hidden_candidate = Parameter(
            init.xavier_uniform((hidden_features, hidden_features), seed=rng),
            name="hidden_candidate",
        )
        self.readout = Linear(hidden_features, out_features, seed=rng)

    def init_state(self, num_nodes: int) -> ModelState:
        return {"hidden": None}

    def _initial_hidden(self, num_nodes: int) -> Tensor:
        return Tensor(init.zeros(num_nodes, self.hidden_features))

    def forward_partition(
        self,
        provider: AggregationProvider,
        features: Sequence[Tensor],
        state: ModelState,
        ctx: ExecutionContext,
    ) -> Tuple[List[Tensor], ModelState]:
        aggregated = provider.aggregate_many(0, list(features))
        hidden: Optional[Tensor] = state.get("hidden")
        if hidden is None:
            hidden = self._initial_hidden(features[0].shape[0])

        predictions: List[Tensor] = []
        for agg in aggregated:
            # Graph-convolutional gate inputs (time-independent part).
            gate_u_in = self.gc_update(agg, ctx)
            gate_r_in = self.gc_reset(agg, ctx)
            gate_c_in = self.gc_candidate(agg, ctx)
            # Recurrent part of the gates (time-dependent).
            with op_scope("rnn"):
                update_gate = ops.sigmoid(gate_u_in + hidden @ self.hidden_update)
                reset_gate = ops.sigmoid(gate_r_in + hidden @ self.hidden_reset)
                candidate = ops.tanh(gate_c_in + (reset_gate * hidden) @ self.hidden_candidate)
                hidden = update_gate * hidden + (Tensor(1.0) - update_gate) * candidate
            with op_scope("other"):
                predictions.append(self.readout(hidden))
        return predictions, {"hidden": hidden}
