"""Aggregation providers: how a model obtains ``mean(A+I)``-aggregated features.

A *provider* abstracts the execution strategy of the GNN aggregation so the
model code stays identical between the canonical one-snapshot baselines and
PiPAD's multi-snapshot parallel GNN:

- :class:`SequentialAggregationProvider` (this module) aggregates each
  snapshot independently with a chosen kernel flavour (PyG COO or GE-SpMM),
  which is what all PyGT variants do;
- :class:`repro.core.parallel_gnn.ParallelAggregationProvider` aggregates the
  overlap topology of a whole partition at once against the coalescent
  feature matrix.

Both consult an optional :class:`AggregationCache` for the inter-frame reuse
of first-layer aggregation results (§4.4): the first GCN layer operates on
the raw input features and the topology only, so its result is identical
across frames and epochs and can be cached per snapshot timestep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.graph.snapshot import GraphSnapshot
from repro.gpu.spec import GPUSpec
from repro.kernels.registry import get_aggregation_kernel
from repro.tensor.function import op_scope
from repro.tensor.sparse import spmm
from repro.tensor.tensor import Tensor


class AggregationCache(Protocol):
    """Minimal cache interface for first-layer aggregation reuse."""

    def lookup(self, timestep: int) -> Optional[np.ndarray]:
        """Return the cached aggregation for a snapshot, or ``None``."""

    def store(self, timestep: int, value: np.ndarray) -> None:
        """Cache the aggregation result of a snapshot."""


class AggregationProvider(Protocol):
    """Strategy object the models call to aggregate a group of snapshots."""

    @property
    def num_snapshots(self) -> int:
        ...

    def aggregate_many(self, layer: int, xs: Sequence[Tensor]) -> List[Tensor]:
        """Aggregate one tensor per snapshot of the current group for ``layer``."""


def mean_inverse_degree(snapshot: GraphSnapshot) -> np.ndarray:
    """``1 / (out_degree + 1)`` column vector used by the mean aggregator."""
    degree = snapshot.adjacency.row_nnz().astype(np.float32)
    return (1.0 / (degree + 1.0)).reshape(-1, 1)


class SequentialAggregationProvider:
    """One-snapshot-at-a-time aggregation (all PyGT baseline variants).

    Parameters
    ----------
    snapshots:
        The snapshots of the group being processed (a partition of size 1 for
        the canonical baselines).
    kernel_name:
        Aggregation-kernel family (``"coo"`` for PyGT/PyGT-A/PyGT-R,
        ``"gespmm"`` for PyGT-G).
    spec, scale:
        Simulated-GPU spec and workload-extrapolation factor for kernel costs.
    cache:
        Optional first-layer aggregation cache (PyGT-R / PyGT-G reuse).
    reusable_layers:
        Which GCN layer indices may consult the cache (layer 0 by default).
    """

    def __init__(
        self,
        snapshots: Sequence[GraphSnapshot],
        kernel_name: str = "coo",
        spec: Optional[GPUSpec] = None,
        scale: float = 1.0,
        cache: Optional[AggregationCache] = None,
        reusable_layers: Sequence[int] = (0,),
    ) -> None:
        if not snapshots:
            raise ValueError("provider needs at least one snapshot")
        self.snapshots = list(snapshots)
        self.spec = spec or GPUSpec()
        self.scale = scale
        self.cache = cache
        self.reusable_layers = tuple(reusable_layers)
        kernel_cls = get_aggregation_kernel(kernel_name)
        self._kernels = [
            kernel_cls(snap.adjacency, self.spec, scale) if snap.adjacency.nnz else None
            for snap in self.snapshots
        ]
        self._inv_degree = [Tensor(mean_inverse_degree(snap)) for snap in self.snapshots]
        #: number of aggregations served from the cache (reporting/telemetry)
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def num_snapshots(self) -> int:
        return len(self.snapshots)

    def aggregate_many(self, layer: int, xs: Sequence[Tensor]) -> List[Tensor]:
        if len(xs) != self.num_snapshots:
            raise ValueError(
                f"expected {self.num_snapshots} feature tensors, got {len(xs)}"
            )
        results: List[Tensor] = []
        for index, (snapshot, x) in enumerate(zip(self.snapshots, xs)):
            cached = None
            if self.cache is not None and layer in self.reusable_layers:
                cached = self.cache.lookup(snapshot.timestep)
            if cached is not None:
                self.cache_hits += 1
                results.append(Tensor(cached))
                continue
            self.cache_misses += 1
            with op_scope("aggregation"):
                kernel = self._kernels[index]
                aggregated = spmm(kernel, x) + x if kernel is not None else x
                result = aggregated * self._inv_degree[index]
            if self.cache is not None and layer in self.reusable_layers:
                self.cache.store(snapshot.timestep, result.data)
            results.append(result)
        return results


class DictAggregationCache:
    """Simple in-memory cache keyed by snapshot timestep (CPU-side buffer)."""

    def __init__(self) -> None:
        self._store: Dict[int, np.ndarray] = {}

    def lookup(self, timestep: int) -> Optional[np.ndarray]:
        return self._store.get(timestep)

    def store(self, timestep: int, value: np.ndarray) -> None:
        self._store[timestep] = value

    def __len__(self) -> int:
        return len(self._store)

    def nbytes(self) -> int:
        return sum(v.nbytes for v in self._store.values())

    def clear(self) -> None:
        self._store.clear()
