"""GCN update module (the dense half of a GCN layer).

The aggregation half is performed by an
:class:`~repro.nn.aggregation.AggregationProvider`; :class:`GCNUpdate`
applies the fully connected transformation to aggregated features via the
weight-reuse-aware :func:`repro.kernels.gemm.update_gemm` kernel so the cost
model can distinguish one-snapshot updates from PiPAD's grouped updates.
"""

from __future__ import annotations

from typing import Optional

from repro.kernels.gemm import update_gemm
from repro.nn.context import ExecutionContext
from repro.tensor.nn import init
from repro.tensor.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor
from repro.utils.rng import SeedLike


class GCNUpdate(Module):
    """``h = agg @ W + b`` with weight-reuse-aware cost accounting."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), seed=seed), name="weight"
        )
        self.bias: Optional[Parameter] = (
            Parameter(init.zeros(out_features), name="bias") if bias else None
        )

    def forward(self, aggregated: Tensor, ctx: Optional[ExecutionContext] = None) -> Tensor:
        ctx = ctx or ExecutionContext()
        return update_gemm(
            aggregated,
            self.weight,
            self.bias,
            reuse_group=ctx.weight_reuse_group,
            spec=ctx.spec,
            scale=ctx.scale,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"GCNUpdate(in={self.in_features}, out={self.out_features})"
