"""Table 1: dataset statistics (paper originals vs generated analogues)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import ExperimentConfig, format_table
from repro.graph.datasets import DATASET_ORDER, get_dataset_spec, load_dataset
from repro.graph.stats import summarize


def run(config: Optional[ExperimentConfig] = None) -> Dict[str, Dict[str, object]]:
    """Compute Table 1 rows for every registered dataset analogue."""
    config = config or ExperimentConfig()
    rows: Dict[str, Dict[str, object]] = {}
    for name in DATASET_ORDER:
        spec = get_dataset_spec(name)
        graph = load_dataset(name, seed=config.seed)
        stats = summarize(graph)
        rows[name] = {
            "category": spec.category,
            "paper_nodes": spec.paper.num_nodes,
            "paper_edges": spec.paper.num_edges,
            "paper_snapshots": spec.paper.num_snapshots,
            "paper_smoothened_edges": spec.paper.smoothened_edges,
            "feature_dim": spec.config.feature_dim,
            "analogue_nodes": stats["num_nodes"],
            "analogue_snapshots": stats["num_snapshots"],
            "analogue_total_edges": stats["total_edges"],
            "analogue_avg_change_rate": stats["avg_change_rate"],
            "analogue_avg_degree": stats["avg_degree"],
        }
    return rows


def format_result(rows: Dict[str, Dict[str, object]]) -> str:
    headers = ["dataset", "category", "D", "#N (paper)", "#E-S (paper)", "#S (paper)",
               "#N (analogue)", "#E (analogue)", "#S (analogue)", "change rate"]
    table_rows = [
        [
            name,
            row["category"],
            row["feature_dim"],
            row["paper_nodes"],
            row["paper_smoothened_edges"],
            row["paper_snapshots"],
            row["analogue_nodes"],
            row["analogue_total_edges"],
            row["analogue_snapshots"],
            float(row["analogue_avg_change_rate"]),
        ]
        for name, row in rows.items()
    ]
    return format_table(headers, table_rows)
