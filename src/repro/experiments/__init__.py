"""Experiment harness: one module per table/figure of the paper's evaluation."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.experiments import (
    ablations,
    fig3_breakdown,
    fig4_compute_breakdown,
    fig5_memory_requests,
    fig9_offline_analysis,
    fig10_overall_speedup,
    fig11_parallel_gnn,
    fig12_sliced_csr,
    format_space,
    scaling_multi_gpu,
    scaling_pipeline,
    table1_datasets,
    table2_gpu_utilization,
)
from repro.experiments.common import ExperimentConfig, format_table

#: experiment registry keyed by the paper artifact each one regenerates
EXPERIMENTS: Dict[str, object] = {
    "table1": table1_datasets,
    "fig3": fig3_breakdown,
    "fig4": fig4_compute_breakdown,
    "fig5": fig5_memory_requests,
    "fig9": fig9_offline_analysis,
    "fig10": fig10_overall_speedup,
    "table2": table2_gpu_utilization,
    "fig11": fig11_parallel_gnn,
    "fig12": fig12_sliced_csr,
    "space_overhead": format_space,
    "ablations": ablations,
    "scaling": scaling_multi_gpu,
    "scaling_pipeline": scaling_pipeline,
}


def list_experiments() -> List[str]:
    """Names of the available experiments (paper artifacts)."""
    return list(EXPERIMENTS)


def run_experiment(name: str, config: Optional[ExperimentConfig] = None, **kwargs):
    """Run one experiment by name and return its rows."""
    key = name.lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key].run(config, **kwargs)


def format_experiment(name: str, rows) -> str:
    """Format an experiment's rows the way the paper presents them."""
    key = name.lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key].format_result(rows)


__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "format_experiment",
    "format_table",
    "list_experiments",
    "run_experiment",
]
