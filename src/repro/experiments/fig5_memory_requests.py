"""Fig. 5: global-memory requests and transactions vs feature dimension.

The paper runs a GCN with GNNAdvisor and shows that the number of
transactions begins to rise once the feature dimension exceeds 8 (32 bytes)
while the number of requests only rises past 32 (128 bytes).  Here the
per-aggregation counts come from the CSR aggregation cost model on one
representative snapshot.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import ExperimentConfig, format_table, load_experiment_graph
from repro.gpu.spec import GPUSpec
from repro.kernels.spmm_csr import GESpMMAggregation

DEFAULT_DIMENSIONS = (2, 4, 8, 16, 32, 64, 128)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: str = "hepth",
    dimensions: Sequence[int] = DEFAULT_DIMENSIONS,
) -> Dict[int, Dict[str, float]]:
    """Requests/transactions of one CSR aggregation per feature dimension."""
    config = config or ExperimentConfig()
    graph = load_experiment_graph(dataset, config)
    adjacency = graph.snapshots[0].adjacency
    spec = GPUSpec()
    kernel = GESpMMAggregation(adjacency, spec)
    rows: Dict[int, Dict[str, float]] = {}
    for dim in dimensions:
        cost = kernel.forward_cost((adjacency.num_rows, dim))
        rows[dim] = {
            "requests": cost.mem_requests,
            "transactions": cost.mem_transactions,
            "requests_per_nnz": cost.mem_requests / max(1, adjacency.nnz),
            "transactions_per_nnz": cost.mem_transactions / max(1, adjacency.nnz),
        }
    return rows


def format_result(rows: Dict[int, Dict[str, float]]) -> str:
    headers = ["feature dim", "#requests", "#transactions", "req/nnz", "txn/nnz"]
    table_rows = [
        [dim, row["requests"], row["transactions"], row["requests_per_nnz"], row["transactions_per_nnz"]]
        for dim, row in sorted(rows.items())
    ]
    return format_table(headers, table_rows, float_fmt="{:.2f}")
