"""Fig. 12: load-balance analysis and end-to-end effect of the sliced CSR."""

from __future__ import annotations

from typing import Dict, Optional

from repro.api.engine import Engine
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    load_experiment_graph,
    method_spec,
)
from repro.graph.datasets import get_dataset_spec
from repro.profiling.load_balance import sliced_vs_csr_balance


def run(config: Optional[ExperimentConfig] = None) -> Dict[str, Dict[str, float]]:
    """Per-dataset load-balance improvement and end-to-end sliced-CSR speedup.

    The load-balance half compares the Balanced/Actual gap of the CSR and
    sliced-CSR work mappings; the end-to-end half trains PiPAD twice (sliced
    CSR on/off) on the first configured model and reports the speedup.
    """
    config = config or ExperimentConfig()
    model = config.models[0]
    rows: Dict[str, Dict[str, float]] = {}
    for dataset in config.datasets:
        graph = load_experiment_graph(dataset, config)
        spec_ds = get_dataset_spec(dataset)
        scale = max(1.0, spec_ds.paper.num_nodes / spec_ds.config.num_nodes)
        balance = sliced_vs_csr_balance(graph, scale=scale)

        sliced_spec = method_spec("pipad", model, config, dataset=dataset)
        sliced_result = Engine.from_spec(sliced_spec, graph=graph).train()
        csr_spec = sliced_spec.replace(
            pipad={**sliced_spec.pipad, "use_sliced_csr": False}
        )
        csr_result = Engine.from_spec(csr_spec, graph=graph).train()
        rows[dataset] = {
            **balance,
            "end_to_end_speedup": csr_result.steady_epoch_seconds
            / max(sliced_result.steady_epoch_seconds, 1e-12),
        }
    return rows


def format_result(rows: Dict[str, Dict[str, float]]) -> str:
    headers = ["dataset", "CSR actual/balanced", "sliced actual/balanced",
               "balance improvement", "end-to-end speedup"]
    body = [
        [
            name,
            row["csr_imbalance"],
            row["sliced_imbalance"],
            row["improvement"],
            row["end_to_end_speedup"],
        ]
        for name, row in rows.items()
    ]
    return format_table(headers, body)
