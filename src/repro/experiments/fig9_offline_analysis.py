"""Fig. 9: offline analysis of the parallel GNN.

(a) speedup of different ``S_per`` settings over one-snapshot execution as
    the group overlap rate changes;
(b) normalized speedup as the feature dimension changes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.tuner import OfflineAnalysis
from repro.experiments.common import ExperimentConfig, format_table
from repro.gpu.spec import GPUSpec

DEFAULT_S_PER = (2, 4, 8)
DEFAULT_OVERLAP_RATES = (0.1, 0.3, 0.5, 0.7, 0.9)
DEFAULT_DIMENSIONS = (2, 8, 16, 32, 64)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    s_per_values: Sequence[int] = DEFAULT_S_PER,
    overlap_rates: Sequence[float] = DEFAULT_OVERLAP_RATES,
    dimensions: Sequence[int] = DEFAULT_DIMENSIONS,
    num_nodes: int = 1024,
    avg_degree: float = 4.0,
    feature_dim: int = 16,
) -> Dict[str, Dict[Tuple[int, object], float]]:
    """Compute both Fig. 9 panels from the offline cost-model analysis."""
    config = config or ExperimentConfig()
    analysis = OfflineAnalysis(
        spec=GPUSpec(), num_nodes=num_nodes, avg_degree=avg_degree, seed=config.seed
    )
    return {
        "speedup_vs_overlap": analysis.speedup_table(
            s_per_values, overlap_rates, feature_dim=feature_dim
        ),
        "speedup_vs_dimension": analysis.dimension_table(
            s_per_values, dimensions, overlap_rate=0.8
        ),
    }


def format_result(rows: Dict[str, Dict[Tuple[int, object], float]]) -> str:
    sections = []
    for title, key_name in (
        ("Fig. 9(a) — speedup vs overlap rate", "speedup_vs_overlap"),
        ("Fig. 9(b) — speedup vs feature dimension", "speedup_vs_dimension"),
    ):
        table = rows[key_name]
        s_values = sorted({k[0] for k in table})
        x_values = sorted({k[1] for k in table})
        headers = ["x"] + [f"S_per={s}" for s in s_values]
        body = [[x] + [table[(s, x)] for s in s_values] for x in x_values]
        sections.append(title + "\n" + format_table(headers, body, float_fmt="{:.2f}"))
    return "\n\n".join(sections)
