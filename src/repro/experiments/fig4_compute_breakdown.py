"""Fig. 4: breakdown of GPU computation time (GNN vs RNN vs other)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    load_experiment_graph,
    run_method,
)
from repro.profiling.breakdown import compute_time_breakdown


def run(config: Optional[ExperimentConfig] = None) -> Dict[str, Dict[str, float]]:
    """GNN/RNN/other computation-time fractions under the PyGT baseline."""
    config = config or ExperimentConfig()
    rows: Dict[str, Dict[str, float]] = {}
    for dataset in config.datasets:
        graph = load_experiment_graph(dataset, config)
        for model in config.models:
            result = run_method("pygt", graph, model, config)
            rows[f"{model}/{dataset}"] = compute_time_breakdown(result)
    return rows


def format_result(rows: Dict[str, Dict[str, float]]) -> str:
    headers = ["model/dataset", "GNN %", "RNN %", "other %"]
    table_rows = [
        [key, row["gnn_fraction"] * 100, row["rnn_fraction"] * 100, row["other_fraction"] * 100]
        for key, row in rows.items()
    ]
    return format_table(headers, table_rows, float_fmt="{:.1f}")
