"""Frame-pipeline scaling of PiPAD training across devices (repro extension).

The pipeline counterpart of :mod:`~repro.experiments.scaling_multi_gpu`: for
each device count the same workload trains through
:class:`~repro.core.pipeline_trainer.PipelineTrainer` (``device.kind =
"pipeline"``), which shards the *frame* — snapshot groups — across stages
instead of the node set.  The table reports the steady-state epoch time,
speedup and parallel efficiency over the one-device run, the **pipeline
bubble** (device-seconds each stage stalls on the cross-stage state chain
beyond its own local readiness) and the point-to-point state-handoff time —
itemized against the ``group`` topology's steady epoch and gradient
all-reduce time on the identical workload, so the two parallelism modes'
communication regimes are directly comparable.

Both topologies run with the same fixed partition size (``fixed_s_per``), so
every row trains bit-identically to the single-device run; only the schedule
differs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.engine import Engine
from repro.api.spec import DeviceSpec
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    load_experiment_graph,
    method_spec,
)

#: device counts swept by default (1 is the reference run)
DEFAULT_DEVICE_COUNTS = (1, 2, 4, 8)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    interconnect: str = "nvlink",
    schedule: str = "round_robin",
    cost_scale: float = 5000.0,
    fixed_s_per: int = 2,
    include_group: bool = True,
) -> List[Dict[str, float]]:
    """Train the sweep's first dataset/model at each pipeline depth."""
    if 1 not in device_counts:
        raise ValueError(
            "device_counts must include 1 — the single-device run is the "
            f"speedup/efficiency reference, got {tuple(device_counts)}"
        )
    config = config or ExperimentConfig.quick()
    dataset = config.datasets[0]
    model = config.models[0]
    graph = load_experiment_graph(dataset, config)
    base_spec = method_spec("pipad", model, config, dataset=dataset).replace(
        cost_scale=cost_scale
    )
    # A deep pipeline needs more snapshot groups per frame than the tuner's
    # preferred s_per would produce; fixing the partition size keeps the
    # schedule (and the numerics) identical across every device count.
    base_spec = base_spec.replace(
        pipad={**base_spec.pipad, "fixed_s_per": fixed_s_per}
    )

    results = {}
    for devices in device_counts:
        spec = base_spec.replace(
            device=DeviceSpec(
                kind="pipeline",
                num_devices=devices,
                interconnect=interconnect,
                schedule=schedule,
            )
        )
        results[devices] = Engine.from_spec(spec, graph=graph).train()

    rows: List[Dict[str, float]] = []
    reference = results[1].steady_epoch_seconds
    for devices in device_counts:
        result = results[devices]
        steady = result.steady_epoch_seconds
        speedup = reference / steady if steady > 0 else float("inf")
        # Pipeline communication/bubbles only occur in the post-preparing
        # epochs; normalize to the same per-epoch basis as
        # ``steady_epoch_seconds`` so the columns are directly comparable.
        pipeline_epochs = max(1, result.epochs - config.preparing_epochs)
        row: Dict[str, float] = {
            "dataset": dataset,
            "model": model,
            "devices": float(devices),
            "steady_epoch_seconds": steady,
            "speedup": speedup,
            "efficiency": speedup / devices,
            "bubble_seconds": result.extras.get("pipeline_bubble_seconds", 0.0)
            / pipeline_epochs,
            "peer_transfer_seconds": result.extras.get("peer_transfer_seconds", 0.0)
            / pipeline_epochs,
            "all_reduce_seconds": result.extras.get("all_reduce_seconds", 0.0)
            / pipeline_epochs,
        }
        if include_group:
            if devices == 1:
                # A one-device group degenerates to the same plain PiPAD run
                # as a one-device pipeline; reuse the reference.
                group_steady, group_all_reduce = steady, 0.0
            else:
                group_spec = base_spec.replace(
                    device=DeviceSpec(
                        kind="group", num_devices=devices, interconnect=interconnect
                    )
                )
                group_result = Engine.from_spec(group_spec, graph=graph).train()
                group_steady = group_result.steady_epoch_seconds
                group_all_reduce = (
                    group_result.extras.get("all_reduce_seconds", 0.0)
                    / pipeline_epochs
                )
            row["group_steady_epoch_seconds"] = group_steady
            row["group_all_reduce_seconds"] = group_all_reduce
        rows.append(row)
    return rows


def format_result(rows: List[Dict[str, float]]) -> str:
    """Render the pipeline-scaling table (one row per device count)."""
    with_group = "group_steady_epoch_seconds" in rows[0]
    header: Tuple[str, ...] = (
        "devices",
        "steady s/epoch",
        "speedup",
        "efficiency",
        "bubble s/ep",
        "p2p s/ep",
    )
    if with_group:
        header += ("group s/epoch", "group all_reduce s/ep")
    table = []
    for row in rows:
        cells = (
            f"{row['devices']:.0f}",
            f"{row['steady_epoch_seconds']:.4f}",
            f"{row['speedup']:.2f}x",
            f"{row['efficiency']:.1%}",
            f"{row['bubble_seconds']:.4f}",
            f"{row['peer_transfer_seconds']:.6f}",
        )
        if with_group:
            cells += (
                f"{row['group_steady_epoch_seconds']:.4f}",
                f"{row['group_all_reduce_seconds']:.4f}",
            )
        table.append(cells)
    title = (
        f"Frame-pipeline scaling — {rows[0]['dataset']} / {rows[0]['model']} "
        "(bubble = device-seconds stalled on the state chain)"
    )
    return title + "\n" + format_table(header, table)
