"""Multi-GPU scaling of distributed PiPAD training (repro extension).

Not a paper artifact: the paper trains on one V100.  This experiment answers
the question its production deployment would ask next — how does the
pipelined training time scale when the node set is sharded across a device
group?  For each device count it trains the same workload through
:class:`~repro.core.distributed_trainer.DistributedTrainer` and reports the
steady-state epoch time, the speedup and parallel efficiency over the
single-device run, and the per-steady-epoch time spent in each collective
(halo exchange, state all-gather, gradient all-reduce).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.engine import Engine
from repro.api.spec import DeviceSpec
from repro.core.distributed_trainer import COLLECTIVE_KEYS
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    load_experiment_graph,
    method_spec,
)

#: device counts swept by default (1 is the reference run)
DEFAULT_DEVICE_COUNTS = (1, 2, 4, 8)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    interconnect: str = "nvlink",
    cost_scale: float = 5000.0,
) -> List[Dict[str, float]]:
    """Train the sweep's first dataset/model at each device count."""
    if 1 not in device_counts:
        raise ValueError(
            "device_counts must include 1 — the single-device run is the "
            f"speedup/efficiency reference, got {tuple(device_counts)}"
        )
    config = config or ExperimentConfig.quick()
    dataset = config.datasets[0]
    model = config.models[0]
    graph = load_experiment_graph(dataset, config)
    base_spec = method_spec("pipad", model, config, dataset=dataset).replace(
        cost_scale=cost_scale
    )

    steady_by_devices: Dict[int, float] = {}
    results = {}
    for devices in device_counts:
        spec = base_spec.replace(
            device=DeviceSpec(
                kind="group", num_devices=devices, interconnect=interconnect
            )
        )
        result = Engine.from_spec(spec, graph=graph).train()
        steady_by_devices[devices] = result.steady_epoch_seconds
        results[devices] = result

    rows: List[Dict[str, float]] = []
    reference = steady_by_devices[1]
    for devices in device_counts:
        result = results[devices]
        steady = steady_by_devices[devices]
        speedup = reference / steady if steady > 0 else float("inf")
        row: Dict[str, float] = {
            "dataset": dataset,
            "model": model,
            "devices": float(devices),
            "steady_epoch_seconds": steady,
            "speedup": speedup,
            "efficiency": speedup / devices,
            "halo_feature_bytes": result.extras.get("halo_feature_bytes", 0.0),
        }
        # Collectives only run in the post-preparing epochs; normalize their
        # totals to the same per-epoch basis as ``steady_epoch_seconds`` so
        # the table's columns are directly comparable (and the collective
        # share does not drift with the configured epoch count).
        collective_epochs = max(1, result.epochs - config.preparing_epochs)
        for key in COLLECTIVE_KEYS:
            row[key] = result.extras.get(key, 0.0) / collective_epochs
        rows.append(row)
    return rows


def format_result(rows: List[Dict[str, float]]) -> str:
    """Render the scaling table (one row per device count)."""
    header: Tuple[str, ...] = (
        "devices",
        "steady s/epoch",
        "speedup",
        "efficiency",
        "halo s/ep",
        "all_gather s/ep",
        "all_reduce s/ep",
    )
    table = [
        (
            f"{row['devices']:.0f}",
            f"{row['steady_epoch_seconds']:.4f}",
            f"{row['speedup']:.2f}x",
            f"{row['efficiency']:.1%}",
            f"{row['halo_exchange_seconds']:.4f}",
            f"{row['all_gather_seconds']:.4f}",
            f"{row['all_reduce_seconds']:.4f}",
        )
        for row in rows
    ]
    title = f"Multi-GPU scaling — {rows[0]['dataset']} / {rows[0]['model']}"
    return title + "\n" + format_table(header, table)
