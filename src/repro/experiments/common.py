"""Shared plumbing for the experiment harness.

Every experiment module exposes ``run(config) -> dict`` returning the rows of
the corresponding paper table/figure and ``format_result(rows) -> str``
rendering them the way the paper reports them.  :class:`ExperimentConfig`
scales the sweep: the defaults finish in seconds (suitable for CI and the
pytest-benchmark harness); ``full()`` mirrors the paper's full grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines import METHOD_ORDER, _registry
from repro.baselines.results import TrainingResult
from repro.graph.datasets import DATASET_ORDER, load_dataset
from repro.nn import MODEL_ORDER, MODEL_REGISTRY


@dataclass(frozen=True)
class ExperimentConfig:
    """Sweep parameters shared by all experiments."""

    datasets: Tuple[str, ...] = ("flickr", "hepth", "covid19_england")
    models: Tuple[str, ...] = ("evolvegcn", "tgcn")
    methods: Tuple[str, ...] = tuple(METHOD_ORDER)
    num_snapshots: int = 12
    frame_size: int = 8
    epochs: int = 3
    seed: int = 0
    preparing_epochs: int = 1

    def __post_init__(self) -> None:
        # Fail fast with the valid choices: a typo'd name must not surface as
        # a KeyError hours into a sweep.
        unknown_datasets = [
            d for d in self.datasets if d.lower().replace("-", "_") not in DATASET_ORDER
        ]
        if unknown_datasets:
            raise ValueError(
                f"unknown dataset(s) {unknown_datasets}; valid datasets: "
                f"{sorted(DATASET_ORDER)}"
            )
        unknown_models = [
            m for m in self.models if m.lower().replace("-", "_") not in MODEL_REGISTRY
        ]
        if unknown_models:
            raise ValueError(
                f"unknown model(s) {unknown_models}; valid models: "
                f"{sorted(MODEL_REGISTRY)}"
            )
        registry = _registry()
        unknown_methods = [
            m for m in self.methods if m.lower().replace("_", "-") not in registry
        ]
        if unknown_methods:
            raise ValueError(
                f"unknown method(s) {unknown_methods}; valid methods: "
                f"{sorted(registry)}"
            )

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A minimal sweep for smoke tests: one small dataset, one model."""
        return cls(
            datasets=("covid19_england",),
            models=("tgcn",),
            num_snapshots=10,
            frame_size=6,
            epochs=2,
        )

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """The paper's full grid (7 datasets × 3 models × 5 methods)."""
        return cls(
            datasets=tuple(DATASET_ORDER),
            models=tuple(MODEL_ORDER),
            num_snapshots=24,
            frame_size=16,
            epochs=3,
        )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)


def load_experiment_graph(name: str, config: ExperimentConfig):
    """Load a dataset analogue sized for the experiment sweep."""
    return load_dataset(name, seed=config.seed, num_snapshots=config.num_snapshots)


def method_spec(
    method: str, model: str, config: ExperimentConfig, *, dataset: str
) -> "RunSpec":  # noqa: F821 - forward ref
    """The :class:`~repro.api.spec.RunSpec` one sweep combination resolves to."""
    from repro.api.spec import RunSpec

    pipad = (
        {"preparing_epochs": config.preparing_epochs}
        if method.lower() == "pipad"
        else {}
    )
    return RunSpec(
        dataset=dataset,
        model=model,
        method=method,
        num_snapshots=config.num_snapshots,
        frame_size=config.frame_size,
        epochs=config.epochs,
        seed=config.seed,
        pipad=pipad,
    )


def run_method(
    method: str,
    graph,
    model: str,
    config: ExperimentConfig,
) -> TrainingResult:
    """Train one (method, model, dataset) combination and return its result.

    The combination is expressed as a :class:`~repro.api.spec.RunSpec` and
    executed through the unified :class:`~repro.api.engine.Engine`, sharing
    the already-loaded ``graph`` across the sweep's methods.
    """
    from repro.api.engine import Engine

    dataset = str(graph.metadata.get("dataset", graph.name))
    spec = method_spec(method, model, config, dataset=dataset)
    return Engine.from_spec(spec, graph=graph).train()


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, float_fmt: str = "{:.3f}"
) -> str:
    """Render a fixed-width text table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), max((len(r[i]) for r in str_rows), default=0))
        for i in range(len(headers))
    ]
    lines = ["  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)
