"""Shared plumbing for the experiment harness.

Every experiment module exposes ``run(config) -> dict`` returning the rows of
the corresponding paper table/figure and ``format_result(rows) -> str``
rendering them the way the paper reports them.  :class:`ExperimentConfig`
scales the sweep: the defaults finish in seconds (suitable for CI and the
pytest-benchmark harness); ``full()`` mirrors the paper's full grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines import METHOD_ORDER, TrainerConfig, make_trainer
from repro.baselines.results import TrainingResult
from repro.core import PiPADConfig
from repro.graph.datasets import DATASET_ORDER, load_dataset
from repro.nn import MODEL_ORDER


@dataclass(frozen=True)
class ExperimentConfig:
    """Sweep parameters shared by all experiments."""

    datasets: Tuple[str, ...] = ("flickr", "hepth", "covid19_england")
    models: Tuple[str, ...] = ("evolvegcn", "tgcn")
    methods: Tuple[str, ...] = tuple(METHOD_ORDER)
    num_snapshots: int = 12
    frame_size: int = 8
    epochs: int = 3
    seed: int = 0
    preparing_epochs: int = 1

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A minimal sweep for smoke tests: one small dataset, one model."""
        return cls(
            datasets=("covid19_england",),
            models=("tgcn",),
            num_snapshots=10,
            frame_size=6,
            epochs=2,
        )

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """The paper's full grid (7 datasets × 3 models × 5 methods)."""
        return cls(
            datasets=tuple(DATASET_ORDER),
            models=tuple(MODEL_ORDER),
            num_snapshots=24,
            frame_size=16,
            epochs=3,
        )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)


def load_experiment_graph(name: str, config: ExperimentConfig):
    """Load a dataset analogue sized for the experiment sweep."""
    return load_dataset(name, seed=config.seed, num_snapshots=config.num_snapshots)


def trainer_config(config: ExperimentConfig, model: str) -> TrainerConfig:
    return TrainerConfig(
        model=model,
        frame_size=config.frame_size,
        epochs=config.epochs,
        seed=config.seed,
    )


def run_method(
    method: str,
    graph,
    model: str,
    config: ExperimentConfig,
) -> TrainingResult:
    """Train one (method, model, dataset) combination and return its result."""
    kwargs = {}
    if method.lower() == "pipad":
        kwargs["pipad_config"] = PiPADConfig(preparing_epochs=config.preparing_epochs)
    trainer = make_trainer(method, graph, trainer_config(config, model), **kwargs)
    return trainer.train()


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, float_fmt: str = "{:.3f}"
) -> str:
    """Render a fixed-width text table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), max((len(r[i]) for r in str_rows), default=0))
        for i in range(len(headers))
    ]
    lines = ["  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)
