"""Ablation experiments for the design choices called out in DESIGN.md.

Each ablation trains PiPAD with one optimization disabled (or a parameter
fixed) and reports the slowdown relative to the full configuration; this is
the per-mechanism evidence backing the end-to-end Fig. 10 numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import PiPADConfig, PiPADTrainer
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    load_experiment_graph,
    trainer_config,
)

#: named ablation configurations (None values mean "use the full default")
ABLATIONS: Dict[str, PiPADConfig] = {
    "full": PiPADConfig(),
    "no_reuse": PiPADConfig(enable_inter_frame_reuse=False),
    "no_weight_reuse": PiPADConfig(enable_weight_reuse=False),
    "no_pipeline": PiPADConfig(enable_pipeline=False),
    "no_cuda_graph": PiPADConfig(use_cuda_graph=False),
    "plain_csr": PiPADConfig(use_sliced_csr=False),
    "fixed_s_per_2": PiPADConfig(fixed_s_per=2),
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: str = "hepth",
    model: str = "tgcn",
) -> Dict[str, Dict[str, float]]:
    """Steady-state epoch time of each ablated PiPAD configuration."""
    config = config or ExperimentConfig()
    graph = load_experiment_graph(dataset, config)
    rows: Dict[str, Dict[str, float]] = {}
    baseline_seconds = None
    for name, pipad_cfg in ABLATIONS.items():
        pipad_cfg = PiPADConfig(
            **{**pipad_cfg.__dict__, "preparing_epochs": config.preparing_epochs}
        )
        result = PiPADTrainer(graph, trainer_config(config, model), pipad_cfg).train()
        seconds = result.steady_epoch_seconds
        if name == "full":
            baseline_seconds = seconds
        rows[name] = {"epoch_seconds": seconds}
    for name, row in rows.items():
        row["slowdown_vs_full"] = (
            row["epoch_seconds"] / baseline_seconds if baseline_seconds else 1.0
        )
    return rows


def format_result(rows: Dict[str, Dict[str, float]]) -> str:
    headers = ["configuration", "epoch seconds", "slowdown vs full"]
    body = [[name, row["epoch_seconds"], row["slowdown_vs_full"]] for name, row in rows.items()]
    return format_table(headers, body, float_fmt="{:.4f}")
