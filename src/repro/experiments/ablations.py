"""Ablation experiments for the design choices called out in DESIGN.md.

Each ablation trains PiPAD with one optimization disabled (or a parameter
fixed) and reports the slowdown relative to the full configuration; this is
the per-mechanism evidence backing the end-to-end Fig. 10 numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api.engine import Engine
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    load_experiment_graph,
    method_spec,
)

#: named ablations as PiPADConfig overrides ({} means "the full default"),
#: applied through the RunSpec ``pipad`` section
ABLATIONS: Dict[str, Dict[str, object]] = {
    "full": {},
    "no_reuse": {"enable_inter_frame_reuse": False},
    "no_weight_reuse": {"enable_weight_reuse": False},
    "no_pipeline": {"enable_pipeline": False},
    "no_cuda_graph": {"use_cuda_graph": False},
    "plain_csr": {"use_sliced_csr": False},
    "fixed_s_per_2": {"fixed_s_per": 2},
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: str = "hepth",
    model: str = "tgcn",
) -> Dict[str, Dict[str, float]]:
    """Steady-state epoch time of each ablated PiPAD configuration."""
    config = config or ExperimentConfig()
    graph = load_experiment_graph(dataset, config)
    rows: Dict[str, Dict[str, float]] = {}
    baseline_seconds = None
    base_spec = method_spec("pipad", model, config, dataset=dataset)
    for name, overrides in ABLATIONS.items():
        spec = base_spec.replace(pipad={**base_spec.pipad, **overrides})
        result = Engine.from_spec(spec, graph=graph).train()
        seconds = result.steady_epoch_seconds
        if name == "full":
            baseline_seconds = seconds
        rows[name] = {"epoch_seconds": seconds}
    for name, row in rows.items():
        row["slowdown_vs_full"] = (
            row["epoch_seconds"] / baseline_seconds if baseline_seconds else 1.0
        )
    return rows


def format_result(rows: Dict[str, Dict[str, float]]) -> str:
    headers = ["configuration", "epoch seconds", "slowdown vs full"]
    body = [[name, row["epoch_seconds"], row["slowdown_vs_full"]] for name, row in rows.items()]
    return format_table(headers, body, float_fmt="{:.4f}")
