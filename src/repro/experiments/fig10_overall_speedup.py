"""Fig. 10: end-to-end training speedup over PyGT for all methods.

One row per (model, dataset): the steady-state per-epoch training time of
each method and its speedup over the PyGT baseline.  Table 2's GPU
utilization is produced from the same runs by
:mod:`repro.experiments.table2_gpu_utilization`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.results import TrainingResult
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    load_experiment_graph,
    run_method,
)


def run(config: Optional[ExperimentConfig] = None) -> Dict[str, Dict[str, TrainingResult]]:
    """Train every (method, model, dataset) combination of the sweep."""
    config = config or ExperimentConfig()
    rows: Dict[str, Dict[str, TrainingResult]] = {}
    for dataset in config.datasets:
        graph = load_experiment_graph(dataset, config)
        for model in config.models:
            results: Dict[str, TrainingResult] = {}
            for method in config.methods:
                results[method] = run_method(method, graph, model, config)
            rows[f"{model}/{dataset}"] = results
    return rows


def speedups(rows: Dict[str, Dict[str, TrainingResult]]) -> Dict[str, Dict[str, float]]:
    """Per-combination speedup of every method over PyGT (steady-state epochs)."""
    table: Dict[str, Dict[str, float]] = {}
    for key, results in rows.items():
        baseline = results.get("PyGT")
        if baseline is None:
            continue
        table[key] = {
            method: baseline.steady_epoch_seconds / max(result.steady_epoch_seconds, 1e-12)
            for method, result in results.items()
        }
    return table


def format_result(rows: Dict[str, Dict[str, TrainingResult]]) -> str:
    table = speedups(rows)
    methods = sorted({m for row in table.values() for m in row}, key=str)
    headers = ["model/dataset"] + methods
    body = [[key] + [row.get(m, float("nan")) for m in methods] for key, row in table.items()]
    return format_table(headers, body, float_fmt="{:.2f}")
