"""§4.1 space overhead: COO vs CSR vs sliced CSR storage footprint."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.experiments.common import ExperimentConfig, format_table, load_experiment_graph
from repro.graph.stats import format_sizes


def run(
    config: Optional[ExperimentConfig] = None, *, slice_capacity: int = 32
) -> Dict[str, Dict[str, float]]:
    """Average per-snapshot storage of each format for every dataset."""
    config = config or ExperimentConfig()
    rows: Dict[str, Dict[str, float]] = {}
    for dataset in config.datasets:
        graph = load_experiment_graph(dataset, config)
        sizes = [format_sizes(s.adjacency, slice_capacity) for s in graph.snapshots]
        coo = float(np.mean([s["coo_bytes"] for s in sizes]))
        csr = float(np.mean([s["csr_bytes"] for s in sizes]))
        sliced = float(np.mean([s["sliced_csr_bytes"] for s in sizes]))
        rows[dataset] = {
            "coo_bytes": coo,
            "csr_bytes": csr,
            "sliced_csr_bytes": sliced,
            "sliced_over_csr": sliced / csr if csr else 1.0,
            "sliced_over_coo": sliced / coo if coo else 1.0,
        }
    return rows


def format_result(rows: Dict[str, Dict[str, float]]) -> str:
    headers = ["dataset", "COO bytes", "CSR bytes", "sliced bytes", "sliced/CSR", "sliced/COO"]
    body = [
        [name, row["coo_bytes"], row["csr_bytes"], row["sliced_csr_bytes"],
         row["sliced_over_csr"], row["sliced_over_coo"]]
        for name, row in rows.items()
    ]
    return format_table(headers, body, float_fmt="{:.2f}")
