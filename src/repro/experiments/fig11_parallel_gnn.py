"""Fig. 11 and §5.3: detailed analysis of the parallel GNN.

(a) GNN-module execution-time speedup over PyGT and PyGT-G plus the
    reduction in global-memory requests/transactions versus PyGT-G;
(b) normalized GNN speedup over PyGT as the feature dimension changes
    (dimension sensitivity);
thread utilization: average warp execution efficiency of the GNN kernels
    under PyGT-G vs PiPAD with the small-dimension setting (input 2/hidden 6).

All numbers come from the kernel cost models applied to real snapshot groups
of each dataset analogue — inter-frame reuse is disabled, mirroring §5.3.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentConfig, format_table, load_experiment_graph
from repro.graph.overlap import extract_overlap
from repro.gpu.spec import GPUSpec
from repro.gpu.warp_model import coalesced_active_thread_ratio, baseline_active_thread_ratio
from repro.kernels.gemm import update_gemm_cost
from repro.kernels.spmm_coo import PyGCOOAggregation
from repro.kernels.spmm_csr import GESpMMAggregation
from repro.kernels.spmm_sliced import SlicedParallelAggregation


def _gnn_module_seconds_sequential(kernel_cls, snapshots, feature_dim, hidden_dim, spec, scale):
    """One-snapshot-at-a-time GNN (aggregation + update) time for a group."""
    seconds = 0.0
    launch = spec.kernel_launch_overhead_us * 1e-6
    requests = transactions = 0.0
    for snapshot in snapshots:
        if snapshot.adjacency.nnz:
            kernel = kernel_cls(snapshot.adjacency, spec, scale)
            cost = kernel.forward_cost((snapshot.num_nodes, feature_dim))
            seconds += cost.execution_seconds(spec) + launch * cost.launches
            requests += cost.mem_requests
            transactions += cost.mem_transactions
        update = update_gemm_cost(
            snapshot.num_nodes, feature_dim, hidden_dim, spec, reuse_group=1, scale=scale
        )
        seconds += update.execution_seconds(spec) + launch
        requests += update.mem_requests
        transactions += update.mem_transactions
    return seconds, requests, transactions


def _gnn_module_seconds_parallel(snapshots, feature_dim, hidden_dim, spec, scale, slice_capacity=32):
    """PiPAD parallel GNN time for the same group (overlap + exclusives)."""
    decomposition = extract_overlap([s.adjacency for s in snapshots])
    group = len(snapshots)
    launch = spec.cudagraph_launch_overhead_us * 1e-6
    seconds = requests = transactions = 0.0
    if decomposition.overlap.nnz:
        kernel = SlicedParallelAggregation(
            decomposition.overlap, spec, scale, slice_capacity=slice_capacity, snapshots_coalesced=group
        )
        cost = kernel.forward_cost((snapshots[0].num_nodes, feature_dim * group))
        seconds += cost.execution_seconds(spec) + launch
        requests += cost.mem_requests
        transactions += cost.mem_transactions
    for exclusive, snapshot in zip(decomposition.exclusives, snapshots):
        if exclusive.nnz:
            kernel = SlicedParallelAggregation(
                exclusive, spec, scale, slice_capacity=slice_capacity, snapshots_coalesced=1
            )
            cost = kernel.forward_cost((snapshot.num_nodes, feature_dim))
            seconds += cost.execution_seconds(spec) + launch
            requests += cost.mem_requests
            transactions += cost.mem_transactions
    for snapshot in snapshots:
        update = update_gemm_cost(
            snapshot.num_nodes, feature_dim, hidden_dim, spec, reuse_group=group, scale=scale
        )
        seconds += update.execution_seconds(spec) + launch
        requests += update.mem_requests
        transactions += update.mem_transactions
    return seconds, requests, transactions


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    group_size: int = 4,
) -> Dict[str, Dict[str, float]]:
    """Per-dataset GNN-module comparison: PyGT vs PyGT-G vs PiPAD parallel."""
    config = config or ExperimentConfig()
    spec = GPUSpec()
    rows: Dict[str, Dict[str, float]] = {}
    for dataset in config.datasets:
        graph = load_experiment_graph(dataset, config)
        scale = 1.0
        if graph.metadata.get("dataset"):
            from repro.graph.datasets import get_dataset_spec

            spec_ds = get_dataset_spec(str(graph.metadata["dataset"]))
            scale = max(1.0, spec_ds.paper.num_nodes / spec_ds.config.num_nodes)
        max_s = int(graph.metadata.get("max_s_per", group_size))
        group = min(group_size, max_s, graph.num_snapshots)
        snapshots = graph.snapshots[:group]
        feature_dim = graph.feature_dim
        hidden_dim = int(graph.metadata.get("hidden_dim", 32))

        pyg_seconds, _, _ = _gnn_module_seconds_sequential(
            PyGCOOAggregation, snapshots, feature_dim, hidden_dim, spec, scale
        )
        gespmm_seconds, gespmm_req, gespmm_txn = _gnn_module_seconds_sequential(
            GESpMMAggregation, snapshots, feature_dim, hidden_dim, spec, scale
        )
        pipad_seconds, pipad_req, pipad_txn = _gnn_module_seconds_parallel(
            snapshots, feature_dim, hidden_dim, spec, scale
        )
        rows[dataset] = {
            "speedup_over_pygt": pyg_seconds / pipad_seconds,
            "speedup_over_pygt_g": gespmm_seconds / pipad_seconds,
            "request_reduction": 1.0 - pipad_req / gespmm_req if gespmm_req else 0.0,
            "transaction_reduction": 1.0 - pipad_txn / gespmm_txn if gespmm_txn else 0.0,
            "group_size": float(group),
        }
    return rows


def dimension_sensitivity(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: str = "hepth",
    dimensions: Sequence[int] = (2, 8, 16, 32, 64, 128),
    group_size: int = 4,
) -> Dict[int, float]:
    """Fig. 11(b): parallel-GNN speedup over PyGT as the feature dim changes."""
    config = config or ExperimentConfig()
    spec = GPUSpec()
    graph = load_experiment_graph(dataset, config)
    snapshots = graph.snapshots[: min(group_size, graph.num_snapshots)]
    hidden_dim = int(graph.metadata.get("hidden_dim", 32))
    result: Dict[int, float] = {}
    for dim in dimensions:
        pyg_seconds, _, _ = _gnn_module_seconds_sequential(
            PyGCOOAggregation, snapshots, dim, hidden_dim, spec, 1.0
        )
        pipad_seconds, _, _ = _gnn_module_seconds_parallel(snapshots, dim, hidden_dim, spec, 1.0)
        result[dim] = pyg_seconds / pipad_seconds
    return result


def thread_utilization(
    config: Optional[ExperimentConfig] = None,
    *,
    feature_dim: int = 2,
    hidden_dim: int = 6,
    group_size: int = 4,
) -> Dict[str, float]:
    """§5.3 thread-utilization comparison (warp execution efficiency).

    The paper sets input/hidden dimensions of all datasets to 2/6 and reports
    the average active-thread ratio of the GNN-related kernels: 57.2 % for
    PyGT-G and 64.9 % for PiPAD.
    """
    spec = GPUSpec()
    # GNN-related kernels: the aggregation (low thread utilization for small
    # dims under the row-per-warp mapping) and the dense update (full warps).
    gespmm_ratios = [
        baseline_active_thread_ratio(feature_dim, spec),
        baseline_active_thread_ratio(hidden_dim, spec),
        1.0,  # update GEMM
    ]
    pipad_ratios = [
        coalesced_active_thread_ratio(feature_dim * group_size, spec),
        coalesced_active_thread_ratio(hidden_dim * group_size, spec),
        1.0,
    ]
    return {
        "pygt_g_thread_utilization": float(np.mean(gespmm_ratios)),
        "pipad_thread_utilization": float(np.mean(pipad_ratios)),
    }


def format_result(rows: Dict[str, Dict[str, float]]) -> str:
    headers = ["dataset", "speedup vs PyGT", "speedup vs PyGT-G", "request reduction %",
               "transaction reduction %", "S_per"]
    body = [
        [
            name,
            row["speedup_over_pygt"],
            row["speedup_over_pygt_g"],
            row["request_reduction"] * 100,
            row["transaction_reduction"] * 100,
            row["group_size"],
        ]
        for name, row in rows.items()
    ]
    return format_table(headers, body, float_fmt="{:.2f}")
