"""Fig. 3: latency breakdown and SM utilization of PyGT DGNN training."""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    load_experiment_graph,
    run_method,
)
from repro.profiling.breakdown import latency_breakdown


def run(config: Optional[ExperimentConfig] = None) -> Dict[str, Dict[str, float]]:
    """Breakdown of PyGT training time per (model, dataset) combination."""
    config = config or ExperimentConfig()
    rows: Dict[str, Dict[str, float]] = {}
    for dataset in config.datasets:
        graph = load_experiment_graph(dataset, config)
        for model in config.models:
            result = run_method("pygt", graph, model, config)
            row = latency_breakdown(result)
            row["simulated_seconds"] = result.simulated_seconds
            rows[f"{model}/{dataset}"] = row
    return rows


def format_result(rows: Dict[str, Dict[str, float]]) -> str:
    headers = ["model/dataset", "transfer %", "compute %", "cpu %", "SM util %"]
    table_rows = [
        [
            key,
            row["transfer_fraction"] * 100,
            row["compute_fraction"] * 100,
            row["cpu_fraction"] * 100,
            row["sm_utilization"] * 100,
        ]
        for key, row in rows.items()
    ]
    return format_table(headers, table_rows, float_fmt="{:.1f}")
