"""Table 2: GPU utilization (%) of the different methods."""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments import fig10_overall_speedup
from repro.experiments.common import ExperimentConfig, format_table


def run(config: Optional[ExperimentConfig] = None) -> Dict[str, Dict[str, float]]:
    """GPU utilization of every (method, model, dataset) combination."""
    config = config or ExperimentConfig()
    results = fig10_overall_speedup.run(config)
    rows: Dict[str, Dict[str, float]] = {}
    for key, method_results in results.items():
        rows[key] = {
            method: result.gpu_utilization * 100.0 for method, result in method_results.items()
        }
    return rows


def format_result(rows: Dict[str, Dict[str, float]]) -> str:
    methods = sorted({m for row in rows.values() for m in row}, key=str)
    headers = ["model/dataset"] + methods
    body = [[key] + [row.get(m, float("nan")) for m in methods] for key, row in rows.items()]
    return format_table(headers, body, float_fmt="{:.1f}")
