"""PiPAD reproduction: pipelined and parallel dynamic GNN training.

This package reproduces the system described in "PiPAD: Pipelined and
Parallel Dynamic GNN Training on GPUs" (PPoPP 2023) on a pure-Python
substrate: real numerics run on NumPy/SciPy while GPU-side behaviour
(memory transactions, warp occupancy, PCIe transfers, stream overlap) is
captured by an analytic simulated device so the paper's performance
experiments can be regenerated without CUDA hardware.

Sub-packages
------------
- :mod:`repro.graph` — dynamic-graph substrate (formats, snapshots, frames,
  overlap extraction, dataset analogues).
- :mod:`repro.tensor` — NumPy autograd engine and NN building blocks.
- :mod:`repro.gpu` — simulated GPU device, memory/warp cost models, PCIe,
  streams and timeline.
- :mod:`repro.kernels` — aggregation/update kernels (PyG COO, GE-SpMM CSR,
  PiPAD sliced parallel) with numerics + hardware cost.
- :mod:`repro.nn` — the three DGNN models (MPNN-LSTM, EvolveGCN, T-GCN).
- :mod:`repro.core` — the PiPAD runtime (slicer, overlap-aware transfer,
  parallel GNN, pipeline, inter-frame reuse, dynamic tuner, trainer).
- :mod:`repro.baselines` — PyGT and its PyGT-A / PyGT-R / PyGT-G variants.
- :mod:`repro.serving` — streaming inference: incremental snapshot store,
  forward-only sessions, micro-batching and the pipelined serving scheduler.
- :mod:`repro.distributed` — multi-GPU sharding: graph partitioner, device
  group with ring collectives, data-parallel trainer and sharded serving.
- :mod:`repro.profiling` — breakdowns, utilization, load-balance analysis.
- :mod:`repro.experiments` — one module per paper table/figure.
- :mod:`repro.telemetry` — observability: span tracing, Chrome-trace export,
  the unified metrics registry and the callback/hook layer.
- :mod:`repro.api` — the unified entry layer: declarative ``RunSpec``,
  the ``Engine`` façade and the ``python -m repro`` CLI.

Commonly used names (``load_dataset``, ``PiPADTrainer``, ``SimulatedGPU``,
...) are re-exported lazily at the top level.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.version import __version__

# name -> submodule providing it; resolved lazily on first attribute access
_LAZY_EXPORTS = {
    # unified entry layer (the preferred construction path)
    "DeviceSpec": "repro.api",
    "Engine": "repro.api",
    "RunReport": "repro.api",
    "RunSpec": "repro.api",
    "ServingSpec": "repro.api",
    "TelemetrySpec": "repro.api",
    "TraceSpec": "repro.api",
    "DEVICE_REGISTRY": "repro.api",
    "SERVING_REGISTRY": "repro.api",
    "build_trainer": "repro.api",
    "build_serving": "repro.api",
    # graph substrate
    "COOMatrix": "repro.graph",
    "CSRMatrix": "repro.graph",
    "SlicedCSRMatrix": "repro.graph",
    "GraphSnapshot": "repro.graph",
    "DynamicGraph": "repro.graph",
    "FrameIterator": "repro.graph",
    "SnapshotOverlap": "repro.graph",
    "load_dataset": "repro.graph",
    "list_datasets": "repro.graph",
    # simulated GPU
    "GPUSpec": "repro.gpu",
    "PCIeSpec": "repro.gpu",
    "SimulatedGPU": "repro.gpu",
    # PiPAD runtime
    "PiPADConfig": "repro.core",
    "PiPADTrainer": "repro.core",
    # distributed execution
    "DistributedConfig": "repro.distributed",
    "DistributedTrainer": "repro.distributed",
    "PipelineConfig": "repro.distributed",
    "PipelineTrainer": "repro.distributed",
    "DeviceGroup": "repro.distributed",
    "FramePartitioner": "repro.distributed",
    "FrameStage": "repro.distributed",
    "GraphPartitioner": "repro.distributed",
    "Interconnect": "repro.distributed",
    "LinkSpec": "repro.distributed",
    "NVLINK": "repro.distributed",
    "PCIE_PEER": "repro.distributed",
    "PARTITION_MODES": "repro.distributed",
    "SCHEDULE_MODES": "repro.distributed",
    "ShardGroup": "repro.distributed",
    "SnapshotShard": "repro.distributed",
    "ShardedServingEngine": "repro.distributed",
    "build_sharded_serving_engine": "repro.distributed",
    "FleetConfig": "repro.distributed",
    "FleetServingEngine": "repro.distributed",
    "ScaleEvent": "repro.distributed",
    "build_fleet_serving_engine": "repro.distributed",
    # baselines
    "PyGTTrainer": "repro.baselines",
    "PyGTAsyncTrainer": "repro.baselines",
    "PyGTReuseTrainer": "repro.baselines",
    "PyGTGeSpMMTrainer": "repro.baselines",
    "TrainerConfig": "repro.baselines",
    "TrainingResult": "repro.baselines",
    "EpochMetrics": "repro.baselines",
    "METHOD_ORDER": "repro.baselines",
    "list_methods": "repro.baselines",
    "make_trainer": "repro.baselines",
    # models
    "MODEL_ORDER": "repro.nn",
    "MODEL_REGISTRY": "repro.nn",
    "build_model": "repro.nn",
    "list_models": "repro.nn",
    # serving
    "BatchRecord": "repro.serving",
    "BatchResult": "repro.serving",
    "DeltaReport": "repro.serving",
    "GraphDelta": "repro.serving",
    "IncrementalSnapshotStore": "repro.serving",
    "InferenceRequest": "repro.serving",
    "InferenceSession": "repro.serving",
    "MicroBatch": "repro.serving",
    "MicroBatcher": "repro.serving",
    "RequestRecord": "repro.serving",
    "ServingConfig": "repro.serving",
    "ServingEvent": "repro.serving",
    "ServingMetrics": "repro.serving",
    "ServingPolicy": "repro.serving",
    "ServingReport": "repro.serving",
    "ServingScheduler": "repro.serving",
    "build_serving_engine": "repro.serving",
    "random_delta": "repro.serving",
    "synthesize_serving_trace": "repro.serving",
    # telemetry
    "CALLBACK_REGISTRY": "repro.telemetry",
    "EXPORTER_REGISTRY": "repro.telemetry",
    "MetricsRegistry": "repro.telemetry",
    "SpanTracer": "repro.telemetry",
    "Telemetry": "repro.telemetry",
    "TelemetryCallback": "repro.telemetry",
    "build_chrome_trace": "repro.telemetry",
    "export_chrome_trace": "repro.telemetry",
    # experiments
    "ExperimentConfig": "repro.experiments",
    "run_experiment": "repro.experiments",
    "format_experiment": "repro.experiments",
    "list_experiments": "repro.experiments",
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str) -> Any:
    if name in _LAZY_EXPORTS:
        module = importlib.import_module(_LAZY_EXPORTS[name])
        return getattr(module, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
