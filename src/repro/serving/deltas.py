"""Graph deltas and serving traces.

Online DGNN serving ingests the dynamic graph as a stream of *deltas* —
edge insertions/removals plus node-feature updates — instead of whole
snapshots.  Each applied delta produces a new immutable snapshot *version*
at the head of the serving window; the paper's observation that adjacent
snapshots share ~90 % of their topology is what keeps these deltas small
and the incremental bookkeeping cheap.

:func:`synthesize_serving_trace` builds a reproducible mixed stream of
deltas and prediction requests with arrival timestamps, so the example and
the latency benchmark can replay the exact same workload against different
serving configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.graph.snapshot import GraphSnapshot
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True, eq=False)
class GraphDelta:
    """One atomic update to the head snapshot.

    Attributes
    ----------
    added_edges / removed_edges:
        ``(k, 2)`` int64 arrays of ``(src, dst)`` pairs.  Removals that do
        not exist and additions that already exist are ignored (idempotent
        application), mirroring how streaming graph stores deduplicate.
    feature_updates:
        Mapping from node id to its new feature row.
    """

    added_edges: np.ndarray = field(default_factory=lambda: np.zeros((0, 2), dtype=np.int64))
    removed_edges: np.ndarray = field(default_factory=lambda: np.zeros((0, 2), dtype=np.int64))
    feature_updates: Mapping[int, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("added_edges", "removed_edges"):
            arr = np.asarray(getattr(self, name), dtype=np.int64).reshape(-1, 2)
            object.__setattr__(self, name, arr)

    @property
    def num_added(self) -> int:
        return int(self.added_edges.shape[0])

    @property
    def num_removed(self) -> int:
        return int(self.removed_edges.shape[0])

    @property
    def num_feature_updates(self) -> int:
        return len(self.feature_updates)

    @property
    def is_empty(self) -> bool:
        return self.num_added == 0 and self.num_removed == 0 and self.num_feature_updates == 0

    def added_keys(self, num_cols: int) -> np.ndarray:
        """Flat ``row * n_cols + col`` keys of the added edges."""
        return self.added_edges[:, 0] * num_cols + self.added_edges[:, 1]

    def removed_keys(self, num_cols: int) -> np.ndarray:
        """Flat ``row * n_cols + col`` keys of the removed edges."""
        return self.removed_edges[:, 0] * num_cols + self.removed_edges[:, 1]

    @classmethod
    def empty(cls) -> "GraphDelta":
        return cls()


@dataclass(frozen=True, eq=False)
class ServingEvent:
    """One timestamped event of a serving trace."""

    time: float
    kind: str  # "delta" | "request"
    delta: Optional[GraphDelta] = None
    node_ids: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.kind not in ("delta", "request"):
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.kind == "delta" and self.delta is None:
            raise ValueError("delta events need a GraphDelta")
        if self.kind == "request" and self.node_ids is None:
            raise ValueError("request events need node ids")


def _keys_to_edges(keys: np.ndarray, num_cols: int) -> np.ndarray:
    rows, cols = np.divmod(np.asarray(keys, dtype=np.int64), num_cols)
    return np.stack([rows, cols], axis=1) if len(keys) else np.zeros((0, 2), dtype=np.int64)


def random_delta(
    current_keys: np.ndarray,
    num_nodes: int,
    rng: np.random.Generator,
    *,
    edge_change_fraction: float = 0.04,
    feature_update_fraction: float = 0.02,
    feature_dim: int = 0,
) -> Tuple[GraphDelta, np.ndarray]:
    """Sample one delta against the current edge-key set.

    Returns the delta and the resulting key set, so trace synthesis can
    evolve the graph without owning a snapshot store.  Half the changed edge
    mass is removals and half fresh insertions, matching the generators'
    :func:`~repro.graph.generators.evolve_edge_keys` convention, so the
    adjacent-version overlap stays near ``1 - edge_change_fraction``.
    """
    check_in_range("edge_change_fraction", edge_change_fraction, 0.0, 1.0)
    check_in_range("feature_update_fraction", feature_update_fraction, 0.0, 1.0)
    current_keys = np.asarray(current_keys, dtype=np.int64)
    num_change = int(round(len(current_keys) * edge_change_fraction / 2.0))

    removed = (
        rng.permutation(current_keys)[:num_change] if num_change else np.zeros(0, dtype=np.int64)
    )
    survivors = np.setdiff1d(current_keys, removed, assume_unique=False)
    added: np.ndarray = np.zeros(0, dtype=np.int64)
    while len(added) < num_change:
        need = int((num_change - len(added)) * 1.5) + 4
        rows = rng.integers(0, num_nodes, size=need, dtype=np.int64)
        cols = rng.integers(0, num_nodes, size=need, dtype=np.int64)
        fresh = rows[rows != cols] * num_nodes + cols[rows != cols]
        # Exclude *all* current keys (not just survivors): an edge that is
        # both removed and re-added in one delta would be resolved
        # differently by the store (idempotent add against the pre-delta
        # state) than by this mirror, silently diverging the trace.
        fresh = np.setdiff1d(fresh, current_keys, assume_unique=False)
        added = np.union1d(added, fresh)
    added = rng.permutation(added)[:num_change]

    updates: Dict[int, np.ndarray] = {}
    num_updates = int(round(num_nodes * feature_update_fraction))
    if num_updates and feature_dim:
        for node in rng.choice(num_nodes, size=num_updates, replace=False):
            updates[int(node)] = rng.standard_normal(feature_dim).astype(np.float32)

    delta = GraphDelta(
        added_edges=_keys_to_edges(added, num_nodes),
        removed_edges=_keys_to_edges(removed, num_nodes),
        feature_updates=updates,
    )
    new_keys = np.union1d(survivors, added)
    return delta, new_keys


def synthesize_serving_trace(
    initial: GraphSnapshot,
    num_events: int,
    *,
    request_fraction: float = 0.7,
    nodes_per_request: int = 8,
    mean_interarrival_ms: float = 1.0,
    edge_change_fraction: float = 0.04,
    feature_update_fraction: float = 0.02,
    seed: SeedLike = 0,
) -> List[ServingEvent]:
    """Build a reproducible mixed delta/request trace starting from a snapshot.

    Events carry monotonically increasing arrival times with exponential
    spacing around ``mean_interarrival_ms``.  Deltas evolve a key-set mirror
    of the head topology, so replaying the trace against any store seeded
    with ``initial`` applies exactly the same updates.
    """
    check_positive("num_events", num_events)
    check_in_range("request_fraction", request_fraction, 0.0, 1.0)
    check_positive("nodes_per_request", nodes_per_request)
    rng = as_rng(seed)
    num_nodes = initial.num_nodes
    keys = initial.adjacency.edge_keys()

    events: List[ServingEvent] = []
    clock = 0.0
    for _ in range(num_events):
        clock += float(rng.exponential(mean_interarrival_ms * 1e-3))
        if rng.random() < request_fraction:
            node_ids = rng.choice(
                num_nodes, size=min(nodes_per_request, num_nodes), replace=False
            ).astype(np.int64)
            events.append(ServingEvent(time=clock, kind="request", node_ids=node_ids))
        else:
            delta, keys = random_delta(
                keys,
                num_nodes,
                rng,
                edge_change_fraction=edge_change_fraction,
                feature_update_fraction=feature_update_fraction,
                feature_dim=initial.feature_dim,
            )
            events.append(ServingEvent(time=clock, kind="delta", delta=delta))
    return events
