"""Forward-only inference over the serving window.

The session owns a trained DGNN model and turns the store's window into
predictions.  It is the serving-side twin of the trainer's frame execution:
partitions of the window run through the
:class:`~repro.core.parallel_gnn.ParallelAggregationProvider` against the
incrementally maintained overlap decomposition, first-layer aggregations are
served from the :class:`~repro.core.reuse.ReuseManager`, and kernel costs are
collected so the scheduler can account them on the simulated device.

The paper's reuse insight (Fig. 7 ❸: a first-layer aggregation depends only
on topology + raw features) becomes the serving fast path: when a delta
arrives, only the delta-touched rows of the head version's aggregation are
recomputed from the parent version's cached result — the other ~90+ % of
rows carry over untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.data_prep import DataPreparer, PartitionData
from repro.core.parallel_gnn import ParallelAggregationProvider
from repro.core.reuse import ReuseManager
from repro.gpu.device import SimulatedGPU
from repro.gpu.kernel_cost import KernelCost
from repro.gpu.profiler import KernelCostCollector
from repro.graph.sliced_csr import DEFAULT_SLICE_CAPACITY
from repro.nn.base_model import DGNNModel
from repro.nn.context import ExecutionContext
from repro.serving.store import DeltaReport, IncrementalSnapshotStore
from repro.tensor import observe_ops
from repro.tensor.tensor import Tensor


class InferenceSession:
    """Runs a trained model forward over the store's serving window."""

    def __init__(
        self,
        model: DGNNModel,
        store: IncrementalSnapshotStore,
        device: SimulatedGPU,
        *,
        reuse: Optional[ReuseManager] = None,
        scale: float = 1.0,
        slice_capacity: int = DEFAULT_SLICE_CAPACITY,
        use_sliced_csr: bool = True,
        enable_weight_reuse: bool = True,
        preparer: Optional[DataPreparer] = None,
    ) -> None:
        self.model = model
        self.store = store
        self.device = device
        self.reuse = reuse if reuse is not None else ReuseManager(device)
        self.scale = scale
        self.slice_capacity = slice_capacity
        self.use_sliced_csr = use_sliced_csr
        self.enable_weight_reuse = enable_weight_reuse
        self.context = ExecutionContext(spec=device.spec, scale=scale)
        # The scheduler passes its datapipe's preparer so both share one cache.
        self.preparer = preparer or DataPreparer(
            slice_capacity, device.host, use_sliced_csr=use_sliced_csr
        )
        #: providers/partitions keyed by (window versions, s_per); cleared on every delta
        self._provider_cache: Dict[Tuple[Tuple[int, ...], int], List[ParallelAggregationProvider]] = {}
        self._partition_cache: Dict[Tuple[Tuple[int, ...], int], List[PartitionData]] = {}
        self.rows_patched = 0
        self.full_recomputes = 0

    # ------------------------------------------------------------------ deltas
    def refresh(self, report: DeltaReport) -> float:
        """Maintain the reuse cache after a delta; returns analytic host seconds.

        Evicted versions are invalidated outright.  The new head version's
        first-layer aggregation is derived from the parent version's cached
        result by recomputing only the delta-touched rows; if the parent was
        never cached (cold start, reuse disabled) the head stays uncached and
        the next forward pass computes it in full.
        """
        self._provider_cache.clear()
        self._partition_cache.clear()
        if report.evicted_version is not None:
            self.reuse.invalidate([report.evicted_version])
        if not self.reuse.enabled:
            return 0.0
        parent = self.reuse.peek(report.parent_version)
        if parent is None:
            self.full_recomputes += 1
            return 0.0
        head = self.store.snapshot(report.version)
        patched = np.array(parent, copy=True)
        touched = report.touched_rows
        if len(touched):
            sub = head.adjacency.to_scipy()[touched] @ head.features
            degree = head.adjacency.row_nnz()[touched].astype(np.float32)
            patched[touched] = (head.features[touched] + sub) / (degree + 1.0)[:, None]
            self.rows_patched += len(touched)
        self.reuse.store(report.version, patched)
        # Patching touched rows is a small gather/SpMM on the host copy.
        flops = 2.0 * max(1, len(touched)) * self.store.feature_dim
        return flops * 1e-9  # ~1 GFLOP/s conservative host estimate

    # ------------------------------------------------------------------ providers
    def _partition_positions(self, s_per: int) -> List[List[int]]:
        window = self.store.window_size
        s_per = max(1, min(s_per, window))
        return [list(range(start, min(start + s_per, window))) for start in range(0, window, s_per)]

    def partitions_for(self, s_per: int) -> List[PartitionData]:
        """Prepared partition data for the current window at ``s_per``.

        Built from the store's incrementally refined decompositions and
        cached until the next delta changes the window (shared by provider
        construction and transfer-size accounting).
        """
        key = (tuple(self.store.window_versions()), s_per)
        cached = self._partition_cache.get(key)
        if cached is not None:
            return cached
        snapshots = self.store.window_snapshots()
        partitions = [
            self.preparer.prepare_from_decomposition(
                [snapshots[p] for p in positions],
                self.store.partition_decomposition(positions),
            )
            for positions in self._partition_positions(s_per)
        ]
        self._partition_cache[key] = partitions
        return partitions

    def providers_for(self, s_per: int) -> List[ParallelAggregationProvider]:
        """Partition providers for the current window at parallelism ``s_per``.

        Providers are built from the cached partition data and themselves
        cached until the next delta changes the window.
        """
        key = (tuple(self.store.window_versions()), s_per)
        cached = self._provider_cache.get(key)
        if cached is not None:
            return cached
        providers: List[ParallelAggregationProvider] = []
        for partition in self.partitions_for(s_per):
            providers.append(
                ParallelAggregationProvider(
                    partition,
                    spec=self.device.spec,
                    scale=self.scale,
                    cache=self.reuse if self.reuse.enabled else None,
                    reusable_layers=(
                        self.model.reusable_aggregation_layers if self.reuse.enabled else ()
                    ),
                    slice_capacity=self.slice_capacity,
                    use_sliced_csr=self.use_sliced_csr,
                )
            )
        self._provider_cache[key] = providers
        return providers

    # ------------------------------------------------------------------ prediction
    def predict(
        self, node_ids: np.ndarray, *, s_per: int = 1
    ) -> Tuple[np.ndarray, List[KernelCost]]:
        """Predict for the given nodes at the head version.

        Runs the recurrent model forward-only across the whole window (the
        hidden state needs the history), reads the head-snapshot prediction
        rows for ``node_ids`` and returns them together with the kernel costs
        the scheduler should account on the device.
        """
        snapshots = self.store.window_snapshots()
        providers = self.providers_for(s_per)
        positions = self._partition_positions(s_per)
        feature_groups: List[List[Tensor]] = [
            [Tensor(snapshots[p].features) for p in group] for group in positions
        ]
        collector = KernelCostCollector(
            self.device.spec, num_nodes=self.store.num_nodes, scale=self.scale
        )
        ctx = self.context
        if self.enable_weight_reuse and not self.model.evolves_weights:
            ctx = ctx.with_reuse_group(max(len(g) for g in positions))
        with observe_ops(collector):
            predictions = self.model.predict_frame(
                providers, feature_groups, self.store.num_nodes, ctx
            )
        head_prediction = predictions[-1].data
        node_ids = np.asarray(node_ids, dtype=np.int64)
        return head_prediction[node_ids], collector.drain()

    # ------------------------------------------------------------------ transfer planning
    def partition_transfer_bytes(self, s_per: int) -> float:
        """Host→device bytes a batch needs given current cache/residency state.

        Mirrors the trainer's partition accounting: cached snapshots ship the
        (smaller) aggregation result unless GPU-resident; uncached ones ship
        raw features plus their share of the overlap-decomposed adjacency.
        """
        nbytes = 0.0
        for partition in self.partitions_for(s_per):
            topology_needed = False
            for snapshot in partition.snapshots:
                if self.reuse.has_cached(snapshot.timestep):
                    if not self.reuse.is_gpu_resident(snapshot.timestep):
                        nbytes += snapshot.num_nodes * snapshot.feature_dim * 4
                    if self.model.needs_topology_with_reuse:
                        topology_needed = True
                else:
                    nbytes += snapshot.feature_bytes()
                    topology_needed = True
            if topology_needed:
                nbytes += partition.adjacency_bytes
        return nbytes * self.scale

    def stats(self) -> Dict[str, float]:
        data = dict(self.reuse.stats())
        data["rows_patched"] = float(self.rows_patched)
        data["full_recomputes"] = float(self.full_recomputes)
        return data
