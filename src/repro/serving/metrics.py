"""Serving-side metrics: request latency, throughput and cache efficiency.

Records are kept per request so tail latency (p99) is a first-class
quantity, the way online inference systems are actually judged.  The
aggregate :class:`ServingReport` is convertible into the repo-wide
:class:`~repro.baselines.results.TrainingResult` record, so serving runs
compose with the existing comparison helpers (``speedup_over`` etc.) and
the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Mapping

import numpy as np

from repro.baselines.results import TrainingResult
from repro.telemetry.persistence import restore_floats, sanitize_floats


@dataclass(frozen=True)
class RequestRecord:
    """Completion record of one request."""

    request_id: int
    batch_id: int
    arrival_time: float
    completion_time: float
    num_nodes: int

    @property
    def latency(self) -> float:
        return self.completion_time - self.arrival_time


@dataclass(frozen=True)
class BatchRecord:
    """Completion record of one micro-batch."""

    batch_id: int
    size: int
    s_per: int
    formed_time: float
    completion_time: float
    transfer_bytes: float
    cache_hits: int
    cache_misses: int


class ServingMetrics:
    """Accumulates per-request and per-batch records during a serving run."""

    def __init__(self) -> None:
        self.requests: List[RequestRecord] = []
        self.batches: List[BatchRecord] = []
        self.deltas_ingested = 0
        #: rows *invalidated* by deltas (patched only when reuse is enabled —
        #: the session reports actual patches separately as ``rows_patched``)
        self.rows_touched = 0

    # -- recording -----------------------------------------------------------
    def record_request(self, record: RequestRecord) -> None:
        self.requests.append(record)

    def record_batch(self, record: BatchRecord) -> None:
        self.batches.append(record)

    def record_delta(self, touched_rows: int) -> None:
        self.deltas_ingested += 1
        self.rows_touched += touched_rows

    # -- aggregates ----------------------------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def latencies(self) -> np.ndarray:
        return np.array([r.latency for r in self.requests], dtype=np.float64)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile in seconds; NaN when no request has completed.

        Returning 0.0 for an empty window would silently read as "perfect
        latency" in benchmark comparisons; NaN makes a windowless aggregate
        impossible to mistake for a measurement (any comparison with it is
        False and it survives into formatted output as ``nan``).
        """
        lat = self.latencies()
        return float(np.percentile(lat, q)) if len(lat) else float("nan")

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def mean_latency(self) -> float:
        """Mean latency in seconds; NaN when no request has completed (see
        :meth:`latency_percentile`)."""
        lat = self.latencies()
        return float(lat.mean()) if len(lat) else float("nan")

    @property
    def cache_hit_rate(self) -> float:
        hits = sum(b.cache_hits for b in self.batches)
        total = hits + sum(b.cache_misses for b in self.batches)
        return hits / total if total else 0.0

    def throughput_rps(self) -> float:
        """Completed requests per simulated second over the active span."""
        if not self.requests:
            return 0.0
        start = min(r.arrival_time for r in self.requests)
        end = max(r.completion_time for r in self.requests)
        span = end - start
        return len(self.requests) / span if span > 0 else float("inf")

    def mean_batch_size(self) -> float:
        return float(np.mean([b.size for b in self.batches])) if self.batches else 0.0

    def rows_per_delta(self) -> float:
        """Mean invalidated rows per ingested delta; NaN when no delta has
        arrived (an empty ingestion window must not read as a zero-cost one —
        same convention as :meth:`latency_percentile`)."""
        if not self.deltas_ingested:
            return float("nan")
        return self.rows_touched / self.deltas_ingested

    def summary(self) -> Dict[str, float]:
        return {
            "requests": float(self.num_requests),
            "batches": float(len(self.batches)),
            "deltas": float(self.deltas_ingested),
            "rows_touched": float(self.rows_touched),
            "rows_per_delta": self.rows_per_delta(),
            "mean_batch_size": self.mean_batch_size(),
            "p50_latency_ms": self.p50_latency * 1e3,
            "p99_latency_ms": self.p99_latency * 1e3,
            "mean_latency_ms": self.mean_latency * 1e3,
            "throughput_rps": self.throughput_rps(),
            "cache_hit_rate": self.cache_hit_rate,
        }

    # -- persistence ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data view; non-finite floats become marker strings."""
        return {
            "requests": [sanitize_floats(asdict(r)) for r in self.requests],
            "batches": [sanitize_floats(asdict(b)) for b in self.batches],
            "deltas_ingested": self.deltas_ingested,
            "rows_touched": self.rows_touched,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingMetrics":
        metrics = cls()
        for item in data.get("requests", ()):
            metrics.record_request(RequestRecord(**restore_floats(dict(item))))
        for item in data.get("batches", ()):
            metrics.record_batch(BatchRecord(**restore_floats(dict(item))))
        metrics.deltas_ingested = int(data.get("deltas_ingested", 0))
        metrics.rows_touched = int(data.get("rows_touched", 0))
        return metrics


@dataclass
class ServingReport:
    """End-to-end outcome of a serving run on the simulated device."""

    engine: str
    model: str
    dataset: str
    simulated_seconds: float
    wall_seconds: float
    metrics: ServingMetrics
    breakdown: Dict[str, float] = field(default_factory=dict)
    reuse_stats: Dict[str, float] = field(default_factory=dict)
    gpu_utilization: float = 0.0
    peak_memory_bytes: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def p50_latency(self) -> float:
        return self.metrics.p50_latency

    @property
    def p99_latency(self) -> float:
        return self.metrics.p99_latency

    @property
    def throughput_rps(self) -> float:
        return self.metrics.throughput_rps()

    @property
    def cache_hit_rate(self) -> float:
        return self.metrics.cache_hit_rate

    def speedup_over(self, other: "ServingReport") -> float:
        """Mean-latency advantage over another run of the same trace.

        NaN when either run completed zero requests — an empty window must
        not read as infinitely fast (see :meth:`ServingMetrics.
        latency_percentile`).
        """
        mine = self.metrics.mean_latency
        theirs = other.metrics.mean_latency
        if math.isnan(mine) or math.isnan(theirs):
            return float("nan")
        return theirs / mine if mine > 0 else float("inf")

    def to_training_result(self, *, epochs: int = 1) -> TrainingResult:
        """Project into the shared result record for cross-harness comparison."""
        extras = dict(self.extras)
        extras.update(self.metrics.summary())
        extras.update({f"reuse_{k}": v for k, v in self.reuse_stats.items()})
        return TrainingResult(
            method=self.engine,
            model=self.model,
            dataset=self.dataset,
            epochs=epochs,
            simulated_seconds=self.simulated_seconds,
            wall_seconds=self.wall_seconds,
            final_loss=float("nan"),
            breakdown=dict(self.breakdown),
            gpu_utilization=self.gpu_utilization,
            peak_memory_bytes=self.peak_memory_bytes,
            extras=extras,
        )

    # -- persistence ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data view; non-finite floats become marker strings."""
        out = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "metrics"
        }
        out = sanitize_floats(out)
        out["metrics"] = self.metrics.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingReport":
        payload = dict(data)
        metrics = ServingMetrics.from_dict(payload.pop("metrics", {}))
        return cls(metrics=metrics, **restore_floats(payload))

    def format(self) -> str:
        """Human-readable one-run summary (examples and benchmark logs)."""
        s = self.metrics.summary()
        lines = [
            f"engine={self.engine} model={self.model} dataset={self.dataset}",
            (
                f"  requests={s['requests']:.0f} batches={s['batches']:.0f} "
                f"deltas={s['deltas']:.0f} mean_batch={s['mean_batch_size']:.1f}"
            ),
            (
                f"  delta ingestion: rows_touched={s['rows_touched']:.0f} "
                f"rows/delta={s['rows_per_delta']:.1f}"
            ),
            (
                f"  latency p50={s['p50_latency_ms']:.3f} ms  "
                f"p99={s['p99_latency_ms']:.3f} ms  mean={s['mean_latency_ms']:.3f} ms"
            ),
            (
                f"  throughput={s['throughput_rps']:.0f} req/s  "
                f"cache_hit_rate={s['cache_hit_rate']:.1%}  "
                f"gpu_util={self.gpu_utilization:.1%}"
            ),
        ]
        return "\n".join(lines)
