"""Streaming DGNN inference serving (the online counterpart of the trainer).

The serving engine turns the repo's training-side mechanisms into a
low-latency online system:

- :mod:`repro.serving.deltas` — graph deltas and reproducible serving traces;
- :mod:`repro.serving.store` — :class:`IncrementalSnapshotStore`, which
  applies deltas to the head snapshot and maintains the window's
  overlap/exclusive decomposition incrementally;
- :mod:`repro.serving.session` — :class:`InferenceSession`, forward-only
  model execution with reuse-cache sourcing and delta-row invalidation;
- :mod:`repro.serving.batcher` — request coalescing into micro-batches;
- :mod:`repro.serving.scheduler` — :class:`ServingScheduler`, the pipelined
  batch executor with a tuner-backed partitioning policy;
- :mod:`repro.serving.metrics` — p50/p99 latency, throughput and cache-hit
  reporting compatible with :mod:`repro.baselines.results`.

See the README's "Streaming inference serving" section for how this maps
onto the paper's Fig. 7 reuse path.
"""

from repro.serving.batcher import InferenceRequest, MicroBatch, MicroBatcher
from repro.serving.deltas import (
    GraphDelta,
    ServingEvent,
    random_delta,
    synthesize_serving_trace,
)
from repro.serving.metrics import (
    BatchRecord,
    RequestRecord,
    ServingMetrics,
    ServingReport,
)
from repro.serving.scheduler import (
    BatchResult,
    ServingConfig,
    ServingPolicy,
    ServingScheduler,
    build_serving_engine,
)
from repro.serving.session import InferenceSession
from repro.serving.store import DeltaReport, IncrementalSnapshotStore

__all__ = [
    "BatchRecord",
    "BatchResult",
    "DeltaReport",
    "GraphDelta",
    "IncrementalSnapshotStore",
    "InferenceRequest",
    "InferenceSession",
    "MicroBatch",
    "MicroBatcher",
    "RequestRecord",
    "ServingConfig",
    "ServingEvent",
    "ServingMetrics",
    "ServingPolicy",
    "ServingReport",
    "ServingScheduler",
    "build_serving_engine",
    "random_delta",
    "synthesize_serving_trace",
]
