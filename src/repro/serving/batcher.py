"""Request coalescing for the serving engine.

One forward pass over the serving window produces predictions for *every*
node at the head version, so concurrent requests are nearly free to serve
together — the batcher's job is to trade a small queueing delay for that
amortization, exactly like micro-batching in production inference servers.
Requests are coalesced in arrival order until either ``max_requests`` are
pending or the oldest request has waited ``max_delay_ms``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True, eq=False)
class InferenceRequest:
    """One node-level prediction request."""

    request_id: int
    node_ids: np.ndarray
    arrival_time: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "node_ids", np.unique(np.asarray(self.node_ids, dtype=np.int64))
        )
        if len(self.node_ids) == 0:
            raise ValueError("a request needs at least one node id")


@dataclass(eq=False)
class MicroBatch:
    """A group of requests served by one forward pass."""

    batch_id: int
    requests: List[InferenceRequest]
    formed_time: float

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def node_ids(self) -> np.ndarray:
        """Union of the member requests' node ids (deduplicated)."""
        return np.unique(np.concatenate([r.node_ids for r in self.requests]))

    @property
    def oldest_arrival(self) -> float:
        return min(r.arrival_time for r in self.requests)


class MicroBatcher:
    """Coalesces requests into micro-batches under a latency budget."""

    def __init__(self, *, max_requests: int = 16, max_delay_ms: float = 2.0) -> None:
        check_positive("max_requests", max_requests)
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        self.max_requests = max_requests
        self.max_delay_s = max_delay_ms * 1e-3
        self._pending: Deque[InferenceRequest] = deque()
        self._next_batch_id = 0
        self.batches_formed = 0
        self.requests_seen = 0

    @property
    def pending(self) -> int:
        return len(self._pending)

    def submit(self, request: InferenceRequest) -> None:
        self._pending.append(request)
        self.requests_seen += 1

    def ready(self, now: float) -> bool:
        """Whether a batch should be cut at simulated time ``now``."""
        if not self._pending:
            return False
        if len(self._pending) >= self.max_requests:
            return True
        return now - self._pending[0].arrival_time >= self.max_delay_s

    def drain(self, now: float, *, force: bool = False) -> List[MicroBatch]:
        """Cut every batch that is due at ``now`` (all pending when forced)."""
        batches: List[MicroBatch] = []
        while self._pending and (force or self.ready(now)):
            members: List[InferenceRequest] = []
            while self._pending and len(members) < self.max_requests:
                members.append(self._pending.popleft())
            formed = max(now, max(r.arrival_time for r in members))
            batches.append(
                MicroBatch(batch_id=self._next_batch_id, requests=members, formed_time=formed)
            )
            self._next_batch_id += 1
            self.batches_formed += 1
        return batches
