"""The streaming serving engine: policy + pipelined batch execution.

:class:`ServingScheduler` is the serving counterpart of the PiPAD trainer's
frame loop.  Micro-batches drain from the :class:`~repro.serving.batcher.
MicroBatcher`, a tuner-backed :class:`ServingPolicy` picks the window
partitioning (``S_per``) per batch, and each batch runs through the same
simulated-GPU pipeline the trainer uses: host preparation on the CPU
stream, cache-miss transfers on the copy stream with pinned memory, the
parallel-GNN kernels on the compute stream, and the prediction read-back on
the D2H engine — so transfers for batch ``k+1`` hide behind batch ``k``'s
compute exactly as in Fig. 8.

Graph deltas interleave with batches: :meth:`ServingScheduler.ingest`
applies them to the :class:`~repro.serving.store.IncrementalSnapshotStore`
and lets the :class:`~repro.serving.session.InferenceSession` patch the
reuse cache incrementally, so a delta costs work proportional to its
touched rows rather than to the graph.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.datapipe import DataPipe, DataPipeConfig, PipeItem, Prefetcher
from repro.core.reuse import ReuseManager
from repro.core.tuner import DynamicTuner, FrameProfile, TuningDecision
from repro.gpu.device import OutOfMemoryError, SimulatedGPU
from repro.gpu.memory_model import feature_cache_budget_bytes
from repro.gpu.spec import GPUSpec, HostSpec, PCIeSpec
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.sliced_csr import DEFAULT_SLICE_CAPACITY
from repro.memory import (
    FeatureCache,
    MemoryConfig,
    blocks_covering,
    blocks_of_rows,
)
from repro.nn.base_model import DGNNModel
from repro.serving.batcher import InferenceRequest, MicroBatch, MicroBatcher
from repro.serving.deltas import GraphDelta, ServingEvent
from repro.serving.metrics import BatchRecord, RequestRecord, ServingMetrics, ServingReport
from repro.serving.session import InferenceSession
from repro.serving.store import DeltaReport, IncrementalSnapshotStore
from repro.telemetry.hooks import NULL_CALLBACK, TelemetryCallback
from repro.utils.validation import check_in_range, check_positive

#: per-snapshot activation-memory amplification (matches the trainer's bound;
#: the tuner's forward-only entry point halves it for serving)
_ACTIVATION_FACTOR = 4.0


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving engine.

    Mirrors :class:`~repro.core.config.PiPADConfig` where the mechanisms are
    shared, plus the micro-batching and windowing knobs that only exist when
    serving online traffic.
    """

    #: number of recent snapshot versions the recurrent models consume
    window: int = 8
    #: micro-batch cut thresholds
    max_batch_requests: int = 16
    max_delay_ms: float = 2.0
    #: candidate parallelism levels for the tuner (capped at ``window``)
    s_per_candidates: Tuple[int, ...] = (2, 4, 8)
    #: force a fixed parallelism level (bypasses the tuner) when set
    fixed_s_per: Optional[int] = None
    #: serve first-layer aggregations from the reuse cache and patch them
    #: incrementally on deltas; disabling recomputes every batch in full
    enable_reuse: bool = True
    #: overlap transfer/compute/host work on separate streams
    enable_pipeline: bool = True
    use_cuda_graph: bool = True
    use_sliced_csr: bool = True
    enable_weight_reuse: bool = True
    slice_capacity: int = DEFAULT_SLICE_CAPACITY
    gpu_reuse_buffer_fraction: float = 0.25
    memory_safety_fraction: float = 0.9

    def __post_init__(self) -> None:
        check_positive("window", self.window)
        check_positive("max_batch_requests", self.max_batch_requests)
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if not self.s_per_candidates:
            raise ValueError("s_per_candidates must not be empty")
        for s in self.s_per_candidates:
            check_positive("s_per candidate", s)
        if self.fixed_s_per is not None:
            check_positive("fixed_s_per", self.fixed_s_per)
        check_positive("slice_capacity", self.slice_capacity)
        check_in_range("gpu_reuse_buffer_fraction", self.gpu_reuse_buffer_fraction, 0.0, 1.0)
        check_in_range("memory_safety_fraction", self.memory_safety_fraction, 0.1, 1.0)


@dataclass(frozen=True)
class BatchResult:
    """Predictions and accounting for one executed micro-batch."""

    batch_id: int
    decision: TuningDecision
    completion_time: float
    #: per-request prediction rows (request node order)
    predictions: Dict[int, np.ndarray]


class ServingPolicy:
    """Chooses the window partitioning per micro-batch via the dynamic tuner.

    The policy keeps an online estimate of per-snapshot compute time (updated
    from the kernel costs of executed batches, the serving analogue of the
    preparing-epoch statistics) and hands the tuner a forward-only frame
    profile; the tuner's offline speedup table does the rest.
    """

    def __init__(
        self,
        tuner: DynamicTuner,
        config: ServingConfig,
        *,
        pcie_bandwidth_gbs: float = 12.0,
        scale: float = 1.0,
    ) -> None:
        self.tuner = tuner
        self.config = config
        self.pcie_bandwidth_gbs = pcie_bandwidth_gbs
        self.scale = scale
        self._compute_seconds_per_snapshot: Optional[float] = None
        self.decisions: List[TuningDecision] = []

    def observe_compute(self, kernel_seconds: float, num_snapshots: int) -> None:
        """Fold one executed batch's kernel seconds into the online estimate."""
        if num_snapshots <= 0:
            return
        sample = kernel_seconds / num_snapshots
        if self._compute_seconds_per_snapshot is None:
            self._compute_seconds_per_snapshot = sample
        else:  # EMA so the estimate tracks drift in graph density
            self._compute_seconds_per_snapshot = (
                0.8 * self._compute_seconds_per_snapshot + 0.2 * sample
            )

    def _profile(
        self, store: IncrementalSnapshotStore, session: InferenceSession, batch_index: int
    ) -> FrameProfile:
        head = store.head
        hidden = session.model.hidden_features
        n = store.num_nodes
        overlap_rates: Dict[int, float] = {}
        for candidate in self.tuner.candidates:
            groups = session._partition_positions(candidate)  # noqa: SLF001 - shared layout
            overlap_rates[candidate] = float(
                np.mean([store.partition_decomposition(g).overlap_rate for g in groups])
            )
        features = float(head.feature_bytes())
        adjacency = float(head.adjacency.nbytes)
        activations = n * (store.feature_dim + hidden) * 4.0 * _ACTIVATION_FACTOR
        compute = self._compute_seconds_per_snapshot
        if compute is None:
            compute = 5e-4 * self.scale / max(1.0, self.scale)
        return FrameProfile(
            frame_index=batch_index,
            overlap_rate_per_candidate=overlap_rates,
            per_snapshot_compute_seconds=compute,
            per_snapshot_transfer_bytes=(features + adjacency) * self.scale,
            per_snapshot_footprint_bytes=(
                (features + adjacency + activations * store.window_size / 2.0) * self.scale
            ),
            frame_activation_bytes=(
                store.window_size * n * hidden * 4.0 * _ACTIVATION_FACTOR * self.scale
            ),
        )

    def choose(
        self, store: IncrementalSnapshotStore, session: InferenceSession, batch: MicroBatch
    ) -> TuningDecision:
        if self.config.fixed_s_per is not None:
            decision = TuningDecision(
                frame_index=batch.batch_id,
                s_per=self.config.fixed_s_per,
                estimated_speedup=1.0,
                overlap_rate=store.overlap_rate(),
                reason="fixed by configuration",
            )
        else:
            profile = self._profile(store, session, batch.batch_id)
            decision = self.tuner.decide_forward(
                profile, pcie_bandwidth_gbs=self.pcie_bandwidth_gbs
            )
        self.decisions.append(decision)
        return decision


class ServingScheduler:
    """Drives deltas and request micro-batches through the simulated pipeline."""

    def __init__(
        self,
        model: DGNNModel,
        store: IncrementalSnapshotStore,
        config: Optional[ServingConfig] = None,
        *,
        gpu: Optional[GPUSpec] = None,
        pcie: Optional[PCIeSpec] = None,
        host: Optional[HostSpec] = None,
        scale: float = 1.0,
        dataset: str = "serving",
        data: Optional[DataPipeConfig] = None,
        memory: Optional[MemoryConfig] = None,
    ) -> None:
        self.config = config or ServingConfig()
        self.store = store
        self.model = model
        self.dataset = dataset
        self.scale = scale
        self.memory = memory or MemoryConfig()
        self.device = SimulatedGPU(gpu, pcie, host, use_cuda_graph=self.config.use_cuda_graph)
        data = data or DataPipeConfig()
        if not self.config.enable_pipeline:
            # Serving's ablation switch forces fully serialized, unpinned prep.
            data = dataclasses.replace(data, prefetch_depth=0, pin_memory=False)
        self.data = data
        self.datapipe = DataPipe(
            data,
            self.device.host,
            slice_capacity=self.config.slice_capacity,
            use_sliced_csr=self.config.use_sliced_csr,
        )
        self.reuse = ReuseManager(
            self.device,
            enabled=self.config.enable_reuse,
            gpu_buffer_fraction=self.config.gpu_reuse_buffer_fraction,
        )
        self.session = InferenceSession(
            model,
            store,
            self.device,
            reuse=self.reuse,
            scale=scale,
            slice_capacity=self.config.slice_capacity,
            use_sliced_csr=self.config.use_sliced_csr,
            enable_weight_reuse=self.config.enable_weight_reuse,
            preparer=self.datapipe.preparer,
        )
        self.prefetcher = Prefetcher(
            self.datapipe, self.device, domain="serve", hooks=lambda: self.hooks
        )
        candidates = tuple(
            c for c in self.config.s_per_candidates if c <= store.window_capacity
        ) or (store.window_capacity,)
        tuner = DynamicTuner(
            self.device.spec,
            candidates,
            memory_safety_fraction=self.config.memory_safety_fraction,
            feature_dim=store.feature_dim,
        )
        self.policy = ServingPolicy(
            tuner,
            self.config,
            pcie_bandwidth_gbs=self.device.pcie.bandwidth_gbs,
            scale=scale,
        )
        self.batcher = MicroBatcher(
            max_requests=self.config.max_batch_requests,
            max_delay_ms=self.config.max_delay_ms,
        )
        #: node range this scheduler's feature cache covers (fleet replicas
        #: re-scope it to their shard via :meth:`scope_feature_cache`)
        self._cache_lo = 0
        self._cache_hi = store.num_nodes
        self._check_feature_capacity()
        self.feature_cache: Optional[FeatureCache] = None
        if self.memory.feature_cache:
            self.feature_cache = self._build_feature_cache()
        # In-flight pin-stage staging buffers count against the cache's
        # pinned tier (pinned_budget_mb covers residency and staging alike).
        self.prefetcher.cache = self.feature_cache
        self.metrics = ServingMetrics()
        #: telemetry sink; the engine swaps in a live CallbackList
        self.hooks: TelemetryCallback = NULL_CALLBACK
        #: optional per-batch op injector (the fleet engine hangs its halo
        #: gather here); called with the micro-batch, returns timeline ops the
        #: batch's transfers must additionally wait on
        self.pre_batch_ops: Optional[Callable[[MicroBatch], List[object]]] = None
        self._next_request_id = 0
        self._last_delta_op = None
        #: wall clock starts at first traffic (submit/ingest/run_trace), not at
        #: construction — replica-build cost is not serving time, and the
        #: sharded/fleet engines follow the same convention
        self._wall_start: Optional[float] = None

    def _touch_wall_clock(self) -> None:
        if self._wall_start is None:
            self._wall_start = time.perf_counter()

    # ------------------------------------------------------------------ memory tiers
    def _window_feature_bytes(self) -> float:
        """Extrapolated feature bytes of a fully populated serving window."""
        return (
            float(self.store.head.feature_bytes())
            * self.store.window_capacity
            * self.scale
        )

    def _check_feature_capacity(self) -> None:
        """Refuse serving configs whose window features cannot fit uncached."""
        if self.memory.feature_cache:
            return
        nbytes = self._window_feature_bytes()
        if nbytes > self.device.spec.memory_bytes:
            raise OutOfMemoryError(
                f"serving window feature set ({nbytes / 1024**3:.1f} GiB) exceeds "
                f"{self.device.spec.name} HBM ({self.device.spec.memory_gb:.0f} GiB); "
                "enable the multi-tier feature cache (memory.feature_cache=true) "
                "to stage features through the pinned-host and spill tiers"
            )

    def _build_feature_cache(self) -> FeatureCache:
        mem = self.memory
        if mem.gpu_budget_mb is not None:
            gpu_budget = int(mem.gpu_budget_mb * 1024 * 1024)
        else:
            model_bytes = float(sum(p.data.nbytes for p in self.model.parameters()))
            hidden = self.model.hidden_features
            activation_bytes = (
                self.store.window_capacity
                * self.store.num_nodes
                * hidden
                * 4.0
                * _ACTIVATION_FACTOR
                * self.scale
            )
            gpu_budget = feature_cache_budget_bytes(
                self.device.spec,
                model_bytes=model_bytes,
                activation_bytes=activation_bytes,
                fraction=mem.gpu_budget_fraction,
            )
        cache = FeatureCache(
            gpu_budget_bytes=gpu_budget,
            pinned_budget_bytes=int(mem.pinned_budget_mb * 1024 * 1024),
            spill_budget_bytes=(
                None
                if mem.spill_budget_mb is None
                else int(mem.spill_budget_mb * 1024 * 1024)
            ),
            policy=mem.policy,
        )
        if gpu_budget > 0:
            # The GPU tier occupies real HBM alongside the reuse buffer.
            self.device.malloc("feature_cache", gpu_budget)
        return cache

    def scope_feature_cache(self, lo: int, hi: int) -> None:
        """Restrict the cache to the node range ``[lo, hi)`` (fleet shards).

        Clears any cached residency: blocks keyed outside the new scope
        would otherwise alias a different replica's rows.
        """
        if not 0 <= lo <= hi <= self.store.num_nodes:
            raise ValueError(
                f"cache scope [{lo}, {hi}) out of bounds for "
                f"{self.store.num_nodes} nodes"
            )
        self._cache_lo = lo
        self._cache_hi = hi
        if self.feature_cache is not None:
            self.feature_cache.clear()

    def _feature_block_requests(self, uncached_versions: int):
        """Cache keys + bytes for one batch's feature-row traffic.

        Serving keys are *unversioned* node blocks — snapshot versions are
        immutable, so a block stays valid until a delta touches its rows
        (row-based invalidation in :meth:`absorb_delta`).  Each block's cost
        is its rows across every window version the reuse cache does not
        already cover.
        """
        row_bytes = self.store.feature_dim * 4.0 * uncached_versions * self.scale
        return [
            (block, (b_hi - b_lo) * row_bytes)
            for block, b_lo, b_hi in blocks_covering(
                self._cache_lo, self._cache_hi, self.memory.block_rows
            )
        ]

    # ------------------------------------------------------------------ ingestion
    def ingest(self, delta: GraphDelta, *, at: Optional[float] = None) -> DeltaReport:
        """Apply a graph delta and incrementally maintain the reuse cache."""
        self._touch_wall_clock()
        at = self.device.elapsed_seconds() if at is None else at
        report = self.store.apply(delta)
        self.absorb_delta(report, at=at)
        return report

    def absorb_delta(self, report: DeltaReport, *, at: Optional[float] = None) -> DeltaReport:
        """Maintain caches/metrics for a delta already applied to the store.

        The seam the fleet engine needs: its replicas share one
        :class:`IncrementalSnapshotStore`, so the delta is applied once and
        every replica absorbs the resulting report (cache patch + accounting)
        without re-applying it.
        """
        self._touch_wall_clock()
        at = self.device.elapsed_seconds() if at is None else at
        patch_seconds = self.session.refresh(report)
        touched_blocks: List[int] = []
        if report.num_touched:
            touched_blocks = blocks_of_rows(
                report.touched_rows, self.memory.block_rows
            )
        if self.feature_cache is not None and touched_blocks:
            # The delta rewrote these rows: any tier copy (including halo
            # rows a prefetch may still be shipping) is stale.
            self.feature_cache.invalidate(touched_blocks)
        # Remember the op: batches serving the post-delta window must not
        # start before the delta that produced their state has been applied.
        self._last_delta_op = self.device.host_op(
            report.apply_seconds + patch_seconds,
            label=f"delta_v{report.version}",
            stream="cpu_prep" if self.config.enable_pipeline else "default",
            not_before=at,
        )
        if touched_blocks:
            # The delta op *writes* the touched feature blocks; a gather
            # reading those blocks without an ordering path is a race the
            # happens-before checker flags.
            self._last_delta_op.attrs["hb_writes"] = list(touched_blocks)
        self.metrics.record_delta(report.num_touched)
        self.hooks.on_delta(report.version, report.num_touched, at)
        return report

    def submit(self, node_ids: Iterable[int], *, at: Optional[float] = None) -> int:
        """Enqueue a prediction request; returns its request id.

        Invalid node ids are rejected here, before anything is scheduled —
        a bad request must not poison the micro-batch it would join.
        """
        self._touch_wall_clock()
        at = self.device.elapsed_seconds() if at is None else at
        ids = np.asarray(list(node_ids), dtype=np.int64)
        if len(ids) and (ids.min() < 0 or ids.max() >= self.store.num_nodes):
            raise ValueError(
                f"node ids must be in [0, {self.store.num_nodes}), got "
                f"[{ids.min()}, {ids.max()}]"
            )
        request = InferenceRequest(
            request_id=self._next_request_id,
            node_ids=ids,
            arrival_time=at,
        )
        self._next_request_id += 1
        self.batcher.submit(request)
        return request.request_id

    # ------------------------------------------------------------------ execution
    def _prep_snapshot_count(self) -> int:
        """Snapshots the datapipe's host stages must touch for one batch
        (cached window versions skip preparation; at least one is charged)."""
        uncached = sum(
            0 if self.reuse.has_cached(v) else 1 for v in self.store.window_versions()
        )
        return max(1, uncached)

    def _dispatch_seconds(self, num_launches: int) -> float:
        per_launch_us = (
            self.device.host.graph_dispatch_overhead_us
            if self.config.use_cuda_graph
            else self.device.host.dispatch_overhead_us
        )
        return num_launches * per_launch_us * 1e-6

    def _execute(self, batch: MicroBatch) -> BatchResult:
        decision = self.policy.choose(self.store, self.session, batch)
        versions = self.store.window_versions()
        agg_bytes = int(self.store.num_nodes * self.store.feature_dim * 4 * self.scale)
        self.reuse.plan_gpu_residency(versions, {v: agg_bytes for v in versions})

        transfer_bytes = self.session.partition_transfer_bytes(decision.s_per)
        compute_stream = "compute" if self.config.enable_pipeline else "default"

        item = PipeItem(
            label=f"b{batch.batch_id}",
            num_snapshots=self._prep_snapshot_count(),
            transfer_bytes=transfer_bytes,
        )
        if self.feature_cache is not None:
            uncached = sum(
                0 if self.reuse.has_cached(v) else 1
                for v in self.store.window_versions()
            )
            if uncached:
                plan = self.feature_cache.access(
                    self._feature_block_requests(uncached)
                )
                gather = max(
                    0.0, transfer_bytes - plan.gpu_bytes - plan.pinned_bytes
                )
                item = dataclasses.replace(
                    item,
                    transfer_bytes=max(0.0, transfer_bytes - plan.gpu_bytes),
                    gather_bytes=gather,
                    pin_bytes=gather,
                    block_keys=plan.block_keys,
                )
                self.hooks.on_cache_access(
                    item.label,
                    0,
                    plan.gpu_bytes,
                    plan.pinned_bytes,
                    plan.miss_bytes,
                    plan.gpu_hits + plan.pinned_hits + plan.spill_hits,
                    plan.misses,
                    batch.formed_time,
                    "serve",
                )
        depends_on = [] if self._last_delta_op is None else [self._last_delta_op]
        if self.pre_batch_ops is not None:
            depends_on.extend(self.pre_batch_ops(batch))
        transfer_ops = self.prefetcher.schedule(
            item,
            depends_on=depends_on or None,
            not_before=batch.formed_time,
        )
        transfer = transfer_ops[-1]

        hits_before = self.reuse.cpu_hits + self.reuse.gpu_hits
        misses_before = self.reuse.misses
        predictions, costs = self.session.predict(batch.node_ids, s_per=decision.s_per)
        self.device.host_op(
            self._dispatch_seconds(sum(c.launches for c in costs)),
            label=f"dispatch_b{batch.batch_id}",
            stream="cpu" if self.config.use_cuda_graph else compute_stream,
        )
        kernel_ops = self.device.launch_kernels(
            costs,
            label=f"serve_b{batch.batch_id}",
            stream=compute_stream,
            depends_on=[transfer],
        )
        self.prefetcher.mark_consumed(kernel_ops[-1:] or [transfer])
        kernel_seconds = sum(c.execution_seconds(self.device.spec) for c in costs)
        self.policy.observe_compute(kernel_seconds, self.store.window_size)

        result_bytes = len(batch.node_ids) * self.model.out_features * 4 * self.scale
        d2h = self.device.transfer_d2h(
            result_bytes,
            label=f"d2h_b{batch.batch_id}",
            depends_on=kernel_ops[-1:] or [transfer],
        )
        completion = d2h.end

        batch_record = BatchRecord(
            batch_id=batch.batch_id,
            size=batch.size,
            s_per=decision.s_per,
            formed_time=batch.formed_time,
            completion_time=completion,
            transfer_bytes=transfer_bytes,
            cache_hits=(self.reuse.cpu_hits + self.reuse.gpu_hits) - hits_before,
            cache_misses=self.reuse.misses - misses_before,
        )
        self.metrics.record_batch(batch_record)
        self.hooks.on_batch(batch_record)
        per_request: Dict[int, np.ndarray] = {}
        batch_nodes = batch.node_ids
        for request in batch.requests:
            rows = np.searchsorted(batch_nodes, request.node_ids)
            per_request[request.request_id] = predictions[rows]
            request_record = RequestRecord(
                request_id=request.request_id,
                batch_id=batch.batch_id,
                arrival_time=request.arrival_time,
                completion_time=completion,
                num_nodes=len(request.node_ids),
            )
            self.metrics.record_request(request_record)
            self.hooks.on_request(request_record)
        return BatchResult(
            batch_id=batch.batch_id,
            decision=decision,
            completion_time=completion,
            predictions=per_request,
        )

    def pump(self, now: Optional[float] = None, *, force: bool = False) -> List[BatchResult]:
        """Cut and execute every micro-batch due at simulated time ``now``."""
        now = self.device.elapsed_seconds() if now is None else now
        return [self._execute(batch) for batch in self.batcher.drain(now, force=force)]

    # ------------------------------------------------------------------ traces
    def run_trace(self, events: Iterable[ServingEvent]) -> ServingReport:
        """Replay a timestamped delta/request trace and return the report."""
        self._touch_wall_clock()
        last_time = 0.0
        for event in sorted(events, key=lambda e: e.time):
            self.pump(event.time)
            if event.kind == "delta":
                assert event.delta is not None
                self.ingest(event.delta, at=event.time)
            else:
                assert event.node_ids is not None
                self.submit(event.node_ids, at=event.time)
                self.pump(event.time)
            last_time = event.time
        self.pump(max(last_time, self.device.elapsed_seconds()), force=True)
        return self.report()

    # ------------------------------------------------------------------ reporting
    def report(self) -> ServingReport:
        extras: Dict[str, float] = {}
        if self.policy.decisions:
            extras["mean_s_per"] = float(np.mean([d.s_per for d in self.policy.decisions]))
        extras["rows_patched"] = float(self.session.rows_patched)
        extras["window_overlap_rate"] = self.store.overlap_rate()
        extras["store_bytes"] = float(self.store.window_bytes())
        extras.update(self.prefetcher.stats())
        if self.feature_cache is not None:
            extras.update(self.feature_cache.stats())
        return ServingReport(
            engine="PiPAD-Serve" if self.config.enable_reuse else "Recompute-Serve",
            model=self.model.name,
            dataset=self.dataset,
            simulated_seconds=self.device.elapsed_seconds(),
            wall_seconds=(
                0.0 if self._wall_start is None else time.perf_counter() - self._wall_start
            ),
            metrics=self.metrics,
            breakdown=self.device.breakdown(),
            reuse_stats=self.session.stats(),
            gpu_utilization=self.device.gpu_utilization(),
            peak_memory_bytes=self.device.peak_bytes,
            extras=extras,
        )


def _build_serving_scheduler(
    graph: Union[DynamicGraph, IncrementalSnapshotStore],
    model: DGNNModel,
    config: Optional[ServingConfig] = None,
    *,
    gpu: Optional[GPUSpec] = None,
    pcie: Optional[PCIeSpec] = None,
    host: Optional[HostSpec] = None,
    scale: float = 1.0,
    data: Optional[DataPipeConfig] = None,
    memory: Optional[MemoryConfig] = None,
) -> ServingScheduler:
    """Wire a store + scheduler for a trained model (engine-internal path)."""
    config = config or ServingConfig()
    if isinstance(graph, IncrementalSnapshotStore):
        store = graph
        dataset = "serving"
    else:
        store = IncrementalSnapshotStore(graph, window=config.window, host=host)
        dataset = graph.name
    return ServingScheduler(
        model,
        store,
        config,
        gpu=gpu,
        pcie=pcie,
        host=host,
        scale=scale,
        dataset=dataset,
        data=data,
        memory=memory,
    )


def build_serving_engine(
    graph: Union[DynamicGraph, IncrementalSnapshotStore],
    model: DGNNModel,
    config: Optional[ServingConfig] = None,
    *,
    gpu: Optional[GPUSpec] = None,
    pcie: Optional[PCIeSpec] = None,
    host: Optional[HostSpec] = None,
    scale: float = 1.0,
) -> ServingScheduler:
    """Wire a store + scheduler for a trained model in one call.

    .. deprecated::
        Construct serving engines through :class:`repro.api.Engine` with a
        :class:`~repro.api.spec.RunSpec` serving section instead; this shim
        remains for backward compatibility.
    """
    warnings.warn(
        "build_serving_engine is deprecated; use repro.api.Engine.from_spec "
        "with a RunSpec serving section instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_serving_scheduler(
        graph, model, config, gpu=gpu, pcie=pcie, host=host, scale=scale
    )
