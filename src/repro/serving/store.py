"""Incremental snapshot store: the serving-side graph state.

The store owns the *serving window* — the last ``W`` snapshot versions the
recurrent DGNN models consume — and applies :class:`~repro.serving.deltas.
GraphDelta` updates to produce new head versions.  Two pieces of paper
machinery are reused instead of recomputed from scratch on every delta:

- the overlap/exclusive decomposition of the window is maintained by an
  :class:`~repro.graph.overlap.IncrementalOverlapTracker` (per-edge
  membership counts, §4.1's decomposition without the O(total nnz)
  re-intersection), and
- partition-level groups for the parallel GNN are refined from that window
  decomposition (:func:`~repro.graph.overlap.refine_overlap`) by
  intersecting only the small exclusive sets.

Each applied delta yields a :class:`DeltaReport` naming the new and evicted
versions plus the *touched rows* — exactly the aggregation rows the
inference session must recompute, everything else stays cache-valid.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.graph.csr import CSRMatrix
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.overlap import IncrementalOverlapTracker, SnapshotOverlap, refine_overlap
from repro.graph.snapshot import GraphSnapshot
from repro.gpu.spec import HostSpec
from repro.serving.deltas import GraphDelta
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DeltaReport:
    """Outcome of applying one delta to the store."""

    version: int
    parent_version: int
    evicted_version: Optional[int]
    #: rows whose first-layer aggregation changed (edge endpoints' source
    #: rows, updated nodes and their in-neighbors)
    touched_rows: np.ndarray
    num_added: int
    num_removed: int
    num_feature_updates: int
    #: analytic host seconds spent applying the delta (key merge + tracker)
    apply_seconds: float

    @property
    def num_touched(self) -> int:
        return int(len(self.touched_rows))


class IncrementalSnapshotStore:
    """Applies deltas to a head snapshot and maintains the serving window."""

    def __init__(
        self,
        initial: Union[DynamicGraph, GraphSnapshot, Sequence[GraphSnapshot]],
        *,
        window: int = 8,
        host: Optional[HostSpec] = None,
    ) -> None:
        check_positive("window", window)
        if isinstance(initial, DynamicGraph):
            seeds = list(initial.snapshots[-window:])
        elif isinstance(initial, GraphSnapshot):
            seeds = [initial]
        else:
            seeds = list(initial)
        if not seeds:
            raise ValueError("store needs at least one seed snapshot")
        shape = seeds[0].adjacency.shape
        for snap in seeds:
            if snap.adjacency.shape != shape:
                raise ValueError("all seed snapshots must share the same shape")
        self.window_capacity = window
        self.host = host or HostSpec()
        self._tracker = IncrementalOverlapTracker(shape, window)
        self._window: Deque[GraphSnapshot] = deque()
        self._keys: Dict[int, np.ndarray] = {}
        #: refined subgroup decompositions, valid until the next delta
        self._refined_cache: Dict[Tuple[int, ...], SnapshotOverlap] = {}
        self._version = seeds[0].timestep - 1
        for snap in seeds:
            version = max(self._version + 1, snap.timestep)
            if snap.timestep != version:
                snap = GraphSnapshot(
                    adjacency=snap.adjacency,
                    features=snap.features,
                    targets=snap.targets,
                    timestep=version,
                )
            keys = snap.adjacency.edge_keys()
            self._tracker.push(version, keys)
            self._window.append(snap)
            if len(self._window) > window:
                evicted = self._window.popleft()
                del self._keys[evicted.timestep]
            self._keys[version] = keys
            self._version = version
        self.deltas_applied = 0

    # ------------------------------------------------------------------ views
    @property
    def num_nodes(self) -> int:
        return self._window[-1].num_nodes

    @property
    def feature_dim(self) -> int:
        return self._window[-1].feature_dim

    @property
    def version(self) -> int:
        """Version id of the head snapshot (monotonically increasing)."""
        return self._version

    @property
    def head(self) -> GraphSnapshot:
        return self._window[-1]

    @property
    def window_size(self) -> int:
        return len(self._window)

    def window_snapshots(self) -> List[GraphSnapshot]:
        """The serving window, oldest first (the model's input frame)."""
        return list(self._window)

    def window_versions(self) -> List[int]:
        return [s.timestep for s in self._window]

    def window_bytes(self) -> int:
        """Bytes held by the serving window (features + adjacency per version).

        This is the store-memory footprint one full replica pays; the fleet
        engine reports the node-sharded fraction of it per shard.
        """
        return sum(
            int(snap.feature_bytes()) + int(snap.adjacency.nbytes)
            for snap in self._window
        )

    def snapshot(self, version: int) -> GraphSnapshot:
        for snap in self._window:
            if snap.timestep == version:
                return snap
        raise KeyError(f"version {version} not in window {self.window_versions()}")

    # ------------------------------------------------------------------ overlap
    def decomposition(self) -> SnapshotOverlap:
        """Incrementally maintained decomposition of the whole window."""
        return self._tracker.decomposition()

    def overlap_rate(self) -> float:
        return self._tracker.overlap_rate()

    def partition_decomposition(self, positions: Sequence[int]) -> SnapshotOverlap:
        """Decomposition of a window subgroup (by position, oldest = 0).

        Refinements are cached until the next delta: steady request traffic
        between deltas keeps asking for the same subgroups.
        """
        if list(positions) == list(range(len(self._window))):
            return self.decomposition()
        key = tuple(positions)
        cached = self._refined_cache.get(key)
        if cached is None:
            cached = refine_overlap(self.decomposition(), positions)
            self._refined_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ deltas
    def _touched_rows(
        self,
        delta: GraphDelta,
        added_keys: np.ndarray,
        removed_keys: np.ndarray,
        new_keys: np.ndarray,
    ) -> np.ndarray:
        """Rows whose first-layer aggregation differs between head versions.

        ``agg[u] = (X[u] + Σ_v A[u,v]·X[v]) / (deg(u)+1)``, so a row is
        touched when one of its out-edges changed, its own features changed,
        or the features of one of its out-neighbors changed.
        """
        n = self.num_nodes
        touched = [added_keys // n, removed_keys // n]
        if delta.feature_updates:
            updated = np.fromiter(delta.feature_updates, dtype=np.int64)
            touched.append(updated)
            # In-neighbors of updated nodes: rows u with a (u, v) edge.
            rows, cols = np.divmod(new_keys, n)
            touched.append(rows[np.isin(cols, updated)])
        return np.unique(np.concatenate(touched)) if touched else np.zeros(0, dtype=np.int64)

    def _apply_seconds(self, delta: GraphDelta, new_nnz: int, touched: int) -> float:
        """Analytic host cost of one delta: key merge, tracker upkeep, patch."""
        changed = delta.num_added + delta.num_removed
        merge = new_nnz * self.host.slicing_ns_per_nnz * 1e-9
        tracker = changed * self.host.overlap_extract_ns_per_nnz * 1e-9
        patch = touched * self.feature_dim * 4.0 * 1e-9  # ~1 GB/s row rewrite
        return merge + tracker + patch + self.host.snapshot_prep_us * 1e-6

    def _validate_delta(self, delta: GraphDelta) -> None:
        n = self.num_nodes
        for name in ("added_edges", "removed_edges"):
            edges = getattr(delta, name)
            if len(edges) and (edges.min() < 0 or edges.max() >= n):
                raise ValueError(
                    f"{name} endpoints must be in [0, {n}), got "
                    f"[{edges.min()}, {edges.max()}]"
                )
        bad = [v for v in delta.feature_updates if not 0 <= int(v) < n]
        if bad:
            raise ValueError(f"feature_updates node ids must be in [0, {n}), got {bad}")

    def apply(self, delta: GraphDelta) -> DeltaReport:
        """Apply one delta, advance the head version and slide the window."""
        self._validate_delta(delta)
        head = self._window[-1]
        n = self.num_nodes
        current = self._keys[self._version]

        removed_keys = np.intersect1d(delta.removed_keys(n), current, assume_unique=False)
        survivors = np.setdiff1d(current, removed_keys, assume_unique=False)
        added_keys = np.setdiff1d(delta.added_keys(n), current, assume_unique=False)
        new_keys = np.union1d(survivors, added_keys)

        if len(removed_keys) or len(added_keys):
            adjacency = CSRMatrix.from_edge_keys(new_keys, head.adjacency.shape)
        else:
            adjacency = head.adjacency
        features = head.features
        if delta.feature_updates:
            features = features.copy()
            for node, row in delta.feature_updates.items():
                features[node] = np.asarray(row, dtype=np.float32)

        new_version = self._version + 1
        snapshot = GraphSnapshot(
            adjacency=adjacency, features=features, targets=None, timestep=new_version
        )
        evicted = self._tracker.push(new_version, new_keys)
        self._refined_cache.clear()
        self._window.append(snapshot)
        if len(self._window) > self.window_capacity:
            old = self._window.popleft()
            del self._keys[old.timestep]
        self._keys[new_version] = new_keys

        touched = self._touched_rows(delta, added_keys, removed_keys, new_keys)
        report = DeltaReport(
            version=new_version,
            parent_version=new_version - 1,
            evicted_version=evicted,
            touched_rows=touched,
            num_added=int(len(added_keys)),
            num_removed=int(len(removed_keys)),
            num_feature_updates=delta.num_feature_updates,
            apply_seconds=self._apply_seconds(delta, len(new_keys), len(touched)),
        )
        self._version = new_version
        self.deltas_applied += 1
        return report
