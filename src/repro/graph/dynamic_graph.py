"""Discrete-time dynamic graph (DTDG) container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.graph.overlap import adjacent_change_rates
from repro.graph.snapshot import GraphSnapshot


@dataclass
class DynamicGraph:
    """An ordered sequence of :class:`GraphSnapshot` over a fixed node set.

    This is the DTDG of §2.1: ``{G_1, ..., G_t}`` where every snapshot shares
    the same node universe but its own edge set, features and targets.
    """

    snapshots: List[GraphSnapshot]
    name: str = "dynamic-graph"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.snapshots:
            raise ValueError("a DynamicGraph needs at least one snapshot")
        nodes = self.snapshots[0].num_nodes
        dim = self.snapshots[0].feature_dim
        for snap in self.snapshots:
            if snap.num_nodes != nodes:
                raise ValueError("all snapshots must share the same node count")
            if snap.feature_dim != dim:
                raise ValueError("all snapshots must share the same feature dimension")

    # -- basic properties --------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.snapshots[0].num_nodes

    @property
    def num_snapshots(self) -> int:
        return len(self.snapshots)

    @property
    def feature_dim(self) -> int:
        return self.snapshots[0].feature_dim

    @property
    def total_edges(self) -> int:
        return sum(s.num_edges for s in self.snapshots)

    def __len__(self) -> int:
        return self.num_snapshots

    def __getitem__(self, index: int) -> GraphSnapshot:
        return self.snapshots[index]

    def __iter__(self) -> Iterator[GraphSnapshot]:
        return iter(self.snapshots)

    # -- analysis ----------------------------------------------------------
    def change_rates(self) -> np.ndarray:
        """Topology change rate between each pair of adjacent snapshots."""
        return adjacent_change_rates([s.adjacency for s in self.snapshots])

    def average_change_rate(self) -> float:
        rates = self.change_rates()
        return float(rates.mean()) if len(rates) else 0.0

    def edge_counts(self) -> np.ndarray:
        return np.array([s.num_edges for s in self.snapshots], dtype=np.int64)

    def slice_view(self, start: int, stop: int) -> "DynamicGraph":
        """A new DynamicGraph over snapshots ``[start, stop)`` (shared data)."""
        if not (0 <= start < stop <= self.num_snapshots):
            raise ValueError(f"invalid slice [{start}, {stop}) of {self.num_snapshots} snapshots")
        return DynamicGraph(
            snapshots=self.snapshots[start:stop],
            name=f"{self.name}[{start}:{stop}]",
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DynamicGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"snapshots={self.num_snapshots}, dim={self.feature_dim})"
        )
