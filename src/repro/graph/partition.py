"""Node-wise graph sharding across devices with halo-node bookkeeping.

Scaling dynamic-GNN training beyond one device follows the classic
distributed-GNN recipe (cf. DGL's ``partition_graph``): the node set is
split into ``K`` contiguous shards, every device owns the *rows* of its
shard in each snapshot's adjacency, and the column endpoints that fall
outside the shard are *halo nodes* — their features must be fetched from
the owning device before the shard's aggregation can run.

Because each shard keeps the full global shape (only its rows are
populated), every piece of the paper's single-GPU machinery composes
unchanged: shard adjacencies of a snapshot group feed straight into
:func:`~repro.graph.overlap.extract_overlap`, so the overlap/exclusive
decomposition — and the transfer savings it buys — applies per shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.csr import CSRMatrix
from repro.graph.overlap import SnapshotOverlap, extract_overlap
from repro.graph.snapshot import GraphSnapshot
from repro.utils.validation import check_positive

#: supported node-assignment strategies
PARTITION_MODES = ("nodes", "edges")

#: supported stage-assignment strategies of :class:`FramePartitioner`
SCHEDULE_MODES = ("round_robin", "blocked")


@dataclass(frozen=True)
class SnapshotShard:
    """One device's row-slice of one snapshot.

    The adjacency keeps the *global* shape so edge keys stay comparable
    across shards and snapshots; only rows in ``[node_start, node_stop)``
    hold entries.
    """

    device: int
    timestep: int
    node_start: int
    node_stop: int
    adjacency: CSRMatrix
    #: column endpoints referenced by this shard but owned elsewhere
    halo_nodes: np.ndarray

    @property
    def num_local_nodes(self) -> int:
        return self.node_stop - self.node_start

    @property
    def num_edges(self) -> int:
        return self.adjacency.nnz

    @property
    def num_halo_nodes(self) -> int:
        return int(len(self.halo_nodes))

    def halo_feature_bytes(
        self, feature_dim: int, dtype: Union[np.dtype, type, str] = np.float32
    ) -> float:
        """Bytes of remote features this shard must receive before aggregating.

        ``dtype`` is the feature element type (default float32); callers with
        float64 or half-precision features must pass their actual dtype or the
        halo traffic is mis-sized.
        """
        itemsize = np.dtype(dtype).itemsize
        return float(self.num_halo_nodes * feature_dim * itemsize)


@dataclass(frozen=True)
class ShardGroup:
    """One device's view of a snapshot group (a training partition).

    ``overlap`` is the shard-local overlap/exclusive decomposition, built by
    the same :func:`extract_overlap` the single-GPU path uses — the sharding
    is transparent to the reuse machinery.
    """

    device: int
    shards: Tuple[SnapshotShard, ...]
    overlap: SnapshotOverlap

    @property
    def size(self) -> int:
        return len(self.shards)

    @property
    def halo_feature_rows(self) -> int:
        """Union of halo nodes across the group (fetched once per group)."""
        if not self.shards:
            return 0
        halos = np.unique(np.concatenate([s.halo_nodes for s in self.shards]))
        return int(len(halos))


def _row_slice(adjacency: CSRMatrix, start: int, stop: int) -> CSRMatrix:
    """Rows ``[start, stop)`` of ``adjacency``, zero-padded to the full shape."""
    n = adjacency.num_rows
    lo, hi = int(adjacency.indptr[start]), int(adjacency.indptr[stop])
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[start : stop + 1] = adjacency.indptr[start : stop + 1] - lo
    indptr[stop + 1 :] = hi - lo
    return CSRMatrix(
        indptr=indptr,
        indices=adjacency.indices[lo:hi],
        data=adjacency.data[lo:hi],
        shape=adjacency.shape,
    )


class GraphPartitioner:
    """Shards snapshots node-wise across ``num_devices`` devices.

    Parameters
    ----------
    num_devices:
        Number of shards (one per device).
    mode:
        ``"nodes"`` assigns equal-sized contiguous node ranges; ``"edges"``
        places the range boundaries so each shard owns roughly the same
        number of edges (summed over the planning snapshots), the
        load-balance criterion that matters for aggregation time.
    """

    def __init__(self, num_devices: int, *, mode: str = "edges") -> None:
        check_positive("num_devices", num_devices)
        if mode not in PARTITION_MODES:
            raise ValueError(f"unknown partition mode {mode!r}; expected one of {PARTITION_MODES}")
        self.num_devices = num_devices
        self.mode = mode

    # ------------------------------------------------------------------ planning
    def plan(
        self, snapshots: Sequence[GraphSnapshot], *, node_weight: float = 1.0
    ) -> np.ndarray:
        """Node-range boundaries (length ``num_devices + 1``) for a workload.

        ``node_weight`` is the cost of one node's dense (update/RNN) work
        expressed in units of one edge's aggregation work; the boundaries
        balance ``Σ degree + node_weight·|nodes|`` per shard.  The
        distributed trainer calibrates it from the preparing-epoch kernel
        statistics — dense-dominated models then shard close to node-uniform
        while aggregation-dominated ones follow the edge mass.
        """
        if not snapshots:
            raise ValueError("need at least one snapshot to plan a partitioning")
        if node_weight < 0:
            raise ValueError("node_weight must be >= 0")
        num_nodes = snapshots[0].num_nodes
        if self.num_devices > num_nodes:
            raise ValueError(
                f"cannot shard {num_nodes} nodes across {self.num_devices} devices"
            )
        if self.mode == "nodes" or self.num_devices == 1:
            return np.linspace(0, num_nodes, self.num_devices + 1).astype(np.int64)
        degree = np.zeros(num_nodes, dtype=np.float64)
        for snapshot in snapshots:
            degree += snapshot.adjacency.row_nnz()
        cumulative = np.cumsum(degree + node_weight * max(1, len(snapshots)))
        targets = cumulative[-1] * np.arange(1, self.num_devices) / self.num_devices
        inner = np.searchsorted(cumulative, targets, side="left") + 1
        boundaries = np.concatenate([[0], inner, [num_nodes]]).astype(np.int64)
        # Degenerate distributions can collapse ranges; fall back to spreading
        # the affected boundaries so every device owns at least one node.
        for k in range(1, len(boundaries)):
            boundaries[k] = max(boundaries[k], boundaries[k - 1] + 1)
        boundaries[-1] = num_nodes
        for k in range(len(boundaries) - 2, 0, -1):
            boundaries[k] = min(boundaries[k], boundaries[k + 1] - 1)
        return boundaries

    # ------------------------------------------------------------------ sharding
    def shard_snapshot(
        self, snapshot: GraphSnapshot, boundaries: Optional[np.ndarray] = None
    ) -> List[SnapshotShard]:
        """Split one snapshot into per-device row shards with halo bookkeeping."""
        boundaries = self.plan([snapshot]) if boundaries is None else np.asarray(boundaries)
        shards: List[SnapshotShard] = []
        for device in range(self.num_devices):
            start, stop = int(boundaries[device]), int(boundaries[device + 1])
            adjacency = _row_slice(snapshot.adjacency, start, stop)
            # np.unique both sorts and deduplicates: a column referenced from
            # several rows (or through parallel multi-edges) counts once toward
            # halo traffic — its features are fetched once, not per edge.
            cols = np.unique(adjacency.indices)
            halo = cols[(cols < start) | (cols >= stop)]
            shards.append(
                SnapshotShard(
                    device=device,
                    timestep=snapshot.timestep,
                    node_start=start,
                    node_stop=stop,
                    adjacency=adjacency,
                    halo_nodes=halo,
                )
            )
        return shards

    def shard_group(
        self, snapshots: Sequence[GraphSnapshot], boundaries: Optional[np.ndarray] = None
    ) -> List[ShardGroup]:
        """Shard a snapshot group; each device gets its shards + shard-local overlap."""
        if not snapshots:
            raise ValueError("cannot shard an empty snapshot group")
        boundaries = self.plan(snapshots) if boundaries is None else np.asarray(boundaries)
        per_snapshot = [self.shard_snapshot(s, boundaries) for s in snapshots]
        groups: List[ShardGroup] = []
        for device in range(self.num_devices):
            shards = tuple(shards_of[device] for shards_of in per_snapshot)
            overlap = extract_overlap([s.adjacency for s in shards])
            groups.append(ShardGroup(device=device, shards=shards, overlap=overlap))
        return groups

    # ------------------------------------------------------------------ fractions
    def node_fractions(self, boundaries: np.ndarray) -> np.ndarray:
        """Fraction of the node set each device owns."""
        boundaries = np.asarray(boundaries, dtype=np.float64)
        return np.diff(boundaries) / boundaries[-1]

    def edge_fractions(
        self, snapshots: Sequence[GraphSnapshot], boundaries: np.ndarray
    ) -> np.ndarray:
        """Fraction of all edges (summed over snapshots) each device owns."""
        totals = np.zeros(self.num_devices, dtype=np.float64)
        for snapshot in snapshots:
            counts = snapshot.adjacency.row_nnz()
            for device in range(self.num_devices):
                start, stop = int(boundaries[device]), int(boundaries[device + 1])
                totals[device] += counts[start:stop].sum()
        grand = totals.sum()
        if grand == 0:
            return np.full(self.num_devices, 1.0 / self.num_devices)
        return totals / grand

    def mean_halo_nodes(
        self, snapshots: Sequence[GraphSnapshot], boundaries: np.ndarray
    ) -> np.ndarray:
        """Mean halo-node count per device across the given snapshots."""
        totals = np.zeros(self.num_devices, dtype=np.float64)
        for snapshot in snapshots:
            for shard in self.shard_snapshot(snapshot, boundaries):
                totals[shard.device] += shard.num_halo_nodes
        return totals / max(1, len(snapshots))


@dataclass(frozen=True)
class FrameStage:
    """One device's slice of a frame pipeline: the group indices it owns."""

    device: int
    groups: Tuple[int, ...]

    @property
    def num_groups(self) -> int:
        return len(self.groups)


class FramePartitioner:
    """Shards a frame's snapshot groups across ``K`` devices (pipeline stages).

    The temporal analogue of :class:`GraphPartitioner`: instead of splitting
    the *node set* (every device holds every snapshot group), the *frame* is
    split — each device owns a subset of the frame's snapshot groups and runs
    the full model on them, while the recurrent state flows between stages as
    point-to-point transfers on the interconnect.  This is the multi-device
    generalization of the paper's Fig. 8 pipeline: device ``d`` computes
    group ``g`` while device ``d+1`` prefetches group ``g+1``'s slices.

    Parameters
    ----------
    num_devices:
        Number of pipeline stages (one per device).
    schedule:
        ``"round_robin"`` assigns group ``g`` to device ``g % K`` — adjacent
        groups live on different devices, which maximizes transfer/compute
        overlap (the 1F1B-style schedule).  ``"blocked"`` assigns contiguous
        runs of groups per device, which minimizes the number of cross-device
        state handoffs at the cost of less prefetch depth.
    """

    def __init__(self, num_devices: int, *, schedule: str = "round_robin") -> None:
        check_positive("num_devices", num_devices)
        if schedule not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown schedule {schedule!r}; expected one of {SCHEDULE_MODES}"
            )
        self.num_devices = num_devices
        self.schedule = schedule

    # ------------------------------------------------------------------ assignment
    def assign(self, num_groups: int) -> np.ndarray:
        """Owning device per group index (length ``num_groups``)."""
        check_positive("num_groups", num_groups)
        groups = np.arange(num_groups, dtype=np.int64)
        if self.schedule == "round_robin":
            return groups % self.num_devices
        # "blocked": contiguous chunks whose sizes differ by at most one.
        return (groups * self.num_devices) // num_groups

    def stages(self, num_groups: int) -> List[FrameStage]:
        """Per-device view of :meth:`assign` (devices with no groups included)."""
        assignment = self.assign(num_groups)
        return [
            FrameStage(
                device=device,
                groups=tuple(int(g) for g in np.flatnonzero(assignment == device)),
            )
            for device in range(self.num_devices)
        ]

    # ------------------------------------------------------------------ statistics
    def group_fractions(self, num_groups: int) -> np.ndarray:
        """Fraction of the frame's groups each device owns."""
        assignment = self.assign(num_groups)
        counts = np.bincount(assignment, minlength=self.num_devices)
        return counts / float(num_groups)

    def num_handoffs(self, num_groups: int) -> int:
        """Cross-device state handoffs per frame (adjacent groups on
        different devices — each one is a point-to-point transfer)."""
        assignment = self.assign(num_groups)
        return int(np.count_nonzero(assignment[1:] != assignment[:-1]))
