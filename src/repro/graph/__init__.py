"""Dynamic-graph substrate: sparse formats, snapshots, frames, overlap, datasets."""

from repro.graph.coo import COOMatrix
from repro.graph.csr import CSRMatrix
from repro.graph.sliced_csr import SlicedCSRMatrix, DEFAULT_SLICE_CAPACITY
from repro.graph.normalize import add_self_loops, gcn_normalize
from repro.graph.snapshot import GraphSnapshot
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.frame import (
    DEFAULT_FRAME_SIZE,
    Frame,
    FrameIterator,
    Partition,
    partition_frame,
)
from repro.graph.overlap import (
    IncrementalOverlapTracker,
    SnapshotOverlap,
    adjacent_change_rates,
    change_rate,
    extract_overlap,
    group_overlap_rate,
    pairwise_overlap_rate,
    refine_overlap,
)
from repro.graph.partition import (
    PARTITION_MODES,
    SCHEDULE_MODES,
    FramePartitioner,
    FrameStage,
    GraphPartitioner,
    ShardGroup,
    SnapshotShard,
)
from repro.graph.smoothing import apply_edge_life, smoothened_edge_total
from repro.graph.generators import GeneratorConfig, generate_dynamic_graph, TOPOLOGIES
from repro.graph.datasets import (
    DATASET_ABBREVIATIONS,
    DATASET_ORDER,
    DatasetSpec,
    PaperStats,
    get_dataset_spec,
    hidden_dim_for,
    list_datasets,
    load_dataset,
)
from repro.graph.stats import DegreeStats, density, format_sizes, summarize

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "SlicedCSRMatrix",
    "DEFAULT_SLICE_CAPACITY",
    "add_self_loops",
    "gcn_normalize",
    "GraphSnapshot",
    "DynamicGraph",
    "DEFAULT_FRAME_SIZE",
    "Frame",
    "FrameIterator",
    "Partition",
    "partition_frame",
    "IncrementalOverlapTracker",
    "SnapshotOverlap",
    "adjacent_change_rates",
    "change_rate",
    "extract_overlap",
    "group_overlap_rate",
    "pairwise_overlap_rate",
    "refine_overlap",
    "PARTITION_MODES",
    "SCHEDULE_MODES",
    "FramePartitioner",
    "FrameStage",
    "GraphPartitioner",
    "ShardGroup",
    "SnapshotShard",
    "apply_edge_life",
    "smoothened_edge_total",
    "GeneratorConfig",
    "generate_dynamic_graph",
    "TOPOLOGIES",
    "DATASET_ABBREVIATIONS",
    "DATASET_ORDER",
    "DatasetSpec",
    "PaperStats",
    "get_dataset_spec",
    "hidden_dim_for",
    "list_datasets",
    "load_dataset",
    "DegreeStats",
    "density",
    "format_sizes",
    "summarize",
]
