"""Synthetic dynamic-graph generators.

The paper evaluates on seven real datasets (Table 1) that are not shipped
here; instead each dataset is reproduced by a parameterized generator that
matches its statistically relevant properties — node count (scaled),
per-snapshot edge density, degree skew, feature dimension, snapshot count and
the ~10 % adjacent-snapshot topology change rate — because those are the
quantities the performance behaviour depends on (see DESIGN.md §2).

Topology processes
------------------
``preferential``
    Skewed (power-law-ish) degree distribution via preferential attachment,
    matching social/e-commerce networks.
``uniform``
    Erdős–Rényi-style uniform random edges, matching low-skew graphs.
``community``
    A stochastic-block-model-like structure with dense intra-community
    blocks, matching citation/contact networks with good locality.
``static``
    A fixed road-network-like topology (small-world ring lattice) whose
    edges never change, matching traffic-sensor graphs (PEMS08).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRMatrix
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.smoothing import apply_edge_life
from repro.graph.snapshot import GraphSnapshot
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_in_range, check_positive

TOPOLOGIES = ("preferential", "uniform", "community", "static")


# ---------------------------------------------------------------------------
# edge-set generation
# ---------------------------------------------------------------------------
def _sample_edges_uniform(num_nodes: int, num_edges: int, rng: np.random.Generator) -> np.ndarray:
    """Sample ``num_edges`` distinct directed edge keys uniformly (no self loops)."""
    if num_edges <= 0:
        return np.zeros(0, dtype=np.int64)
    max_edges = num_nodes * (num_nodes - 1)
    num_edges = min(num_edges, max_edges)
    keys: np.ndarray = np.zeros(0, dtype=np.int64)
    # Rejection-sample in bulk until we have enough distinct non-loop edges.
    while len(keys) < num_edges:
        need = int((num_edges - len(keys)) * 1.3) + 8
        rows = rng.integers(0, num_nodes, size=need, dtype=np.int64)
        cols = rng.integers(0, num_nodes, size=need, dtype=np.int64)
        mask = rows != cols
        new = rows[mask] * num_nodes + cols[mask]
        keys = np.union1d(keys, new)
    return rng.permutation(keys)[:num_edges]


def _sample_edges_preferential(
    num_nodes: int, num_edges: int, rng: np.random.Generator, skew: float = 1.0
) -> np.ndarray:
    """Sample distinct edges whose endpoints follow a skewed (Zipf-like) weight."""
    if num_edges <= 0:
        return np.zeros(0, dtype=np.int64)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    keys: np.ndarray = np.zeros(0, dtype=np.int64)
    while len(keys) < num_edges:
        need = int((num_edges - len(keys)) * 1.5) + 8
        rows = rng.choice(num_nodes, size=need, p=weights).astype(np.int64)
        cols = rng.integers(0, num_nodes, size=need, dtype=np.int64)
        mask = rows != cols
        new = rows[mask] * num_nodes + cols[mask]
        keys = np.union1d(keys, new)
    return rng.permutation(keys)[:num_edges]


def _sample_edges_community(
    num_nodes: int,
    num_edges: int,
    rng: np.random.Generator,
    num_communities: int = 8,
    intra_prob: float = 0.85,
) -> np.ndarray:
    """Sample distinct edges that mostly stay inside node communities."""
    if num_edges <= 0:
        return np.zeros(0, dtype=np.int64)
    num_communities = max(1, min(num_communities, num_nodes))
    community = rng.integers(0, num_communities, size=num_nodes)
    members = [np.flatnonzero(community == c) for c in range(num_communities)]
    members = [m for m in members if len(m) > 1] or [np.arange(num_nodes)]
    keys: np.ndarray = np.zeros(0, dtype=np.int64)
    while len(keys) < num_edges:
        need = int((num_edges - len(keys)) * 1.5) + 8
        intra = rng.random(need) < intra_prob
        rows = np.empty(need, dtype=np.int64)
        cols = np.empty(need, dtype=np.int64)
        # Intra-community edges: both endpoints from the same (random) block.
        comm_idx = rng.integers(0, len(members), size=need)
        for i in range(need):
            block = members[comm_idx[i]]
            if intra[i]:
                rows[i] = block[rng.integers(0, len(block))]
                cols[i] = block[rng.integers(0, len(block))]
            else:
                rows[i] = rng.integers(0, num_nodes)
                cols[i] = rng.integers(0, num_nodes)
        mask = rows != cols
        new = rows[mask] * num_nodes + cols[mask]
        keys = np.union1d(keys, new)
    return rng.permutation(keys)[:num_edges]


def _sample_edges_static(num_nodes: int, num_edges: int, rng: np.random.Generator) -> np.ndarray:
    """Road-network-like ring lattice with a few random chords (deterministic shape)."""
    if num_edges <= 0:
        return np.zeros(0, dtype=np.int64)
    nodes = np.arange(num_nodes, dtype=np.int64)
    hops = max(1, int(np.ceil(num_edges / (2 * num_nodes))))
    rows, cols = [], []
    for h in range(1, hops + 1):
        rows.append(nodes)
        cols.append((nodes + h) % num_nodes)
        rows.append(nodes)
        cols.append((nodes - h) % num_nodes)
    rows_arr = np.concatenate(rows)
    cols_arr = np.concatenate(cols)
    keys = np.unique(rows_arr * num_nodes + cols_arr)
    if len(keys) > num_edges:
        keys = rng.permutation(keys)[:num_edges]
    return np.sort(keys)


_EDGE_SAMPLERS = {
    "preferential": _sample_edges_preferential,
    "uniform": _sample_edges_uniform,
    "community": _sample_edges_community,
    "static": _sample_edges_static,
}


def evolve_edge_keys(
    keys: np.ndarray,
    num_nodes: int,
    change_rate: float,
    rng: np.random.Generator,
    topology: str,
) -> np.ndarray:
    """Produce the next snapshot's edge keys by rewiring ``change_rate`` of edges.

    Half the changed mass is edge removal and half is insertion of fresh edges
    drawn from the same topology process, so the expected edge count stays
    constant while the adjacent-snapshot Jaccard overlap lands near
    ``1 - change_rate``.
    """
    check_in_range("change_rate", change_rate, 0.0, 1.0)
    if topology == "static" or change_rate == 0.0 or len(keys) == 0:
        return keys.copy()
    num_change = int(round(len(keys) * change_rate / 2.0))
    if num_change == 0:
        return keys.copy()
    keep = rng.permutation(len(keys))[num_change:]
    survivors = keys[np.sort(keep)]
    sampler = _EDGE_SAMPLERS[topology]
    fresh = sampler(num_nodes, num_change * 3, rng)
    fresh = np.setdiff1d(fresh, survivors, assume_unique=False)[:num_change]
    return np.union1d(survivors, fresh)


# ---------------------------------------------------------------------------
# features and targets
# ---------------------------------------------------------------------------
def _make_features(
    num_nodes: int,
    feature_dim: int,
    num_snapshots: int,
    rng: np.random.Generator,
    drift: float = 0.05,
) -> List[np.ndarray]:
    """Per-snapshot node features: a static base plus a slow random drift."""
    base = rng.standard_normal((num_nodes, feature_dim)).astype(np.float32)
    features = []
    current = base
    for _ in range(num_snapshots):
        features.append(current.copy())
        current = current + drift * rng.standard_normal((num_nodes, feature_dim)).astype(
            np.float32
        )
    return features


def _make_targets(
    adjacencies: Sequence[CSRMatrix], features: Sequence[np.ndarray], rng: np.random.Generator
) -> List[np.ndarray]:
    """Node-level regression targets tied to the dynamics.

    The target of node ``v`` at time ``t`` is the (normalized) degree of ``v``
    at time ``t + 1`` plus a small noise term — a simple forecasting task that
    actually depends on both structure and time, so training has signal.
    """
    targets: List[np.ndarray] = []
    num_nodes = adjacencies[0].num_rows
    for t in range(len(adjacencies)):
        nxt = adjacencies[min(t + 1, len(adjacencies) - 1)]
        degree = nxt.row_nnz().astype(np.float32)
        scale = max(1.0, float(degree.max(initial=1.0)))
        signal = degree / scale + 0.1 * features[t][:, 0]
        noise = 0.05 * rng.standard_normal(num_nodes).astype(np.float32)
        targets.append((signal + noise).astype(np.float32))
    return targets


# ---------------------------------------------------------------------------
# public entry point
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of a synthetic dynamic graph."""

    num_nodes: int
    avg_degree: float
    feature_dim: int
    num_snapshots: int
    change_rate: float = 0.10
    topology: str = "preferential"
    edge_life: int = 1
    feature_drift: float = 0.05
    name: str = "synthetic"

    def __post_init__(self) -> None:
        check_positive("num_nodes", self.num_nodes)
        check_positive("feature_dim", self.feature_dim)
        check_positive("num_snapshots", self.num_snapshots)
        check_in_range("change_rate", self.change_rate, 0.0, 1.0)
        check_positive("edge_life", self.edge_life)
        if self.avg_degree < 0:
            raise ValueError("avg_degree must be >= 0")
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}")


def generate_dynamic_graph(config: GeneratorConfig, seed: SeedLike = 0) -> DynamicGraph:
    """Generate a synthetic :class:`DynamicGraph` from a :class:`GeneratorConfig`."""
    rng = as_rng(seed)
    n = config.num_nodes
    edges_per_snapshot = max(1, int(round(config.avg_degree * n)))
    sampler = _EDGE_SAMPLERS[config.topology]

    keys = sampler(n, edges_per_snapshot, rng)
    raw_adjacencies: List[CSRMatrix] = []
    for _ in range(config.num_snapshots):
        raw_adjacencies.append(CSRMatrix.from_edge_keys(keys, (n, n)))
        keys = evolve_edge_keys(keys, n, config.change_rate, rng, config.topology)

    adjacencies = (
        apply_edge_life(raw_adjacencies, config.edge_life)
        if config.edge_life > 1
        else raw_adjacencies
    )
    features = _make_features(n, config.feature_dim, config.num_snapshots, rng, config.feature_drift)
    targets = _make_targets(adjacencies, features, rng)

    snapshots = [
        GraphSnapshot(adjacency=adjacencies[t], features=features[t], targets=targets[t], timestep=t)
        for t in range(config.num_snapshots)
    ]
    metadata = {
        "generator": config.topology,
        "avg_degree": config.avg_degree,
        "change_rate": config.change_rate,
        "edge_life": config.edge_life,
        "raw_total_edges": sum(a.nnz for a in raw_adjacencies),
    }
    return DynamicGraph(snapshots=snapshots, name=config.name, metadata=metadata)
