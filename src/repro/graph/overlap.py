"""Topology-overlap extraction among adjacent snapshots (paper §4.1).

Real dynamic graphs evolve slowly (≈10 % of edges change between adjacent
snapshots), so a group of snapshots processed together shares most of its
topology.  PiPAD regroups the adjacency data of a partition into one
*overlap* adjacency (the intersection of all member snapshots) plus one
small *exclusive* adjacency per snapshot, which both reduces the transfer
volume and enables the parallel aggregation of §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import List, Sequence

import numpy as np

from repro.graph.csr import CSRMatrix


@dataclass(frozen=True)
class SnapshotOverlap:
    """The overlap decomposition of a group of snapshots.

    Attributes
    ----------
    overlap:
        Adjacency holding the edges present in *every* snapshot of the group.
    exclusives:
        One adjacency per snapshot holding its edges not in ``overlap``.
        ``overlap + exclusives[i]`` reconstructs snapshot ``i`` exactly.
    overlap_rate:
        ``|intersection| / |union|`` across the group (the paper's OR).
    """

    overlap: CSRMatrix
    exclusives: List[CSRMatrix]
    overlap_rate: float

    @property
    def group_size(self) -> int:
        return len(self.exclusives)

    @property
    def transfer_elements(self) -> int:
        """Total stored elements if the group is shipped as overlap+exclusives."""
        return self.overlap.nnz + sum(e.nnz for e in self.exclusives)

    @property
    def baseline_elements(self) -> int:
        """Total stored elements if every snapshot is shipped in full."""
        return sum(self.overlap.nnz + e.nnz for e in self.exclusives)

    @property
    def saved_fraction(self) -> float:
        """Fraction of adjacency elements the decomposition avoids transferring."""
        baseline = self.baseline_elements
        if baseline == 0:
            return 0.0
        return 1.0 - self.transfer_elements / baseline


def extract_overlap(adjacencies: Sequence[CSRMatrix]) -> SnapshotOverlap:
    """Decompose a snapshot group into overlap + exclusive adjacencies.

    All adjacencies must share the same shape.  The decomposition is exact:
    for every snapshot ``i``, ``overlap ∪ exclusives[i]`` equals the original
    edge set and the two parts are disjoint.
    """
    if not adjacencies:
        raise ValueError("need at least one adjacency")
    shape = adjacencies[0].shape
    for adj in adjacencies:
        if adj.shape != shape:
            raise ValueError("all adjacencies in a group must share the same shape")
    key_sets = [adj.edge_keys() for adj in adjacencies]
    if len(key_sets) == 1:
        overlap_keys = key_sets[0]
    else:
        overlap_keys = reduce(lambda a, b: np.intersect1d(a, b, assume_unique=True), key_sets)
    union_keys = reduce(lambda a, b: np.union1d(a, b), key_sets) if len(key_sets) > 1 else key_sets[0]
    exclusives = [
        CSRMatrix.from_edge_keys(np.setdiff1d(keys, overlap_keys, assume_unique=True), shape)
        for keys in key_sets
    ]
    overlap = CSRMatrix.from_edge_keys(overlap_keys, shape)
    rate = float(len(overlap_keys) / len(union_keys)) if len(union_keys) else 1.0
    return SnapshotOverlap(overlap=overlap, exclusives=exclusives, overlap_rate=rate)


def pairwise_overlap_rate(a: CSRMatrix, b: CSRMatrix) -> float:
    """Jaccard overlap ``|A ∩ B| / |A ∪ B|`` between two adjacency edge sets."""
    ka, kb = a.edge_keys(), b.edge_keys()
    if len(ka) == 0 and len(kb) == 0:
        return 1.0
    inter = len(np.intersect1d(ka, kb, assume_unique=True))
    union = len(ka) + len(kb) - inter
    return inter / union if union else 1.0


def group_overlap_rate(adjacencies: Sequence[CSRMatrix]) -> float:
    """Overlap rate (``|∩| / |∪|``) of a whole snapshot group."""
    return extract_overlap(adjacencies).overlap_rate


def change_rate(previous: CSRMatrix, current: CSRMatrix) -> float:
    """Fraction of the union edge set that changed between two snapshots.

    This is the statistic the paper quotes as the "changing rate of the
    topology among adjacent snapshots" (~10 % on average).
    """
    return 1.0 - pairwise_overlap_rate(previous, current)


def adjacent_change_rates(adjacencies: Sequence[CSRMatrix]) -> np.ndarray:
    """Change rate between every pair of consecutive adjacencies."""
    if len(adjacencies) < 2:
        return np.zeros(0, dtype=np.float64)
    return np.array(
        [change_rate(adjacencies[i], adjacencies[i + 1]) for i in range(len(adjacencies) - 1)]
    )
