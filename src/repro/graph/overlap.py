"""Topology-overlap extraction among adjacent snapshots (paper §4.1).

Real dynamic graphs evolve slowly (≈10 % of edges change between adjacent
snapshots), so a group of snapshots processed together shares most of its
topology.  PiPAD regroups the adjacency data of a partition into one
*overlap* adjacency (the intersection of all member snapshots) plus one
small *exclusive* adjacency per snapshot, which both reduces the transfer
volume and enables the parallel aggregation of §4.2.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import reduce
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRMatrix


@dataclass(frozen=True)
class SnapshotOverlap:
    """The overlap decomposition of a group of snapshots.

    Attributes
    ----------
    overlap:
        Adjacency holding the edges present in *every* snapshot of the group.
    exclusives:
        One adjacency per snapshot holding its edges not in ``overlap``.
        ``overlap + exclusives[i]`` reconstructs snapshot ``i`` exactly.
    overlap_rate:
        ``|intersection| / |union|`` across the group (the paper's OR).
    """

    overlap: CSRMatrix
    exclusives: List[CSRMatrix]
    overlap_rate: float

    @property
    def group_size(self) -> int:
        return len(self.exclusives)

    @property
    def transfer_elements(self) -> int:
        """Total stored elements if the group is shipped as overlap+exclusives."""
        return self.overlap.nnz + sum(e.nnz for e in self.exclusives)

    @property
    def baseline_elements(self) -> int:
        """Total stored elements if every snapshot is shipped in full."""
        return sum(self.overlap.nnz + e.nnz for e in self.exclusives)

    @property
    def saved_fraction(self) -> float:
        """Fraction of adjacency elements the decomposition avoids transferring."""
        baseline = self.baseline_elements
        if baseline == 0:
            return 0.0
        return 1.0 - self.transfer_elements / baseline


def extract_overlap(adjacencies: Sequence[CSRMatrix]) -> SnapshotOverlap:
    """Decompose a snapshot group into overlap + exclusive adjacencies.

    All adjacencies must share the same shape.  The decomposition is exact:
    for every snapshot ``i``, ``overlap ∪ exclusives[i]`` equals the original
    edge set and the two parts are disjoint.
    """
    if not adjacencies:
        raise ValueError("need at least one adjacency")
    shape = adjacencies[0].shape
    for adj in adjacencies:
        if adj.shape != shape:
            raise ValueError("all adjacencies in a group must share the same shape")
    key_sets = [adj.edge_keys() for adj in adjacencies]
    if len(key_sets) == 1:
        overlap_keys = key_sets[0]
    else:
        overlap_keys = reduce(lambda a, b: np.intersect1d(a, b, assume_unique=True), key_sets)
    union_keys = reduce(lambda a, b: np.union1d(a, b), key_sets) if len(key_sets) > 1 else key_sets[0]
    exclusives = [
        CSRMatrix.from_edge_keys(np.setdiff1d(keys, overlap_keys, assume_unique=True), shape)
        for keys in key_sets
    ]
    overlap = CSRMatrix.from_edge_keys(overlap_keys, shape)
    rate = float(len(overlap_keys) / len(union_keys)) if len(union_keys) else 1.0
    return SnapshotOverlap(overlap=overlap, exclusives=exclusives, overlap_rate=rate)


def pairwise_overlap_rate(a: CSRMatrix, b: CSRMatrix) -> float:
    """Jaccard overlap ``|A ∩ B| / |A ∪ B|`` between two adjacency edge sets."""
    ka, kb = a.edge_keys(), b.edge_keys()
    if len(ka) == 0 and len(kb) == 0:
        return 1.0
    inter = len(np.intersect1d(ka, kb, assume_unique=True))
    union = len(ka) + len(kb) - inter
    return inter / union if union else 1.0


def group_overlap_rate(adjacencies: Sequence[CSRMatrix]) -> float:
    """Overlap rate (``|∩| / |∪|``) of a whole snapshot group."""
    return extract_overlap(adjacencies).overlap_rate


def change_rate(previous: CSRMatrix, current: CSRMatrix) -> float:
    """Fraction of the union edge set that changed between two snapshots.

    This is the statistic the paper quotes as the "changing rate of the
    topology among adjacent snapshots" (~10 % on average).
    """
    return 1.0 - pairwise_overlap_rate(previous, current)


def adjacent_change_rates(adjacencies: Sequence[CSRMatrix]) -> np.ndarray:
    """Change rate between every pair of consecutive adjacencies."""
    if len(adjacencies) < 2:
        return np.zeros(0, dtype=np.float64)
    return np.array(
        [change_rate(adjacencies[i], adjacencies[i + 1]) for i in range(len(adjacencies) - 1)]
    )


def refine_overlap(decomposition: SnapshotOverlap, indices: Sequence[int]) -> SnapshotOverlap:
    """Decomposition of a *subgroup* derived from a whole-group decomposition.

    Shrinking a group can only grow its intersection, and every edge the
    subgroup shares beyond the full-group overlap must live in each member's
    (small) exclusive set.  Intersecting only the exclusives therefore yields
    the subgroup decomposition without touching the (large) overlap adjacency
    — the serving path uses this to build partition-level groups from the
    incrementally maintained window decomposition.
    """
    if not indices:
        raise ValueError("need at least one snapshot index")
    for i in indices:
        if not 0 <= i < decomposition.group_size:
            raise IndexError(f"snapshot index {i} out of range [0, {decomposition.group_size})")
    shape = decomposition.overlap.shape
    base_keys = decomposition.overlap.edge_keys()
    exclusive_keys = [decomposition.exclusives[i].edge_keys() for i in indices]
    promoted = reduce(
        lambda a, b: np.intersect1d(a, b, assume_unique=True), exclusive_keys
    )
    overlap_keys = np.union1d(base_keys, promoted)
    exclusives = [
        CSRMatrix.from_edge_keys(np.setdiff1d(keys, promoted, assume_unique=True), shape)
        for keys in exclusive_keys
    ]
    # base overlap and every exclusive are disjoint, so |∪| decomposes.
    union_size = len(base_keys) + len(
        reduce(np.union1d, exclusive_keys) if len(exclusive_keys) > 1 else exclusive_keys[0]
    )
    rate = float(len(overlap_keys) / union_size) if union_size else 1.0
    return SnapshotOverlap(
        overlap=CSRMatrix.from_edge_keys(overlap_keys, shape),
        exclusives=exclusives,
        overlap_rate=rate,
    )


class IncrementalOverlapTracker:
    """Maintains the overlap decomposition of a sliding snapshot window.

    The serving engine appends one snapshot version per graph delta and
    evicts the oldest one once the window is full.  Instead of re-running
    :func:`extract_overlap` over the whole window (which intersects all
    ``W`` member key sets), the tracker keeps a per-edge membership count:
    an edge belongs to the overlap exactly when its count equals the window
    length, and the union size is the number of live keys.  A push costs
    one vectorized merge over the pushed (and evicted) snapshot's keys —
    linear in a single snapshot's edge count, independent of the window
    length.
    """

    def __init__(self, shape: Tuple[int, int], capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.shape = shape
        self.capacity = capacity
        self._window: Deque[Tuple[int, np.ndarray]] = deque()
        #: sorted live keys and their window membership counts (parallel arrays)
        self._count_keys: np.ndarray = np.zeros(0, dtype=np.int64)
        self._count_vals: np.ndarray = np.zeros(0, dtype=np.int64)
        self._decomposition: Optional[SnapshotOverlap] = None

    # -- window management -------------------------------------------------
    def __len__(self) -> int:
        return len(self._window)

    @property
    def versions(self) -> List[int]:
        """Snapshot versions currently in the window, oldest first."""
        return [version for version, _ in self._window]

    def keys_of(self, version: int) -> np.ndarray:
        for v, keys in self._window:
            if v == version:
                return keys
        raise KeyError(f"version {version} not in window {self.versions}")

    def _decrement(self, keys: np.ndarray) -> None:
        if not len(keys):
            return
        idx = np.searchsorted(self._count_keys, keys)
        self._count_vals[idx] -= 1
        if np.any(self._count_vals[idx] == 0):
            alive = self._count_vals > 0
            self._count_keys = self._count_keys[alive]
            self._count_vals = self._count_vals[alive]

    def _increment(self, keys: np.ndarray) -> None:
        if not len(keys):
            return
        if len(self._count_keys):
            idx = np.searchsorted(self._count_keys, keys)
            clipped = np.minimum(idx, len(self._count_keys) - 1)
            present = self._count_keys[clipped] == keys
            self._count_vals[idx[present]] += 1
            fresh = keys[~present]
        else:
            fresh = keys
        if len(fresh):
            merged_keys = np.concatenate([self._count_keys, fresh])
            merged_vals = np.concatenate(
                [self._count_vals, np.ones(len(fresh), dtype=np.int64)]
            )
            order = np.argsort(merged_keys, kind="stable")
            self._count_keys = merged_keys[order]
            self._count_vals = merged_vals[order]

    def push(self, version: int, adjacency_or_keys) -> Optional[int]:
        """Append a snapshot version; returns the evicted version, if any."""
        if isinstance(adjacency_or_keys, CSRMatrix):
            keys = adjacency_or_keys.edge_keys()
        else:
            keys = np.unique(np.asarray(adjacency_or_keys, dtype=np.int64))
        evicted: Optional[int] = None
        if len(self._window) == self.capacity:
            evicted_version, evicted_keys = self._window.popleft()
            evicted = evicted_version
            self._decrement(evicted_keys)
        self._increment(keys)
        self._window.append((version, keys))
        self._decomposition = None
        return evicted

    # -- decomposition -----------------------------------------------------
    def decomposition(self) -> SnapshotOverlap:
        """Overlap/exclusive decomposition of the current window (cached)."""
        if not self._window:
            raise ValueError("tracker window is empty")
        if self._decomposition is None:
            full = len(self._window)
            overlap_keys = self._count_keys[self._count_vals == full]
            exclusives = [
                CSRMatrix.from_edge_keys(
                    np.setdiff1d(keys, overlap_keys, assume_unique=True), self.shape
                )
                for _, keys in self._window
            ]
            union_size = len(self._count_keys)
            rate = float(len(overlap_keys) / union_size) if union_size else 1.0
            self._decomposition = SnapshotOverlap(
                overlap=CSRMatrix.from_edge_keys(overlap_keys, self.shape),
                exclusives=exclusives,
                overlap_rate=rate,
            )
        return self._decomposition

    def overlap_rate(self) -> float:
        return self.decomposition().overlap_rate

    def refine(self, positions: Sequence[int]) -> SnapshotOverlap:
        """Decomposition of the window members at the given positions."""
        return refine_overlap(self.decomposition(), positions)
