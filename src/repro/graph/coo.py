"""Coordinate (COO) sparse-matrix format.

COO is the representation PyTorch Geometric ships graphs in (``edge_index``),
so the PyGT baseline transfers and aggregates from COO.  The format stores
three parallel arrays (row, col, value); see §4.1 of the paper for the space
comparison against CSR and the sliced CSR introduced by PiPAD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_array

#: bytes used per stored index / value element (int32 indices, float32 values)
INDEX_BYTES = 4
VALUE_BYTES = 4


@dataclass(frozen=True)
class COOMatrix:
    """An immutable COO sparse matrix.

    Attributes
    ----------
    rows, cols:
        ``int64`` arrays of length ``nnz`` with the coordinates of each
        stored element.
    values:
        ``float32`` array of length ``nnz``.
    shape:
        ``(n_rows, n_cols)``.
    """

    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    shape: Tuple[int, int]

    def __post_init__(self) -> None:
        rows = check_array("rows", self.rows, ndim=1, dtype_kind="iu")
        cols = check_array("cols", self.cols, ndim=1, dtype_kind="iu")
        values = check_array("values", self.values, ndim=1, dtype_kind="f")
        if not (len(rows) == len(cols) == len(values)):
            raise ValueError(
                f"rows/cols/values must have equal length, got {len(rows)}/{len(cols)}/{len(values)}"
            )
        n_rows, n_cols = self.shape
        if len(rows) and (rows.max(initial=0) >= n_rows or cols.max(initial=0) >= n_cols):
            raise ValueError("coordinate out of bounds for shape")
        object.__setattr__(self, "rows", np.ascontiguousarray(rows, dtype=np.int64))
        object.__setattr__(self, "cols", np.ascontiguousarray(cols, dtype=np.int64))
        object.__setattr__(self, "values", np.ascontiguousarray(values, dtype=np.float32))

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        shape: Tuple[int, int],
        values: np.ndarray | None = None,
        *,
        deduplicate: bool = True,
    ) -> "COOMatrix":
        """Build a COO matrix from edge lists, optionally deduplicating.

        Duplicate coordinates keep a single entry with value 1 (graphs here
        are unweighted adjacency structures; weights are produced later by
        GCN normalization).
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if values is None:
            values = np.ones(len(rows), dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        if deduplicate and len(rows):
            keys = rows * shape[1] + cols
            order = np.argsort(keys, kind="stable")
            keys, rows, cols, values = keys[order], rows[order], cols[order], values[order]
            keep = np.concatenate(([True], keys[1:] != keys[:-1]))
            rows, cols, values = rows[keep], cols[keep], values[keep]
        return cls(rows=rows, cols=cols, values=values, shape=shape)

    @classmethod
    def from_scipy(cls, mat: sp.spmatrix) -> "COOMatrix":
        coo = mat.tocoo()
        return cls(
            rows=coo.row.astype(np.int64),
            cols=coo.col.astype(np.int64),
            values=coo.data.astype(np.float32),
            shape=coo.shape,
        )

    # -- properties --------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) elements."""
        return int(len(self.values))

    @property
    def nbytes(self) -> int:
        """Storage footprint per the paper's accounting: ``3 * nnz`` elements."""
        return self.nnz * (2 * INDEX_BYTES + VALUE_BYTES)

    # -- conversions -------------------------------------------------------
    def to_scipy(self) -> sp.coo_matrix:
        return sp.coo_matrix((self.values, (self.rows, self.cols)), shape=self.shape)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float32)
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense

    def to_csr(self) -> "CSRMatrix":
        from repro.graph.csr import CSRMatrix

        return CSRMatrix.from_scipy(self.to_scipy().tocsr())

    def edge_keys(self) -> np.ndarray:
        """Return sorted ``row * n_cols + col`` keys identifying each edge."""
        keys = self.rows * self.shape[1] + self.cols
        return np.sort(keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
