"""Dataset registry mirroring Table 1 of the paper (scaled-down analogues).

Each entry reproduces one of the seven evaluation datasets with a synthetic
generator whose statistically relevant parameters (relative density, degree
skew, feature dimension, snapshot count, topology change rate, edge-life
smoothening) follow the original; node counts are scaled to laptop size.
The paper's raw statistics are kept alongside in :class:`PaperStats` so the
Table 1 benchmark can print both.

The paper sets the input feature dimension to 2 and the hidden dimension to
6 for the large-scale datasets, and 16/32 for the small-scale ones (§5.1);
the registry records those choices so trainers pick them up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import GeneratorConfig, generate_dynamic_graph
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class PaperStats:
    """Raw statistics of the original dataset as printed in Table 1."""

    num_nodes: int
    num_edges: int
    feature_dim: int
    num_snapshots: int
    smoothened_edges: int


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset analogue.

    Attributes
    ----------
    name:
        Registry key (lower-case, underscores).
    category:
        Application domain from Table 1 (social network, e-commerce, ...).
    scale:
        ``"large"`` or ``"small"`` — the paper's split that decides the
        input/hidden dimensions and the reachable parallelism level.
    config:
        Generator parameters of the scaled analogue.
    hidden_dim:
        Hidden dimension used by the DGNN models on this dataset (§5.1).
    paper:
        The original Table 1 statistics (unscaled).
    """

    name: str
    category: str
    scale: str
    config: GeneratorConfig
    hidden_dim: int
    paper: PaperStats
    description: str = ""


def _spec(
    name: str,
    category: str,
    scale: str,
    *,
    num_nodes: int,
    avg_degree: float,
    feature_dim: int,
    num_snapshots: int,
    change_rate: float,
    topology: str,
    edge_life: int,
    hidden_dim: int,
    paper: PaperStats,
    description: str,
) -> DatasetSpec:
    config = GeneratorConfig(
        num_nodes=num_nodes,
        avg_degree=avg_degree,
        feature_dim=feature_dim,
        num_snapshots=num_snapshots,
        change_rate=change_rate,
        topology=topology,
        edge_life=edge_life,
        name=name,
    )
    return DatasetSpec(
        name=name,
        category=category,
        scale=scale,
        config=config,
        hidden_dim=hidden_dim,
        paper=paper,
        description=description,
    )


# Scaled analogues.  "large" datasets keep feature dim 2 / hidden 6 and many
# nodes relative to the small ones; "small" datasets keep dim 16 / hidden 32.
_REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        _spec(
            "flickr",
            "social network",
            "large",
            num_nodes=2300,
            avg_degree=1.6,
            feature_dim=2,
            num_snapshots=33,
            change_rate=0.10,
            topology="preferential",
            edge_life=4,
            hidden_dim=6,
            paper=PaperStats(2_300_000, 33_100_000, 2, 132, 480_000_000),
            description="Dense social network with strong degree skew.",
        ),
        _spec(
            "youtube",
            "social network",
            "large",
            num_nodes=3200,
            avg_degree=0.06,
            feature_dim=2,
            num_snapshots=40,
            change_rate=0.12,
            topology="preferential",
            edge_life=3,
            hidden_dim=6,
            paper=PaperStats(3_200_000, 602_000, 2, 198, 11_000_000),
            description="Extremely sparse social network with many empty adjacency rows.",
        ),
        _spec(
            "amz_automotive",
            "e-commerce",
            "large",
            num_nodes=1100,
            avg_degree=0.45,
            feature_dim=2,
            num_snapshots=40,
            change_rate=0.10,
            topology="preferential",
            edge_life=5,
            hidden_dim=6,
            paper=PaperStats(1_100_000, 1_300_000, 2, 524, 55_000_000),
            description="Sparse co-purchase graph.",
        ),
        _spec(
            "epinions",
            "e-commerce",
            "large",
            num_nodes=727,
            avg_degree=2.2,
            feature_dim=2,
            num_snapshots=33,
            change_rate=0.08,
            topology="preferential",
            edge_life=4,
            hidden_dim=6,
            paper=PaperStats(727_000, 13_600_000, 2, 99, 78_000_000),
            description="Denser trust network.",
        ),
        _spec(
            "hepth",
            "citation network",
            "small",
            num_nodes=220,
            avg_degree=4.0,
            feature_dim=16,
            num_snapshots=43,
            change_rate=0.08,
            topology="community",
            edge_life=3,
            hidden_dim=32,
            paper=PaperStats(22_000, 2_600_000, 16, 214, 18_000_000),
            description="Citation network with community structure and good locality.",
        ),
        _spec(
            "pems08",
            "traffic network",
            "small",
            num_nodes=170,
            avg_degree=2.0,
            feature_dim=16,
            num_snapshots=30,
            change_rate=0.0,
            topology="static",
            edge_life=1,
            hidden_dim=32,
            paper=PaperStats(170, 7202, 16, 90, 7202),
            description="Static road-sensor topology; only features evolve.",
        ),
        _spec(
            "covid19_england",
            "disease transmission",
            "small",
            num_nodes=130,
            avg_degree=7.0,
            feature_dim=16,
            num_snapshots=30,
            change_rate=0.12,
            topology="community",
            edge_life=2,
            hidden_dim=32,
            paper=PaperStats(130, 82_000, 16, 61, 108_000),
            description="Dense mobility/contact graph between regions.",
        ),
    ]
}

#: dataset order used for the paper's figures (large first, then small)
DATASET_ORDER: List[str] = [
    "amz_automotive",
    "epinions",
    "flickr",
    "youtube",
    "hepth",
    "covid19_england",
    "pems08",
]

#: two-letter abbreviations used in Table 2
DATASET_ABBREVIATIONS: Dict[str, str] = {
    "amz_automotive": "AA",
    "epinions": "EP",
    "flickr": "FL",
    "youtube": "YT",
    "hepth": "HT",
    "covid19_england": "CE",
    "pems08": "PE",
}


def list_datasets() -> List[str]:
    """Names of all registered dataset analogues (in figure order)."""
    return list(DATASET_ORDER)


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up a :class:`DatasetSpec` by name (case-insensitive)."""
    key = name.lower().replace("-", "_")
    if key not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]


def load_dataset(
    name: str,
    seed: SeedLike = 0,
    *,
    num_snapshots: Optional[int] = None,
    scale: float = 1.0,
) -> DynamicGraph:
    """Generate the synthetic analogue of a Table 1 dataset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets`.
    seed:
        Generator seed (default 0 so repeated loads are identical).
    num_snapshots:
        Override the number of snapshots (e.g. to shorten a benchmark).
    scale:
        Multiplier on the node count (1.0 = the registry default).
    """
    spec = get_dataset_spec(name)
    config = spec.config
    if num_snapshots is not None or scale != 1.0:
        config = GeneratorConfig(
            num_nodes=max(8, int(round(config.num_nodes * scale))),
            avg_degree=config.avg_degree,
            feature_dim=config.feature_dim,
            num_snapshots=num_snapshots or config.num_snapshots,
            change_rate=config.change_rate,
            topology=config.topology,
            edge_life=config.edge_life,
            feature_drift=config.feature_drift,
            name=config.name,
        )
    graph = generate_dynamic_graph(config, seed=seed)
    graph.metadata.update(
        {
            "dataset": spec.name,
            "category": spec.category,
            "scale": spec.scale,
            "hidden_dim": spec.hidden_dim,
            # Parallelism cap observed in the paper's evaluation (§5.2): the
            # 16 GB V100 only fits 2-snapshot parallelism on the large-scale
            # datasets, while the small ones allow the full candidate set.
            "max_s_per": 2 if spec.scale == "large" else 8,
        }
    )
    return graph


def hidden_dim_for(name: str) -> int:
    """The hidden dimension the paper uses for this dataset (§5.1)."""
    return get_dataset_spec(name).hidden_dim
