"""Graph-statistics helpers used by the analysis and reporting code."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.graph.csr import CSRMatrix
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.sliced_csr import SlicedCSRMatrix


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a row-degree (out-degree) distribution."""

    mean: float
    std: float
    max: int
    empty_rows: int
    gini: float

    @classmethod
    def from_adjacency(cls, adj: CSRMatrix) -> "DegreeStats":
        deg = adj.row_nnz().astype(np.float64)
        return cls(
            mean=float(deg.mean()) if len(deg) else 0.0,
            std=float(deg.std()) if len(deg) else 0.0,
            max=int(deg.max(initial=0)),
            empty_rows=int((deg == 0).sum()),
            gini=_gini(deg),
        )


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (degree-skew measure)."""
    if len(values) == 0:
        return 0.0
    sorted_vals = np.sort(values)
    total = sorted_vals.sum()
    if total == 0:
        return 0.0
    n = len(sorted_vals)
    cum = np.cumsum(sorted_vals)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def density(adj: CSRMatrix) -> float:
    """Edge density ``nnz / (rows * cols)``."""
    cells = adj.num_rows * adj.num_cols
    return adj.nnz / cells if cells else 0.0


def format_sizes(adj: CSRMatrix, slice_capacity: int = 32) -> Dict[str, int]:
    """Byte footprint of the same adjacency in COO, CSR and sliced CSR."""
    sliced = SlicedCSRMatrix.from_csr(adj, slice_capacity=slice_capacity)
    return {
        "coo_bytes": adj.to_coo().nbytes,
        "csr_bytes": adj.nbytes,
        "sliced_csr_bytes": sliced.nbytes,
        "num_slices": sliced.num_slices,
    }


def summarize(graph: DynamicGraph) -> Dict[str, object]:
    """Dataset-level summary used by the Table 1 benchmark and examples."""
    edge_counts = graph.edge_counts()
    degrees = [DegreeStats.from_adjacency(s.adjacency) for s in graph.snapshots]
    return {
        "name": graph.name,
        "num_nodes": graph.num_nodes,
        "num_snapshots": graph.num_snapshots,
        "feature_dim": graph.feature_dim,
        "total_edges": int(edge_counts.sum()),
        "edges_per_snapshot_mean": float(edge_counts.mean()),
        "edges_per_snapshot_max": int(edge_counts.max()),
        "avg_degree": float(edge_counts.mean() / graph.num_nodes),
        "avg_change_rate": graph.average_change_rate(),
        "avg_empty_row_fraction": float(
            np.mean([d.empty_rows / graph.num_nodes for d in degrees])
        ),
        "degree_gini_mean": float(np.mean([d.gini for d in degrees])),
    }
