"""Frames (sliding windows) and partitions over a DTDG.

DTDG-based DGNN training feeds the model a *frame* of W consecutive
snapshots and slides the window forward by a stride of 1 (paper §2.1 and
§3.3: stride 1 maximizes temporal interaction and creates the inter-frame
overlap PiPAD reuses).  Inside a frame PiPAD further groups contiguous
snapshots into *partitions* of ``s_per`` snapshots, the unit of parallel
computation and of partition-grained transfer (§4.1/§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.snapshot import GraphSnapshot
from repro.utils.validation import check_positive

#: frame size used throughout the paper's evaluation (§5.1)
DEFAULT_FRAME_SIZE = 16


@dataclass(frozen=True)
class Frame:
    """A window of consecutive snapshots fed to the DGNN in one step."""

    snapshots: tuple
    index: int
    start: int

    @property
    def size(self) -> int:
        return len(self.snapshots)

    @property
    def timesteps(self) -> List[int]:
        return [s.timestep for s in self.snapshots]

    def __iter__(self) -> Iterator[GraphSnapshot]:
        return iter(self.snapshots)

    def __getitem__(self, i: int) -> GraphSnapshot:
        return self.snapshots[i]

    def __len__(self) -> int:
        return len(self.snapshots)


@dataclass(frozen=True)
class Partition:
    """A contiguous group of snapshots inside a frame, processed in parallel."""

    snapshots: tuple
    index: int
    frame_index: int

    @property
    def size(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[GraphSnapshot]:
        return iter(self.snapshots)

    def __getitem__(self, i: int) -> GraphSnapshot:
        return self.snapshots[i]

    def __len__(self) -> int:
        return len(self.snapshots)


class FrameIterator:
    """Iterates the sliding-window frames of a :class:`DynamicGraph`.

    Parameters
    ----------
    graph:
        The dynamic graph to window.
    frame_size:
        Number of snapshots per frame (paper default 16).
    stride:
        Forward stride of the window (paper default 1).
    """

    def __init__(
        self, graph: DynamicGraph, frame_size: int = DEFAULT_FRAME_SIZE, stride: int = 1
    ) -> None:
        check_positive("frame_size", frame_size)
        check_positive("stride", stride)
        if frame_size > graph.num_snapshots:
            raise ValueError(
                f"frame_size {frame_size} exceeds the number of snapshots {graph.num_snapshots}"
            )
        self.graph = graph
        self.frame_size = frame_size
        self.stride = stride

    @property
    def num_frames(self) -> int:
        return (self.graph.num_snapshots - self.frame_size) // self.stride + 1

    def __len__(self) -> int:
        return self.num_frames

    def __iter__(self) -> Iterator[Frame]:
        for idx in range(self.num_frames):
            start = idx * self.stride
            yield Frame(
                snapshots=tuple(self.graph.snapshots[start : start + self.frame_size]),
                index=idx,
                start=start,
            )

    def frame(self, index: int) -> Frame:
        if not 0 <= index < self.num_frames:
            raise IndexError(f"frame index {index} out of range [0, {self.num_frames})")
        start = index * self.stride
        return Frame(
            snapshots=tuple(self.graph.snapshots[start : start + self.frame_size]),
            index=index,
            start=start,
        )

    def overlap_with_next(self, index: int) -> int:
        """Number of snapshots frame ``index`` shares with frame ``index + 1``."""
        if index >= self.num_frames - 1:
            return 0
        return max(0, self.frame_size - self.stride)


def partition_frame(frame: Frame, s_per: int) -> List[Partition]:
    """Split a frame into partitions of (up to) ``s_per`` contiguous snapshots.

    Snapshots are distributed uniformly (paper §4.4: "we uniformly distribute
    the snapshots in single frame to each partition"); the final partition may
    be smaller when ``s_per`` does not divide the frame size.
    """
    check_positive("s_per", s_per)
    partitions: List[Partition] = []
    for p_idx, start in enumerate(range(0, frame.size, s_per)):
        partitions.append(
            Partition(
                snapshots=tuple(frame.snapshots[start : start + s_per]),
                index=p_idx,
                frame_index=frame.index,
            )
        )
    return partitions
