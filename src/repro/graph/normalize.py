"""GCN adjacency normalization.

Both the baselines and PiPAD aggregate over a normalized adjacency
``A_hat``: either the mean aggregator used by the paper's GCN description
(§2.1, "the aggregation processes the gathered features with mean function")
or the symmetric ``D^-1/2 (A + I) D^-1/2`` of Kipf & Welling.  Normalization
is a pure CPU-side preprocessing step; the kernels never renormalize.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRMatrix

_METHODS = ("mean", "sym", "none")


def add_self_loops(adj: CSRMatrix) -> CSRMatrix:
    """Return ``A + I`` (duplicate self loops are collapsed)."""
    n = adj.num_rows
    if n != adj.num_cols:
        raise ValueError("self loops require a square adjacency")
    eye = sp.identity(n, format="csr", dtype=np.float32)
    merged = adj.to_scipy().maximum(eye) if adj.nnz else eye
    return CSRMatrix.from_scipy(merged)


def gcn_normalize(
    adj: CSRMatrix, method: str = "mean", *, self_loops: bool = True
) -> CSRMatrix:
    """Normalize an adjacency matrix for GCN aggregation.

    Parameters
    ----------
    adj:
        Unweighted adjacency (values are ignored; the pattern matters).
    method:
        ``"mean"`` for row-mean aggregation ``D^-1 (A + I)``, ``"sym"`` for
        ``D^-1/2 (A + I) D^-1/2``, ``"none"`` to keep values as they are
        (after optional self loops).
    self_loops:
        Whether to add ``I`` before normalizing (the GCN convention).
    """
    if method not in _METHODS:
        raise ValueError(f"unknown normalization {method!r}; expected one of {_METHODS}")
    base = add_self_loops(adj) if self_loops else adj
    if method == "none":
        return base
    mat = base.to_scipy().astype(np.float64)
    degree = np.asarray(mat.sum(axis=1)).ravel()
    if method == "mean":
        inv = np.divide(1.0, degree, out=np.zeros_like(degree), where=degree > 0)
        normalized = sp.diags(inv) @ mat
    else:  # sym
        inv_sqrt = np.divide(
            1.0, np.sqrt(degree), out=np.zeros_like(degree), where=degree > 0
        )
        d_inv_sqrt = sp.diags(inv_sqrt)
        normalized = d_inv_sqrt @ mat @ d_inv_sqrt
    return CSRMatrix.from_scipy(normalized.astype(np.float32).tocsr())
