"""Graph snapshots: one timestep of a discrete-time dynamic graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.graph.csr import CSRMatrix
from repro.graph.normalize import gcn_normalize
from repro.utils.validation import check_array


@dataclass
class GraphSnapshot:
    """One DTDG snapshot: topology + node features (+ optional targets).

    Attributes
    ----------
    adjacency:
        Unweighted, possibly asymmetric adjacency over the global node set.
    features:
        ``float32`` node-feature matrix of shape ``(num_nodes, feature_dim)``.
    targets:
        Optional per-node regression targets, shape ``(num_nodes,)`` or
        ``(num_nodes, t)``.
    timestep:
        Position of this snapshot in the DTDG timeline.
    """

    adjacency: CSRMatrix
    features: np.ndarray
    targets: Optional[np.ndarray] = None
    timestep: int = 0
    _normalized_cache: Dict[str, CSRMatrix] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.features = check_array("features", self.features, ndim=2, dtype_kind="f").astype(
            np.float32, copy=False
        )
        if self.features.shape[0] != self.adjacency.num_rows:
            raise ValueError(
                f"features rows ({self.features.shape[0]}) must match adjacency rows "
                f"({self.adjacency.num_rows})"
            )
        if self.adjacency.num_rows != self.adjacency.num_cols:
            raise ValueError("snapshot adjacency must be square")
        if self.targets is not None:
            self.targets = np.asarray(self.targets, dtype=np.float32)
            if self.targets.shape[0] != self.num_nodes:
                raise ValueError("targets must have one entry per node")

    @property
    def num_nodes(self) -> int:
        return self.adjacency.num_rows

    @property
    def num_edges(self) -> int:
        return self.adjacency.nnz

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])

    def normalized_adjacency(self, method: str = "mean") -> CSRMatrix:
        """GCN-normalized adjacency, cached per normalization method."""
        if method not in self._normalized_cache:
            self._normalized_cache[method] = gcn_normalize(self.adjacency, method=method)
        return self._normalized_cache[method]

    def feature_bytes(self) -> int:
        """Host→device transfer size of the feature matrix."""
        return int(self.features.nbytes)

    def adjacency_bytes(self, fmt: str = "coo") -> int:
        """Host→device transfer size of the adjacency in a given format."""
        if fmt == "coo":
            return self.adjacency.to_coo().nbytes
        if fmt == "csr":
            return self.adjacency.nbytes
        if fmt == "csr+csc":
            # GE-SpMM keeps both orientations resident for backward (§5.2).
            return self.adjacency.nbytes + self.adjacency.transpose().nbytes
        raise ValueError(f"unknown adjacency format {fmt!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GraphSnapshot(t={self.timestep}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, dim={self.feature_dim})"
        )
