"""PiPAD's slice-based graph representation (sliced CSR), §4.1 of the paper.

Each CSR row is divided into *slices* holding at most ``slice_capacity``
non-zeros.  The ``Row Offsets`` array of CSR is replaced by two arrays:

- ``row_indices`` (RI): the row index of every slice, and
- ``slice_offsets`` (SO): the offset of the first element of each slice in
  the shared ``col_indices``/``values`` arrays.

The finer granularity (a) makes the slice the unit of overlap extraction and
transfer, and (b) bounds the per-warp work in the aggregation kernel, which
is what improves SpMM load balance (Fig. 12).  Space usage is
``2*nnz + 2*num_slices + 1`` elements versus CSR's ``2*nnz + n_rows + 1``
and COO's ``3*nnz`` (paper §4.1, "Space overhead").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.graph.coo import INDEX_BYTES
from repro.graph.csr import CSRMatrix
from repro.utils.validation import check_array, check_positive

#: default maximum number of non-zeros held by one slice (paper §4.1: 32)
DEFAULT_SLICE_CAPACITY = 32


@dataclass(frozen=True)
class SlicedCSRMatrix:
    """An immutable sliced-CSR sparse matrix.

    Attributes
    ----------
    row_indices:
        ``int64`` array of length ``num_slices``: the row each slice belongs to.
    slice_offsets:
        ``int64`` array of length ``num_slices + 1``: offsets into
        ``col_indices`` delimiting each slice.
    col_indices, values:
        Shared element arrays, identical in content to the source CSR.
    shape:
        ``(n_rows, n_cols)``.
    slice_capacity:
        Upper bound on non-zeros per slice.
    """

    row_indices: np.ndarray
    slice_offsets: np.ndarray
    col_indices: np.ndarray
    values: np.ndarray
    shape: Tuple[int, int]
    slice_capacity: int = DEFAULT_SLICE_CAPACITY

    def __post_init__(self) -> None:
        check_positive("slice_capacity", self.slice_capacity)
        row_indices = check_array("row_indices", self.row_indices, ndim=1, dtype_kind="iu")
        slice_offsets = check_array("slice_offsets", self.slice_offsets, ndim=1, dtype_kind="iu")
        col_indices = check_array("col_indices", self.col_indices, ndim=1, dtype_kind="iu")
        values = check_array("values", self.values, ndim=1, dtype_kind="f")
        if len(slice_offsets) != len(row_indices) + 1:
            raise ValueError("slice_offsets must have length num_slices + 1")
        if len(slice_offsets) and (slice_offsets[0] != 0 or slice_offsets[-1] != len(col_indices)):
            raise ValueError("slice_offsets must start at 0 and end at nnz")
        sizes = np.diff(slice_offsets)
        if np.any(sizes <= 0) and len(sizes):
            raise ValueError("every slice must hold at least one element")
        if len(sizes) and sizes.max(initial=0) > self.slice_capacity:
            raise ValueError("a slice exceeds slice_capacity")
        if len(row_indices) and row_indices.max(initial=0) >= self.shape[0]:
            raise ValueError("row index out of bounds")
        object.__setattr__(self, "row_indices", np.ascontiguousarray(row_indices, dtype=np.int64))
        object.__setattr__(
            self, "slice_offsets", np.ascontiguousarray(slice_offsets, dtype=np.int64)
        )
        object.__setattr__(self, "col_indices", np.ascontiguousarray(col_indices, dtype=np.int64))
        object.__setattr__(self, "values", np.ascontiguousarray(values, dtype=np.float32))

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_csr(
        cls, csr: CSRMatrix, slice_capacity: int = DEFAULT_SLICE_CAPACITY
    ) -> "SlicedCSRMatrix":
        """Slice a CSR matrix; the element arrays are shared, only the row
        bookkeeping changes, so slicing is O(num_slices)."""
        check_positive("slice_capacity", slice_capacity)
        row_nnz = csr.row_nnz()
        slices_per_row = -(-row_nnz // slice_capacity)  # ceil; 0 for empty rows
        num_slices = int(slices_per_row.sum())
        if num_slices == 0:
            return cls(
                row_indices=np.zeros(0, dtype=np.int64),
                slice_offsets=np.zeros(1, dtype=np.int64),
                col_indices=csr.indices,
                values=csr.data,
                shape=csr.shape,
                slice_capacity=slice_capacity,
            )
        row_of_slice = np.repeat(np.arange(csr.num_rows, dtype=np.int64), slices_per_row)
        # Position of each slice within its own row (0, 1, 2, ...).
        first_slice_of_row = np.concatenate(([0], np.cumsum(slices_per_row)[:-1]))
        within_row = np.arange(num_slices, dtype=np.int64) - np.repeat(
            first_slice_of_row, slices_per_row
        )
        starts = csr.indptr[row_of_slice] + within_row * slice_capacity
        slice_offsets = np.concatenate((starts, [csr.nnz])).astype(np.int64)
        return cls(
            row_indices=row_of_slice,
            slice_offsets=slice_offsets,
            col_indices=csr.indices,
            values=csr.data,
            shape=csr.shape,
            slice_capacity=slice_capacity,
        )

    # -- properties --------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(len(self.values))

    @property
    def num_slices(self) -> int:
        return int(len(self.row_indices))

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def nbytes(self) -> int:
        """Storage per the paper's accounting: ``2*nnz + 2*num_slices + 1``."""
        return (2 * self.nnz + 2 * self.num_slices + 1) * INDEX_BYTES

    def slice_nnz(self) -> np.ndarray:
        """Per-slice element counts (all ``<= slice_capacity``)."""
        return np.diff(self.slice_offsets)

    # -- conversions & numerics -------------------------------------------
    def to_csr(self) -> CSRMatrix:
        """Rebuild the equivalent CSR matrix (lossless round trip)."""
        row_counts = np.zeros(self.num_rows, dtype=np.int64)
        if self.num_slices:
            np.add.at(row_counts, self.row_indices, self.slice_nnz())
        indptr = np.concatenate(([0], np.cumsum(row_counts))).astype(np.int64)
        return CSRMatrix(
            indptr=indptr, indices=self.col_indices, data=self.values, shape=self.shape
        )

    def matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        """Reference sparse @ dense product via the CSR equivalent."""
        return self.to_csr().matmul_dense(dense)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SlicedCSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"num_slices={self.num_slices}, capacity={self.slice_capacity})"
        )
