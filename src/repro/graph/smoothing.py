"""Edge-life graph smoothening.

Raw interaction streams (e.g. Network Repository temporal graphs) yield
extremely sparse per-snapshot edge sets.  Following ESDG — whose smoothened
edge counts the paper reports as ``#E-S`` in Table 1 — every edge observed at
timestep ``t`` is kept alive for ``edge_life`` subsequent snapshots, which
densifies snapshots and raises the topology overlap between neighbours.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.graph.csr import CSRMatrix
from repro.utils.validation import check_positive


def apply_edge_life(
    adjacencies: Sequence[CSRMatrix], edge_life: int
) -> List[CSRMatrix]:
    """Smoothen a snapshot sequence with the edge-life rule.

    The output adjacency at timestep ``t`` is the union of the raw edges
    observed at timesteps ``max(0, t - edge_life + 1) .. t``.

    Parameters
    ----------
    adjacencies:
        Raw per-snapshot adjacencies (all the same shape).
    edge_life:
        Number of snapshots an edge stays alive (1 = no smoothening).
    """
    check_positive("edge_life", edge_life)
    if not adjacencies:
        return []
    shape = adjacencies[0].shape
    for adj in adjacencies:
        if adj.shape != shape:
            raise ValueError("all adjacencies must share the same shape")
    if edge_life == 1:
        return list(adjacencies)

    keys = [adj.edge_keys() for adj in adjacencies]
    smoothened: List[CSRMatrix] = []
    for t in range(len(adjacencies)):
        window = keys[max(0, t - edge_life + 1) : t + 1]
        union = window[0]
        for extra in window[1:]:
            union = np.union1d(union, extra)
        smoothened.append(CSRMatrix.from_edge_keys(union, shape))
    return smoothened


def smoothened_edge_total(adjacencies: Sequence[CSRMatrix], edge_life: int) -> int:
    """Total edge count across all snapshots after smoothening (Table 1 ``#E-S``)."""
    return sum(adj.nnz for adj in apply_edge_life(adjacencies, edge_life))
