"""Compressed Sparse Row (CSR) format.

CSR is the canonical layout GNN aggregation kernels (GE-SpMM, GNNAdvisor)
operate on: ``indptr`` gives per-row extents, ``indices``/``data`` the
column coordinates and values.  The paper's GE-SpMM baseline additionally
requires the CSC transpose for backward propagation (§5.2), which is exposed
here via :meth:`CSRMatrix.transpose`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.coo import INDEX_BYTES, VALUE_BYTES, COOMatrix
from repro.utils.validation import check_array


@dataclass(frozen=True)
class CSRMatrix:
    """An immutable CSR sparse matrix backed by NumPy arrays.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n_rows + 1``; row ``r`` owns the slice
        ``indices[indptr[r]:indptr[r + 1]]``.
    indices:
        ``int64`` column indices, length ``nnz``.
    data:
        ``float32`` stored values, length ``nnz``.
    shape:
        ``(n_rows, n_cols)``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: Tuple[int, int]

    def __post_init__(self) -> None:
        indptr = check_array("indptr", self.indptr, ndim=1, dtype_kind="iu")
        indices = check_array("indices", self.indices, ndim=1, dtype_kind="iu")
        data = check_array("data", self.data, ndim=1, dtype_kind="f")
        n_rows, n_cols = self.shape
        if len(indptr) != n_rows + 1:
            raise ValueError(f"indptr must have length n_rows+1={n_rows + 1}, got {len(indptr)}")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(indices) != len(data):
            raise ValueError("indices and data must have equal length")
        if len(indices) and indices.max(initial=0) >= n_cols:
            raise ValueError("column index out of bounds")
        object.__setattr__(self, "indptr", np.ascontiguousarray(indptr, dtype=np.int64))
        object.__setattr__(self, "indices", np.ascontiguousarray(indices, dtype=np.int64))
        object.__setattr__(self, "data", np.ascontiguousarray(data, dtype=np.float32))

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_scipy(cls, mat: sp.spmatrix) -> "CSRMatrix":
        csr = mat.tocsr()
        csr.sort_indices()
        return cls(
            indptr=csr.indptr.astype(np.int64),
            indices=csr.indices.astype(np.int64),
            data=csr.data.astype(np.float32),
            shape=csr.shape,
        )

    @classmethod
    def from_edges(
        cls, rows: np.ndarray, cols: np.ndarray, shape: Tuple[int, int]
    ) -> "CSRMatrix":
        """Build an unweighted CSR adjacency from (deduplicated) edge lists."""
        return COOMatrix.from_edges(rows, cols, shape).to_csr()

    @classmethod
    def from_edge_keys(cls, keys: np.ndarray, shape: Tuple[int, int]) -> "CSRMatrix":
        """Build from flat ``row * n_cols + col`` edge keys (values set to 1)."""
        keys = np.asarray(keys, dtype=np.int64)
        rows, cols = np.divmod(keys, shape[1])
        return cls.from_edges(rows, cols, shape)

    @classmethod
    def empty(cls, shape: Tuple[int, int]) -> "CSRMatrix":
        return cls(
            indptr=np.zeros(shape[0] + 1, dtype=np.int64),
            indices=np.zeros(0, dtype=np.int64),
            data=np.zeros(0, dtype=np.float32),
            shape=shape,
        )

    # -- properties --------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(len(self.data))

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def nbytes(self) -> int:
        """Storage per the paper's accounting: ``2*nnz + n_rows + 1`` elements."""
        return (2 * self.nnz + self.num_rows + 1) * INDEX_BYTES

    def row_nnz(self) -> np.ndarray:
        """Per-row number of stored elements (the out-degree for adjacencies)."""
        return np.diff(self.indptr)

    def edge_keys(self) -> np.ndarray:
        """Sorted flat ``row * n_cols + col`` keys identifying each edge."""
        rows = np.repeat(np.arange(self.num_rows, dtype=np.int64), self.row_nnz())
        keys = rows * self.num_cols + self.indices
        return np.sort(keys)

    # -- conversions & numerics -------------------------------------------
    def to_scipy(self) -> sp.csr_matrix:
        return sp.csr_matrix((self.data, self.indices, self.indptr), shape=self.shape)

    def to_coo(self) -> COOMatrix:
        return COOMatrix.from_scipy(self.to_scipy())

    def to_dense(self) -> np.ndarray:
        return np.asarray(self.to_scipy().todense(), dtype=np.float32)

    def transpose(self) -> "CSRMatrix":
        """Return the transpose as CSR (equivalently, this matrix in CSC)."""
        return CSRMatrix.from_scipy(self.to_scipy().T.tocsr())

    def matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        """Reference sparse @ dense product (the aggregation numerics)."""
        dense = np.asarray(dense, dtype=np.float32)
        if dense.shape[0] != self.num_cols:
            raise ValueError(
                f"dimension mismatch: sparse is {self.shape}, dense is {dense.shape}"
            )
        return np.asarray(self.to_scipy() @ dense, dtype=np.float32)

    def with_values(self, values: np.ndarray) -> "CSRMatrix":
        """Return a copy with the same sparsity pattern but new values."""
        values = np.asarray(values, dtype=np.float32)
        if values.shape != self.data.shape:
            raise ValueError("values must match nnz")
        return CSRMatrix(indptr=self.indptr, indices=self.indices, data=values, shape=self.shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
