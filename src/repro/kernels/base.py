"""Base class shared by the aggregation kernels.

An aggregation kernel owns one sparse adjacency, performs the actual
``A @ X`` / ``A^T @ dY`` numerics with SciPy, and — independently — estimates
what the same operation costs on the simulated GPU.  Subclasses implement
only the cost estimate; the numerics are identical across kernels (that is
the point: PyG, GE-SpMM and PiPAD's parallel kernel compute the same values,
they differ in memory behaviour).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRMatrix
from repro.gpu.kernel_cost import KernelCost
from repro.gpu.spec import GPUSpec


class BaseAggregationKernel:
    """Common numerics and bookkeeping for aggregation kernels.

    Parameters
    ----------
    adjacency:
        The sparse operand (unnormalized adjacency or any CSR matrix).
    spec:
        Simulated GPU spec used by the cost estimators.
    scale:
        Workload-extrapolation factor applied to extensive cost quantities
        (see ``repro.gpu.profiler`` for the rationale).
    """

    #: kernel family name, overridden by subclasses
    name = "aggregation"

    def __init__(self, adjacency: CSRMatrix, spec: Optional[GPUSpec] = None, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be > 0")
        self.adjacency = adjacency
        self.spec = spec or GPUSpec()
        self.scale = float(scale)
        self._forward_mat: sp.csr_matrix = adjacency.to_scipy()
        self._backward_mat: Optional[sp.csr_matrix] = None

    # -- numerics ------------------------------------------------------------
    def forward(self, dense: np.ndarray) -> np.ndarray:
        """Compute ``A @ dense``."""
        dense = np.asarray(dense, dtype=np.float32)
        if dense.shape[0] != self.adjacency.num_cols:
            raise ValueError(
                f"dense rows ({dense.shape[0]}) must match adjacency cols ({self.adjacency.num_cols})"
            )
        return np.asarray(self._forward_mat @ dense, dtype=np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Compute ``A^T @ grad`` (gradient w.r.t. the dense operand)."""
        if self._backward_mat is None:
            self._backward_mat = self._forward_mat.T.tocsr()
        grad = np.asarray(grad, dtype=np.float32)
        return np.asarray(self._backward_mat @ grad, dtype=np.float32)

    # -- cost ------------------------------------------------------------------
    def forward_cost(self, dense_shape: Tuple[int, int]) -> KernelCost:
        """Cost of the forward aggregation; implemented by subclasses."""
        raise NotImplementedError

    def backward_cost(self, grad_shape: Tuple[int, int]) -> KernelCost:
        """Cost of the backward aggregation.

        Default: same access pattern as forward applied to the transposed
        adjacency (same nnz, in-degree distribution instead of out-degree).
        """
        return self.forward_cost(grad_shape)

    # -- helpers -----------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self.adjacency.nnz

    @property
    def num_rows(self) -> int:
        return self.adjacency.num_rows

    def _feature_dim(self, dense_shape: Tuple[int, int]) -> int:
        if len(dense_shape) != 2:
            raise ValueError(f"dense operand must be 2-D, got shape {dense_shape}")
        return int(dense_shape[1])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(nnz={self.nnz}, rows={self.num_rows}, scale={self.scale})"
