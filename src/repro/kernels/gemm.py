"""Update-phase GEMM with locality-optimized weight reuse (§4.2, ❹ in Fig. 6).

The GCN update multiplies aggregated features ``(N, F_in)`` by the weight
``(F_in, F_out)``.  Without reuse, every snapshot's GEMM re-stages the weight
tiles from global memory block by block; PiPAD keeps one weight tile resident
in shared memory and sweeps the features of *all* snapshots in the partition
before moving to the next tile, so the weight traffic is paid once per
partition instead of once per snapshot.  This module provides both the
autograd op (:func:`update_gemm`) used by the parallel GNN executor and the
pure cost estimator used for ablation benches.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gpu.kernel_cost import CATEGORY_UPDATE, KernelCost
from repro.gpu.memory_model import FLOAT_BYTES, contiguous_bytes_cost
from repro.gpu.spec import GPUSpec
from repro.tensor.function import Function
from repro.tensor.tensor import Tensor

#: rows of the dense operand handled by one thread block of the tiled GEMM
_GEMM_BLOCK_ROWS = 64


def update_gemm_cost(
    num_rows: int,
    in_features: int,
    out_features: int,
    spec: GPUSpec,
    *,
    reuse_group: int = 1,
    scale: float = 1.0,
    direction: str = "fwd",
) -> KernelCost:
    """Cost of one snapshot's update GEMM inside a reuse group of ``reuse_group``.

    ``reuse_group = 1`` models the canonical per-snapshot GEMM; larger values
    amortize the weight-tile traffic across the group (PiPAD's weight reuse).
    """
    if reuse_group <= 0:
        raise ValueError("reuse_group must be > 0")
    rows = num_rows * scale
    flops = 2.0 * rows * in_features * out_features
    x_bytes = rows * in_features * FLOAT_BYTES
    out_bytes = rows * out_features * FLOAT_BYTES
    num_blocks = max(1, int(np.ceil(rows / _GEMM_BLOCK_ROWS)))
    # Each block stages the weight tile from global memory; with reuse the
    # staging is shared by all snapshots of the group.
    weight_bytes = num_blocks * in_features * out_features * FLOAT_BYTES / reuse_group
    access = contiguous_bytes_cost(x_bytes + weight_bytes + out_bytes, spec)
    return KernelCost(
        name=f"update_gemm_{direction}",
        category=CATEGORY_UPDATE,
        flops=flops if direction == "fwd" else 2.0 * flops,
        global_read_bytes=x_bytes + weight_bytes,
        global_write_bytes=out_bytes,
        mem_requests=access.requests,
        mem_transactions=access.transactions,
        active_thread_ratio=1.0,
        num_blocks=num_blocks,
        shared_mem_bytes=in_features * out_features * FLOAT_BYTES,
        launches=1 if direction == "fwd" else 2,
    )


class UpdateGEMM(Function):
    """``y = x @ W + b`` with an explicit weight-reuse-aware cost."""

    op_name = "update_gemm"

    def forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        reuse_group: int,
        spec: GPUSpec,
        scale: float,
    ) -> np.ndarray:
        self.x, self.weight, self.has_bias = x, weight, bias is not None
        self.reuse_group, self.spec, self.scale = reuse_group, spec, scale
        self.extra_attrs = {
            "kernel_cost": update_gemm_cost(
                x.shape[0],
                weight.shape[0],
                weight.shape[1],
                spec,
                reuse_group=reuse_group,
                scale=scale,
                direction="fwd",
            ),
            "scope": "update",
        }
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out

    def backward(self, grad: np.ndarray):
        self.extra_attrs = {
            "kernel_cost": update_gemm_cost(
                self.x.shape[0],
                self.weight.shape[0],
                self.weight.shape[1],
                self.spec,
                reuse_group=self.reuse_group,
                scale=self.scale,
                direction="bwd",
            ),
            "scope": "update",
        }
        grad_x = grad @ self.weight.T
        grad_w = self.x.T @ grad
        grad_b = grad.sum(axis=0) if self.has_bias else None
        return grad_x, grad_w, grad_b, None, None, None


def update_gemm(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor],
    *,
    reuse_group: int = 1,
    spec: Optional[GPUSpec] = None,
    scale: float = 1.0,
) -> Tensor:
    """Differentiable update GEMM with weight-reuse-aware cost accounting."""
    return UpdateGEMM.apply(x, weight, bias, reuse_group, spec or GPUSpec(), scale)
