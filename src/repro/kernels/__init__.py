"""Computational kernels: aggregation (SpMM flavours) and update GEMM.

Every kernel computes exact numerics with NumPy/SciPy and independently
reports a :class:`~repro.gpu.kernel_cost.KernelCost` describing what the same
operation costs on the simulated GPU, so baselines and PiPAD produce
identical values while exhibiting the paper's performance differences.
"""

from repro.kernels.base import BaseAggregationKernel
from repro.kernels.spmm_coo import PyGCOOAggregation
from repro.kernels.spmm_csr import GESpMMAggregation
from repro.kernels.spmm_sliced import SlicedParallelAggregation
from repro.kernels.gemm import UpdateGEMM, update_gemm, update_gemm_cost
from repro.kernels.registry import (
    AGGREGATION_KERNELS,
    get_aggregation_kernel,
    register_aggregation_kernel,
)

__all__ = [
    "BaseAggregationKernel",
    "PyGCOOAggregation",
    "GESpMMAggregation",
    "SlicedParallelAggregation",
    "UpdateGEMM",
    "update_gemm",
    "update_gemm_cost",
    "AGGREGATION_KERNELS",
    "get_aggregation_kernel",
    "register_aggregation_kernel",
]
