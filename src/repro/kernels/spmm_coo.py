"""PyG-style COO gather/scatter aggregation (the PyGT baseline kernel).

PyTorch Geometric's default message passing materializes per-edge messages:
a *gather* kernel reads the source-node feature row of every edge and a
*scatter-add* kernel accumulates messages into destination rows with atomic
additions.  Feature rows are accessed per edge with no reuse, so the traffic
is proportional to ``nnz`` full feature rows in both directions, each padded
to the 32-byte transaction granularity (the §3.2 inefficiencies apply in
full).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.gpu.kernel_cost import CATEGORY_AGGREGATION, KernelCost
from repro.gpu.memory_model import FLOAT_BYTES, contiguous_bytes_cost, row_access
from repro.kernels.base import BaseAggregationKernel

#: bytes per COO edge entry transferred to the kernel (two int32 indices)
_EDGE_INDEX_BYTES = 8
#: effective transaction multiplier for atomic read-modify-write accumulation
_ATOMIC_PENALTY = 2.0
#: achieved fraction of sustained bandwidth for fully irregular per-edge
#: gather/scatter traffic (uncached random accesses)
_COO_BANDWIDTH_EFFICIENCY = 0.30


class PyGCOOAggregation(BaseAggregationKernel):
    """Gather + scatter-add aggregation over a COO edge list."""

    name = "spmm_coo_pyg"

    def forward_cost(self, dense_shape: Tuple[int, int]) -> KernelCost:
        feature_dim = self._feature_dim(dense_shape)
        nnz = self.nnz * self.scale
        rows = self.num_rows * self.scale

        per_edge = row_access(feature_dim, self.spec)
        # gather: read the source feature row of every edge, then materialize
        # the per-edge message in a temporary (nnz, F) buffer
        gather_requests = 2 * nnz * per_edge.requests
        gather_transactions = 2 * nnz * per_edge.transactions
        # scatter: read the message buffer back and atomically accumulate it
        # into the destination row
        scatter_transactions = nnz * per_edge.transactions * (1.0 + _ATOMIC_PENALTY)
        scatter_requests = 2 * nnz * per_edge.requests
        index_cost = contiguous_bytes_cost(2 * nnz * _EDGE_INDEX_BYTES, self.spec)

        read_bytes = nnz * (2 * feature_dim * FLOAT_BYTES + 2 * _EDGE_INDEX_BYTES)
        write_bytes = 2 * nnz * feature_dim * FLOAT_BYTES + rows * feature_dim * FLOAT_BYTES

        return KernelCost(
            name=self.name,
            category=CATEGORY_AGGREGATION,
            flops=2.0 * nnz * feature_dim,
            global_read_bytes=read_bytes,
            global_write_bytes=write_bytes,
            mem_requests=gather_requests + scatter_requests + index_cost.requests,
            mem_transactions=gather_transactions + scatter_transactions + index_cost.transactions,
            active_thread_ratio=1.0,
            imbalance=1.0,
            num_blocks=max(1, int(np.ceil(nnz * feature_dim / 256.0))),
            launches=2,
            bandwidth_efficiency=_COO_BANDWIDTH_EFFICIENCY,
        )
