"""PiPAD's dimension-aware parallel aggregation over sliced CSR (§4.2, Alg. 1).

One kernel instance aggregates the *overlap* adjacency of a snapshot group
against the group's coalescent feature matrix (``F_total = F * S_per``
columns), or an exclusive per-snapshot adjacency against that snapshot's own
features.  Three paper optimizations are modelled:

- **coalescent features**: one traversal of the shared topology serves all
  snapshots in the group, and one feature access covers ``F_total`` useful
  floats, curing bandwidth unsaturation for small dimensions;
- **thread-aware slice coalescing**: when ``F_total < 32`` the warp is split
  into up to four thread groups, each owning one slice, raising the active
  thread ratio;
- **vector memory instructions**: when ``F_total > 32`` wide loads shrink the
  number of warp-level requests (the request-burst cure).

Load balance follows the slice-capacity bound rather than the raw degree
distribution, which is the effect Fig. 12 measures.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gpu.kernel_cost import CATEGORY_AGGREGATION, KernelCost
from repro.gpu.load_balance import analyze_block_work, block_work_from_slice_nnz
from repro.gpu.memory_model import FLOAT_BYTES, contiguous_bytes_cost, row_access
from repro.gpu.spec import GPUSpec
from repro.gpu.warp_model import choose_coalesce_num, coalesced_active_thread_ratio
from repro.graph.csr import CSRMatrix
from repro.graph.sliced_csr import DEFAULT_SLICE_CAPACITY, SlicedCSRMatrix
from repro.kernels.base import BaseAggregationKernel

#: bytes per adjacency non-zero staged through shared memory (index + value)
_NNZ_BYTES = 8
#: slices handled per thread block
_SLICES_PER_BLOCK = 8
#: extra write traffic factor for the final atomicAdd accumulation (Alg. 1, l. 30)
_ATOMIC_WRITE_PENALTY = 1.5
#: achieved fraction of sustained bandwidth: interleaved slice staging plus
#: coalescent feature rows make accesses wider and more regular than the
#: row-per-warp CSR kernel
_SLICED_BANDWIDTH_EFFICIENCY = 0.55


class SlicedParallelAggregation(BaseAggregationKernel):
    """Slice-grained aggregation kernel used by PiPAD's parallel GNN."""

    name = "spmm_sliced_parallel"

    def __init__(
        self,
        adjacency: CSRMatrix,
        spec: Optional[GPUSpec] = None,
        scale: float = 1.0,
        *,
        slice_capacity: int = DEFAULT_SLICE_CAPACITY,
        snapshots_coalesced: int = 1,
        slices_per_block: int = _SLICES_PER_BLOCK,
    ) -> None:
        super().__init__(adjacency, spec, scale)
        if snapshots_coalesced <= 0:
            raise ValueError("snapshots_coalesced must be > 0")
        self.slice_capacity = slice_capacity
        self.snapshots_coalesced = snapshots_coalesced
        self.slices_per_block = slices_per_block
        self.sliced = SlicedCSRMatrix.from_csr(adjacency, slice_capacity=slice_capacity)
        self._slice_nnz = self.sliced.slice_nnz()
        self._transpose_slice_nnz: Optional[np.ndarray] = None

    # -- cost -----------------------------------------------------------------
    def _cost_for(self, feature_dim: int, slice_nnz: np.ndarray, direction: str) -> KernelCost:
        nnz = float(slice_nnz.sum()) * self.scale
        num_slices = float(len(slice_nnz)) * self.scale
        rows_touched = float(len(np.unique(self.sliced.row_indices))) * self.scale

        vectorized = feature_dim * FLOAT_BYTES > self.spec.request_bytes
        per_access = row_access(feature_dim, self.spec, vectorized=vectorized)
        feature_requests = nnz * per_access.requests
        feature_transactions = nnz * per_access.transactions

        # Slice data is laid out interleaved in shared memory so warps load it
        # with fully coalesced streaming accesses.
        adj_cost = contiguous_bytes_cost(nnz * _NNZ_BYTES, self.spec)
        # Slice bookkeeping: one transaction per slice (row index + offset),
        # no cost for empty rows because empty rows own no slices.
        slice_overhead_transactions = num_slices
        write_bytes = rows_touched * feature_dim * FLOAT_BYTES
        write_cost = contiguous_bytes_cost(write_bytes, self.spec)

        if feature_dim < self.spec.warp_size:
            active_ratio = coalesced_active_thread_ratio(feature_dim, self.spec)
        else:
            active_ratio = 1.0

        balance = analyze_block_work(
            block_work_from_slice_nnz(slice_nnz, self.slices_per_block), self.spec, scale=self.scale
        )

        return KernelCost(
            name=f"{self.name}_{direction}",
            category=CATEGORY_AGGREGATION,
            flops=2.0 * nnz * feature_dim,
            global_read_bytes=nnz * (feature_dim * FLOAT_BYTES + _NNZ_BYTES),
            global_write_bytes=write_bytes,
            mem_requests=feature_requests + adj_cost.requests + write_cost.requests,
            mem_transactions=feature_transactions
            + adj_cost.transactions
            + slice_overhead_transactions
            + write_cost.transactions * _ATOMIC_WRITE_PENALTY,
            active_thread_ratio=active_ratio,
            imbalance=balance.imbalance,
            num_blocks=max(1, int(np.ceil(num_slices / self.slices_per_block))),
            shared_mem_bytes=min(
                self.spec.shared_mem_per_sm_kb * 1024.0,
                self.slices_per_block * self.slice_capacity * _NNZ_BYTES,
            ),
            launches=1,
            bandwidth_efficiency=_SLICED_BANDWIDTH_EFFICIENCY,
        )

    def forward_cost(self, dense_shape: Tuple[int, int]) -> KernelCost:
        return self._cost_for(self._feature_dim(dense_shape), self._slice_nnz, "fwd")

    def backward_cost(self, grad_shape: Tuple[int, int]) -> KernelCost:
        if self._transpose_slice_nnz is None:
            transpose = CSRMatrix.from_scipy(self._forward_mat.T.tocsr())
            sliced_t = SlicedCSRMatrix.from_csr(transpose, slice_capacity=self.slice_capacity)
            self._transpose_slice_nnz = sliced_t.slice_nnz()
        return self._cost_for(self._feature_dim(grad_shape), self._transpose_slice_nnz, "bwd")

    # -- extra reporting ---------------------------------------------------------
    def coalesce_num(self, feature_dim: int) -> int:
        """Thread groups per warp the kernel would use for ``feature_dim``."""
        return choose_coalesce_num(feature_dim, self.spec)
