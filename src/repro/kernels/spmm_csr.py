"""GE-SpMM-style CSR aggregation (the PyGT-G baseline kernel).

GE-SpMM [Huang et al., SC'20] assigns one warp to each adjacency row, caches
the row's column indices/values in shared memory and lets the warp's threads
cover the feature dimension, so feature-row accesses are coalesced.  Two
properties matter for the reproduction:

- threads beyond the feature dimension idle
  (``warp_execution_efficiency = min(32, F)/32``, §3.2);
- every row — including empty ones — occupies a warp slot and issues its
  row-extent reads, which is where the redundant accesses on extremely
  sparse graphs (Youtube) come from (§5.3), and per-row work follows the
  skewed degree distribution, producing the load imbalance of Fig. 12.

The backward pass runs the same kernel over the CSC transpose, which is why
PyGT-G keeps both CSR and CSC resident (§5.2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.gpu.kernel_cost import CATEGORY_AGGREGATION, KernelCost
from repro.gpu.load_balance import analyze_block_work, block_work_from_row_nnz
from repro.gpu.memory_model import FLOAT_BYTES, contiguous_bytes_cost, row_access
from repro.gpu.spec import GPUSpec
from repro.gpu.warp_model import baseline_active_thread_ratio
from repro.graph.csr import CSRMatrix
from repro.kernels.base import BaseAggregationKernel

#: bytes per adjacency non-zero staged through shared memory (index + value)
_NNZ_BYTES = 8
#: adjacency rows handled per thread block (8 warps of one row each)
_ROWS_PER_BLOCK = 8
#: achieved fraction of sustained bandwidth: shared-memory row caching and
#: warp-coalesced feature access, but still per-row irregular column gathers
_GESPMM_BANDWIDTH_EFFICIENCY = 0.45


class GESpMMAggregation(BaseAggregationKernel):
    """Row-per-warp CSR SpMM with shared-memory caching of sparse rows."""

    name = "spmm_csr_gespmm"

    def __init__(
        self,
        adjacency: CSRMatrix,
        spec: Optional[GPUSpec] = None,
        scale: float = 1.0,
        *,
        rows_per_block: int = _ROWS_PER_BLOCK,
    ) -> None:
        super().__init__(adjacency, spec, scale)
        self.rows_per_block = rows_per_block
        self._row_nnz = adjacency.row_nnz()
        self._transpose_row_nnz: Optional[np.ndarray] = None

    # -- cost -----------------------------------------------------------------
    def _cost_for(self, feature_dim: int, row_nnz: np.ndarray, direction: str) -> KernelCost:
        nnz = float(row_nnz.sum()) * self.scale
        rows = float(len(row_nnz)) * self.scale

        per_access = row_access(feature_dim, self.spec)
        feature_requests = nnz * per_access.requests
        feature_transactions = nnz * per_access.transactions
        adj_cost = contiguous_bytes_cost(nnz * _NNZ_BYTES, self.spec)
        # Row bookkeeping (indptr reads, row base pointers): one transaction per
        # row, issued even for empty rows — the redundant-access effect.
        row_overhead_transactions = rows
        write_cost = contiguous_bytes_cost(rows * feature_dim * FLOAT_BYTES, self.spec)

        balance = analyze_block_work(
            block_work_from_row_nnz(row_nnz, self.rows_per_block), self.spec, scale=self.scale
        )

        return KernelCost(
            name=f"{self.name}_{direction}",
            category=CATEGORY_AGGREGATION,
            flops=2.0 * nnz * feature_dim,
            global_read_bytes=nnz * (feature_dim * FLOAT_BYTES + _NNZ_BYTES),
            global_write_bytes=rows * feature_dim * FLOAT_BYTES,
            mem_requests=feature_requests + adj_cost.requests + write_cost.requests,
            mem_transactions=feature_transactions
            + adj_cost.transactions
            + row_overhead_transactions
            + write_cost.transactions,
            active_thread_ratio=baseline_active_thread_ratio(feature_dim, self.spec),
            imbalance=balance.imbalance,
            num_blocks=max(1, int(np.ceil(rows / self.rows_per_block))),
            shared_mem_bytes=min(
                self.spec.shared_mem_per_sm_kb * 1024.0, self.rows_per_block * 32 * _NNZ_BYTES
            ),
            launches=1,
            bandwidth_efficiency=_GESPMM_BANDWIDTH_EFFICIENCY,
        )

    def forward_cost(self, dense_shape: Tuple[int, int]) -> KernelCost:
        return self._cost_for(self._feature_dim(dense_shape), self._row_nnz, "fwd")

    def backward_cost(self, grad_shape: Tuple[int, int]) -> KernelCost:
        if self._transpose_row_nnz is None:
            transpose = self._forward_mat.T.tocsr()
            self._transpose_row_nnz = np.diff(transpose.indptr).astype(np.int64)
        return self._cost_for(self._feature_dim(grad_shape), self._transpose_row_nnz, "bwd")
