"""Kernel registry: look up aggregation-kernel families by name."""

from __future__ import annotations

from typing import Callable, Dict, Type

from repro.kernels.base import BaseAggregationKernel
from repro.kernels.spmm_coo import PyGCOOAggregation
from repro.kernels.spmm_csr import GESpMMAggregation
from repro.kernels.spmm_sliced import SlicedParallelAggregation

#: registry of aggregation-kernel families keyed by the name used in configs
AGGREGATION_KERNELS: Dict[str, Type[BaseAggregationKernel]] = {
    "coo": PyGCOOAggregation,
    "pyg": PyGCOOAggregation,
    "gespmm": GESpMMAggregation,
    "csr": GESpMMAggregation,
    "sliced": SlicedParallelAggregation,
    "pipad": SlicedParallelAggregation,
}


def get_aggregation_kernel(name: str) -> Type[BaseAggregationKernel]:
    """Resolve an aggregation-kernel class by (case-insensitive) name."""
    key = name.lower()
    if key not in AGGREGATION_KERNELS:
        raise KeyError(
            f"unknown aggregation kernel {name!r}; available: {sorted(set(AGGREGATION_KERNELS))}"
        )
    return AGGREGATION_KERNELS[key]


def register_aggregation_kernel(name: str, cls: Type[BaseAggregationKernel]) -> None:
    """Register a custom aggregation-kernel family (for extensions/tests)."""
    if not issubclass(cls, BaseAggregationKernel):
        raise TypeError("cls must subclass BaseAggregationKernel")
    AGGREGATION_KERNELS[name.lower()] = cls
