"""``python -m repro`` dispatches to the spec-driven CLI in :mod:`repro.api.cli`."""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
