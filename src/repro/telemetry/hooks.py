"""The callback layer: instrumentation hooks decoupled from any exporter.

Trainers (:class:`~repro.baselines.base.DGNNTrainerBase` and its PiPAD /
distributed / pipeline subclasses), the :class:`~repro.gpu.device_group.
DeviceGroup` collectives and the serving schedulers all emit their events
against the :class:`TelemetryCallback` interface — a null object whose
methods are all no-ops — so the execution machinery never imports a tracer,
a metrics registry or an exporter.  The engine attaches a
:class:`CallbackList` fanning out to whichever sinks the run's
``TelemetrySpec`` asked for; code paths that run outside the engine keep the
default no-op callback and pay one virtual call per event.

Every timestamp crossing this interface is **simulated** time (the device /
group clock), never wall time — that is what keeps trace exports
deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.baselines.results import EpochMetrics
    from repro.serving.metrics import BatchRecord, RequestRecord
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.spans import SpanTracer


class TelemetryCallback:
    """Instrumentation interface; the base class is the no-op null object.

    Timestamps (``at`` / ``start`` / ``end``) are simulated seconds on the
    emitting phase's clock: training events live on the trainer's device
    (group) clock, serving events on the serving device clock.
    """

    # -- run lifecycle (engine) ---------------------------------------------
    def on_run_start(self, spec: Any) -> None:
        """The engine is about to execute ``spec``."""

    def on_run_end(self, report: Any) -> None:
        """Every phase the spec declared has executed."""

    def on_phase_start(self, phase: str, at: float) -> None:
        """A lifecycle phase (``prepare`` / ``train`` / ``serve``) opened."""

    def on_phase_end(self, phase: str, at: float) -> None:
        """A lifecycle phase closed."""

    # -- training (trainers) ------------------------------------------------
    def on_epoch_start(self, epoch: int, at: float) -> None:
        """One training epoch began at simulated time ``at``."""

    def on_epoch_end(
        self, epoch: int, metrics: "EpochMetrics", start: float, end: float
    ) -> None:
        """One training epoch finished; ``metrics`` is its record."""

    def on_frame(
        self, frame_index: int, epoch: int, start: float, end: float, loss: float
    ) -> None:
        """One frame's forward/backward/update completed."""

    def on_collective(
        self,
        kind: str,
        label: str,
        seconds: float,
        nbytes: float,
        start: float,
        end: float,
    ) -> None:
        """A device-group collective (or p2p transfer) was scheduled."""

    def on_bubble(self, stage: int, start: float, end: float) -> None:
        """A pipeline stage stalled on its cross-stage state dependency."""

    def on_prefetch(
        self,
        stage: str,
        item: str,
        device_index: int,
        start: float,
        end: float,
        domain: str = "train",
    ) -> None:
        """One datapipe stage of one prefetched item was scheduled.

        ``stage`` is a name from ``repro.core.datapipe.STAGE_REGISTRY``;
        ``domain`` is the clock the timestamps live on (``"train"`` for
        trainer prefetchers, ``"serve"`` for serving replicas).
        """

    def on_cache_access(
        self,
        label: str,
        device_index: int,
        gpu_bytes: float,
        pinned_bytes: float,
        miss_bytes: float,
        hits: int,
        misses: int,
        at: float,
        domain: str = "train",
    ) -> None:
        """One feature-cache lookup resolved an item's tier traffic.

        ``gpu_bytes`` skipped the whole gather → pin → h2d path,
        ``pinned_bytes`` skipped gather+pin, ``miss_bytes`` pays the full
        pipe.  ``at`` is the simulated time the item was scheduled.
        """

    # -- serving (schedulers) -----------------------------------------------
    def on_request(self, record: "RequestRecord") -> None:
        """One serving request completed."""

    def on_batch(self, record: "BatchRecord") -> None:
        """One serving micro-batch completed."""

    def on_delta(self, version: int, num_touched: int, at: float) -> None:
        """One graph delta was ingested."""


#: module-level no-op instance: the default hook target of every emitter
NULL_CALLBACK = TelemetryCallback()

#: hook-method names (used by the fan-out list and the registry tests)
HOOK_NAMES = tuple(
    name for name in vars(TelemetryCallback) if name.startswith("on_")
)


class CallbackList(TelemetryCallback):
    """Fans every hook out to an ordered list of callbacks."""

    def __init__(self, callbacks: Iterable[TelemetryCallback] = ()) -> None:
        self.callbacks: List[TelemetryCallback] = list(callbacks)

    def add(self, callback: TelemetryCallback) -> "CallbackList":
        self.callbacks.append(callback)
        return self

    def __len__(self) -> int:
        return len(self.callbacks)

    def __iter__(self):
        return iter(self.callbacks)


def _fan_out(name: str) -> Callable[..., None]:
    def method(self: CallbackList, *args: Any, **kwargs: Any) -> None:
        for callback in self.callbacks:
            getattr(callback, name)(*args, **kwargs)

    method.__name__ = name
    return method


for _name in HOOK_NAMES:
    setattr(CallbackList, _name, _fan_out(_name))


# ---------------------------------------------------------------------- sinks
#: registered callback kinds: name -> description.  ``TelemetrySpec.callbacks``
#: is validated against these names; ``python -m repro list`` shows them.
CALLBACK_REGISTRY: Dict[str, str] = {
    "tracing": "feeds lifecycle spans into the span tracer (active by default)",
    "metrics": "feeds live counters/histograms into the metrics registry (active by default)",
    "logging": "prints one progress line per phase/epoch/delta",
}

#: phase name -> clock domain its spans live on (see telemetry.spans)
_PHASE_DOMAINS: Dict[str, str] = {"prepare": "train", "train": "train", "serve": "serve"}


class TracingCallback(TelemetryCallback):
    """Feeds lifecycle/epoch/frame/request/batch events into a span tracer."""

    def __init__(self, tracer: "SpanTracer") -> None:
        self.tracer = tracer

    def on_phase_start(self, phase: str, at: float) -> None:
        self.tracer.begin(
            phase, at, category="phase", domain=_PHASE_DOMAINS.get(phase, "train")
        )

    def on_phase_end(self, phase: str, at: float) -> None:
        self.tracer.end(phase, at)

    def on_epoch_start(self, epoch: int, at: float) -> None:
        self.tracer.begin(f"epoch_{epoch}", at, category="epoch", domain="train")

    def on_epoch_end(
        self, epoch: int, metrics: "EpochMetrics", start: float, end: float
    ) -> None:
        self.tracer.end(f"epoch_{epoch}", end)

    def on_frame(
        self, frame_index: int, epoch: int, start: float, end: float, loss: float
    ) -> None:
        self.tracer.record(
            f"frame_{frame_index}",
            start,
            end,
            category="frame",
            domain="train",
            epoch=epoch,
        )

    def on_bubble(self, stage: int, start: float, end: float) -> None:
        self.tracer.record(
            "bubble", start, end, category="bubble", domain="train", stage=stage
        )

    def on_prefetch(
        self,
        stage: str,
        item: str,
        device_index: int,
        start: float,
        end: float,
        domain: str = "train",
    ) -> None:
        self.tracer.record(
            f"prefetch_{stage}_{item}",
            start,
            end,
            category="prefetch",
            domain=domain,
            stage=stage,
            item=item,
            device=device_index,
        )

    def on_cache_access(
        self,
        label: str,
        device_index: int,
        gpu_bytes: float,
        pinned_bytes: float,
        miss_bytes: float,
        hits: int,
        misses: int,
        at: float,
        domain: str = "train",
    ) -> None:
        self.tracer.record(
            f"cache_{label}",
            at,
            at,
            category="cache",
            domain=domain,
            device=device_index,
            gpu_bytes=gpu_bytes,
            pinned_bytes=pinned_bytes,
            miss_bytes=miss_bytes,
            hits=hits,
            misses=misses,
        )

    def on_request(self, record: "RequestRecord") -> None:
        self.tracer.record(
            f"request_{record.request_id}",
            record.arrival_time,
            record.completion_time,
            category="request",
            domain="serve",
            batch_id=record.batch_id,
            num_nodes=record.num_nodes,
        )

    def on_batch(self, record: "BatchRecord") -> None:
        self.tracer.record(
            f"batch_{record.batch_id}",
            record.formed_time,
            record.completion_time,
            category="batch",
            domain="serve",
            size=record.size,
            s_per=record.s_per,
        )

    def on_delta(self, version: int, num_touched: int, at: float) -> None:
        self.tracer.record(
            f"delta_v{version}",
            at,
            at,
            category="delta",
            domain="serve",
            num_touched=num_touched,
        )


class MetricsCallback(TelemetryCallback):
    """Accumulates live counters/histograms into a metrics registry."""

    def __init__(self, registry: "MetricsRegistry") -> None:
        self.registry = registry

    def on_epoch_end(
        self, epoch: int, metrics: "EpochMetrics", start: float, end: float
    ) -> None:
        self.registry.counter("train.epochs").inc()
        self.registry.histogram("train.epoch_seconds").observe(end - start)

    def on_frame(
        self, frame_index: int, epoch: int, start: float, end: float, loss: float
    ) -> None:
        self.registry.counter("train.frames").inc()

    def on_collective(
        self,
        kind: str,
        label: str,
        seconds: float,
        nbytes: float,
        start: float,
        end: float,
    ) -> None:
        self.registry.counter(f"collective.{kind}.count").inc()
        self.registry.counter(f"collective.{kind}.seconds").inc(seconds)
        self.registry.counter(f"collective.{kind}.bytes").inc(nbytes)

    def on_bubble(self, stage: int, start: float, end: float) -> None:
        self.registry.counter("pipeline.bubbles").inc()
        self.registry.counter("pipeline.bubble_seconds").inc(end - start)

    def on_prefetch(
        self,
        stage: str,
        item: str,
        device_index: int,
        start: float,
        end: float,
        domain: str = "train",
    ) -> None:
        self.registry.counter(f"prefetch.{stage}.count").inc()
        self.registry.counter(f"prefetch.{stage}.seconds").inc(end - start)

    def on_cache_access(
        self,
        label: str,
        device_index: int,
        gpu_bytes: float,
        pinned_bytes: float,
        miss_bytes: float,
        hits: int,
        misses: int,
        at: float,
        domain: str = "train",
    ) -> None:
        self.registry.counter("memory.cache.accesses").inc(hits + misses)
        self.registry.counter("memory.cache.hits").inc(hits)
        self.registry.counter("memory.cache.misses").inc(misses)
        self.registry.counter("memory.cache.gpu_bytes").inc(gpu_bytes)
        self.registry.counter("memory.cache.pinned_bytes").inc(pinned_bytes)
        self.registry.counter("memory.cache.miss_bytes").inc(miss_bytes)

    def on_request(self, record: "RequestRecord") -> None:
        self.registry.counter("serving.requests").inc()
        self.registry.histogram("serving.latency_ms").observe(record.latency * 1e3)

    def on_batch(self, record: "BatchRecord") -> None:
        self.registry.counter("serving.batches").inc()
        self.registry.histogram("serving.batch_size").observe(record.size)
        self.registry.counter("serving.cache_hits").inc(record.cache_hits)
        self.registry.counter("serving.cache_misses").inc(record.cache_misses)

    def on_delta(self, version: int, num_touched: int, at: float) -> None:
        self.registry.counter("serving.deltas").inc()
        self.registry.counter("serving.rows_touched").inc(num_touched)


class LoggingCallback(TelemetryCallback):
    """Prints one progress line per coarse event (opt-in via the spec)."""

    def __init__(self, sink: Optional[Callable[[str], None]] = None) -> None:
        self._emit = sink if sink is not None else print

    def on_phase_start(self, phase: str, at: float) -> None:
        self._emit(f"[telemetry] phase {phase} started @ {at * 1e3:.2f} ms")

    def on_phase_end(self, phase: str, at: float) -> None:
        self._emit(f"[telemetry] phase {phase} finished @ {at * 1e3:.2f} ms")

    def on_epoch_end(
        self, epoch: int, metrics: "EpochMetrics", start: float, end: float
    ) -> None:
        self._emit(
            f"[telemetry] epoch {epoch}: {(end - start) * 1e3:.2f} ms simulated, "
            f"loss {metrics.loss:.4f}"
        )

    def on_delta(self, version: int, num_touched: int, at: float) -> None:
        self._emit(
            f"[telemetry] delta v{version}: {num_touched} rows @ {at * 1e3:.2f} ms"
        )


__all__ = [
    "CALLBACK_REGISTRY",
    "CallbackList",
    "HOOK_NAMES",
    "LoggingCallback",
    "MetricsCallback",
    "NULL_CALLBACK",
    "TelemetryCallback",
    "TracingCallback",
]
