"""Nested span tracing on the simulated clock.

A :class:`Span` is one named interval — the engine's ``train`` phase, one
epoch, one frame, one serving request — positioned on the *simulated* time
axis of the run.  Using simulated rather than wall time keeps traces
deterministic (two runs of the same spec produce byte-identical exports,
which the golden trace test locks in) and lines the spans up with the
timeline ops of the simulated devices, so a Chrome-trace view shows the
lifecycle spans directly above the kernels/copies/collectives they cover.

Spans carry a *domain* (``"train"`` or ``"serve"``): the two phases run on
independent simulated clocks that both start at zero, and the exporter lays
the domains out sequentially so they do not overlap visually.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: clock domains a span can live on (independent simulated time axes)
SPAN_DOMAINS: Tuple[str, ...] = ("train", "serve")


@dataclass
class Span:
    """One named interval on a simulated clock."""

    name: str
    category: str
    domain: str
    start: float
    end: Optional[float] = None
    depth: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None


class SpanTracer:
    """Collects nested spans; explicit timestamps, no wall clock anywhere.

    ``begin``/``end`` maintain a stack (lifecycle phases, epochs);
    :meth:`record` appends an already-closed leaf span (frames, requests,
    bubbles) at the current depth.  Spans left open — a trace exported
    mid-run, a phase that never finished — are closed by
    :meth:`close_all` at export time.
    """

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------------ recording
    def begin(
        self,
        name: str,
        at: float,
        *,
        category: str = "phase",
        domain: str = "train",
        **attrs: Any,
    ) -> Span:
        """Open a nested span at simulated time ``at``."""
        if domain not in SPAN_DOMAINS:
            raise ValueError(f"unknown span domain {domain!r}; valid: {SPAN_DOMAINS}")
        span = Span(
            name=name,
            category=category,
            domain=domain,
            start=at,
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._spans.append(span)
        self._stack.append(span)
        return span

    def end(self, name: str, at: float) -> Span:
        """Close the innermost open span called ``name``.

        Any spans nested inside it that are still open are closed at the
        same instant, so a missed ``end`` cannot corrupt the stack.
        """
        if not any(span.name == name for span in self._stack):
            raise ValueError(f"no open span named {name!r}")
        while self._stack:
            span = self._stack.pop()
            span.end = max(at, span.start)
            if span.name == name:
                return span
        raise AssertionError("unreachable")  # pragma: no cover

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        category: str = "span",
        domain: str = "train",
        **attrs: Any,
    ) -> Span:
        """Append one already-closed leaf span."""
        if domain not in SPAN_DOMAINS:
            raise ValueError(f"unknown span domain {domain!r}; valid: {SPAN_DOMAINS}")
        span = Span(
            name=name,
            category=category,
            domain=domain,
            start=start,
            end=max(end, start),
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._spans.append(span)
        return span

    def close_all(self, at: Optional[float] = None) -> None:
        """Close every still-open span (at ``at``, or at its deepest extent)."""
        horizon = at if at is not None else self.extent()
        while self._stack:
            span = self._stack.pop()
            span.end = max(horizon, span.start)

    # ------------------------------------------------------------------ queries
    @property
    def spans(self) -> List[Span]:
        """All spans in recording order (open spans included)."""
        return list(self._spans)

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def extent(self, domain: Optional[str] = None) -> float:
        """Latest closed-span end time (optionally restricted to a domain)."""
        ends = [
            s.end
            for s in self._spans
            if s.end is not None and (domain is None or s.domain == domain)
        ]
        return max(ends, default=0.0)

    def by_category(self, category: str) -> List[Span]:
        return [s for s in self._spans if s.category == category]

    def reset(self) -> None:
        self._spans.clear()
        self._stack.clear()


__all__ = ["SPAN_DOMAINS", "Span", "SpanTracer"]
