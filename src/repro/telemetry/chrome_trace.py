"""Chrome-trace-event JSON export of simulated runs.

The exporter maps every simulated :class:`~repro.gpu.timeline.Timeline`
onto one Perfetto *process* (one track group per device) with one *thread*
per resource — compute, the two PCIe copy engines, the host CPU and, for
multi-GPU runs, the peer link — so a 1F1B pipeline schedule, its bubbles
and the p2p frame handoffs are visually inspectable at
``https://ui.perfetto.dev`` (or ``chrome://tracing``).  Lifecycle spans
from the :class:`~repro.telemetry.spans.SpanTracer` (phases, epochs,
frames, serving requests/batches) render as a dedicated ``run`` process
above the device tracks.

All timestamps are simulated seconds converted to trace microseconds; the
train and serve phases run on independent simulated clocks both starting
at zero, so serve-domain content is shifted to start where the train
domain ends.  Output is strict JSON serialized with sorted keys and no
wall-clock anywhere, which makes exports byte-identical across runs of the
same spec (the golden-trace test relies on this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.gpu.timeline import RESOURCES, Timeline
from repro.telemetry.spans import Span

#: registered trace exporters (shown by ``python -m repro list``)
EXPORTER_REGISTRY: Dict[str, str] = {
    "chrome-trace": (
        "Chrome-trace-event JSON (open in Perfetto): one track per device, "
        "one thread per resource, lifecycle spans on a 'run' track"
    ),
    "run-report": (
        "lossless JSON persistence of the RunReport (spec + training + "
        "serving results + metrics snapshot)"
    ),
}

#: seconds -> trace microseconds
_US = 1e6

#: pid 0 thread layout for tracer spans, by span category
_RUN_PID = 0
_RUN_THREADS: Dict[str, str] = {
    "phase": "lifecycle",
    "epoch": "lifecycle",
    "frame": "lifecycle",
    "request": "requests",
    "batch": "batches",
    "delta": "deltas",
    "violation": "violations",
}
#: thread reserved on each device track for pipeline bubble spans
_BUBBLE_THREAD = "bubble"
#: thread reserved on each device track for datapipe prefetch-stage spans
_PREFETCH_THREAD = "prefetch"


@dataclass
class TraceTrack:
    """One device timeline headed for export."""

    name: str
    timeline: Timeline
    domain: str = "train"


def _jsonable(value: Any) -> Any:
    """Trace args must be plain JSON: leave scalars, stringify the rest."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else repr(value)
    return str(value)


def _track_resources(timeline: Timeline) -> List[str]:
    """Resources of one timeline in stable order: canonical first, extras
    (e.g. ``peer_link``) sorted after."""
    present = {op.resource for op in timeline.ops}
    ordered = [r for r in RESOURCES if r in present]
    ordered.extend(sorted(present - set(RESOURCES)))
    return ordered


def build_chrome_trace(
    tracks: Sequence[TraceTrack],
    spans: Iterable[Span] = (),
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the Chrome-trace document (a plain dict, ready for json)."""
    spans = [s for s in spans if s.closed]

    # The serve clock restarts at zero; shift its content past the train
    # domain's extent so the two phases do not overlap on the time axis.
    train_extent = max(
        [t.timeline.makespan() for t in tracks if t.domain == "train"]
        + [s.end for s in spans if s.domain == "train"]
        + [0.0]
    )
    offsets = {"train": 0.0, "serve": train_extent}

    events: List[Dict[str, Any]] = []

    def meta(pid: int, name: str, tid: Optional[int] = None) -> None:
        event: Dict[str, Any] = {
            "ph": "M",
            "pid": pid,
            "tid": 0 if tid is None else tid,
            "name": "process_name" if tid is None else "thread_name",
            "args": {"name": name},
        }
        events.append(event)

    # -- pid 0: the run process (lifecycle spans from the tracer) -----------
    run_tids: Dict[str, int] = {}

    def run_tid(thread: str) -> int:
        if thread not in run_tids:
            run_tids[thread] = len(run_tids)
            meta(_RUN_PID, thread, run_tids[thread])
        return run_tids[thread]

    meta(_RUN_PID, "run")
    run_tid("lifecycle")  # always present, always tid 0

    # -- pids 1..N: one process per device track ----------------------------
    track_tids: List[Dict[str, int]] = []
    for index, track in enumerate(tracks):
        pid = index + 1
        meta(pid, track.name)
        tids: Dict[str, int] = {}
        for resource in _track_resources(track.timeline):
            tids[resource] = len(tids)
            meta(pid, resource, tids[resource])
        track_tids.append(tids)

    def device_tid(pid: int, thread: str) -> int:
        tids = track_tids[pid - 1]
        if thread not in tids:
            tids[thread] = len(tids)
            meta(pid, thread, tids[thread])
        return tids[thread]

    # -- X events: one per timeline op --------------------------------------
    for index, track in enumerate(tracks):
        pid = index + 1
        offset = offsets.get(track.domain, 0.0)
        tids = track_tids[index]
        for op in track.timeline.ops:
            args = {key: _jsonable(value) for key, value in op.attrs.items()}
            args["stream"] = op.stream
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[op.resource],
                    "name": op.label,
                    "cat": op.kind,
                    "ts": op.start * _US + offset * _US,
                    "dur": op.duration * _US,
                    "args": args,
                }
            )

    # -- X events: tracer spans ---------------------------------------------
    domain_track_pids: Dict[str, List[int]] = {}
    for i, t in enumerate(tracks):
        domain_track_pids.setdefault(t.domain, []).append(i + 1)
    train_track_pids = domain_track_pids.get("train", [])
    for span in spans:
        offset = offsets.get(span.domain, 0.0)
        args = {key: _jsonable(value) for key, value in sorted(span.attrs.items())}
        prefetch_pids = domain_track_pids.get(span.domain, [])
        if span.category == "violation":
            # Sanitizer findings are points in time, not intervals: render
            # as global-scope instant events on the run process so Perfetto
            # draws them as flags across every track.
            events.append(
                {
                    "ph": "i",
                    "s": "g",
                    "pid": _RUN_PID,
                    "tid": run_tid(_RUN_THREADS["violation"]),
                    "name": span.name,
                    "cat": span.category,
                    "ts": span.start * _US + offset * _US,
                    "args": args,
                }
            )
            continue
        if span.category == "bubble" and train_track_pids:
            # Bubbles belong visually to the stalled stage's device track.
            stage = span.attrs.get("stage", 0)
            stage = stage if isinstance(stage, int) else 0
            pid = train_track_pids[stage % len(train_track_pids)]
            tid = device_tid(pid, _BUBBLE_THREAD)
        elif span.category == "prefetch" and prefetch_pids:
            # Prefetch stages belong to the preparing device's track, in the
            # span's own clock domain (train trainers / serve replicas).
            device = span.attrs.get("device", 0)
            device = device if isinstance(device, int) else 0
            pid = prefetch_pids[device % len(prefetch_pids)]
            tid = device_tid(pid, _PREFETCH_THREAD)
        else:
            pid = _RUN_PID
            tid = run_tid(_RUN_THREADS.get(span.category, "lifecycle"))
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": span.name,
                "cat": span.category,
                "ts": span.start * _US + offset * _US,
                "dur": span.duration * _US,
                "args": args,
            }
        )

    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        document["metadata"] = {k: _jsonable(v) for k, v in sorted(metadata.items())}
    return document


def export_chrome_trace(
    path: str,
    tracks: Sequence[TraceTrack],
    spans: Iterable[Span] = (),
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the trace to ``path`` and return the document.

    Serialization is ``sort_keys`` with a fixed separator style, so the
    bytes on disk depend only on the simulated run.
    """
    document = build_chrome_trace(tracks, spans, metadata=metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return document


__all__ = [
    "EXPORTER_REGISTRY",
    "TraceTrack",
    "build_chrome_trace",
    "export_chrome_trace",
]
