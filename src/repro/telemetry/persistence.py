"""Strict-JSON persistence helpers shared by the run-report exporter.

The repo's NaN convention (an absent measurement is ``nan``, never a fake
zero — see :mod:`repro.serving.metrics`) collides with strict JSON, which
has no spelling for non-finite floats.  ``json.dumps`` would emit the
non-standard ``NaN`` literal many consumers reject; converting to ``null``
(as the CLI summary view does) is lossy.  Persistence therefore round-trips
non-finite floats through marker strings — ``"NaN"`` / ``"Infinity"`` /
``"-Infinity"`` — which are valid strict JSON and restore to the exact
float.  These helpers are dependency-free so every layer (baselines,
serving, api) can import them without cycles.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Sequence, Union

_NONFINITE_MARKERS: Dict[str, float] = {
    "NaN": float("nan"),
    "Infinity": float("inf"),
    "-Infinity": float("-inf"),
}


def sanitize_floats(value: Any) -> Any:
    """Recursively replace non-finite floats with their marker strings."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if isinstance(value, Mapping):
        return {key: sanitize_floats(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_floats(item) for item in value]
    return value


def restore_floats(value: Any) -> Any:
    """Inverse of :func:`sanitize_floats` (markers back to floats)."""
    if isinstance(value, str) and value in _NONFINITE_MARKERS:
        return _NONFINITE_MARKERS[value]
    if isinstance(value, Mapping):
        return {key: restore_floats(item) for key, item in value.items()}
    if isinstance(value, list):
        return [restore_floats(item) for item in value]
    return value


def restore_float_dict(
    value: Union[Mapping[str, Any], None]
) -> Dict[str, float]:
    """Restore a flat ``str -> float`` mapping (breakdowns, summaries)."""
    if not value:
        return {}
    return {key: float(restore_floats(item)) for key, item in value.items()}


def restore_float_list(value: Union[Sequence[Any], None]) -> List[float]:
    if not value:
        return []
    return [float(restore_floats(item)) for item in value]


__all__ = [
    "restore_float_dict",
    "restore_float_list",
    "restore_floats",
    "sanitize_floats",
]
