"""The unified metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` gathers every quantitative surface of a run —
the serving p50/p99/hit-rate summary, the trainer's timeline breakdown,
``DeviceGroup.collective_seconds``, pipeline bubble accounting, reuse-cache
statistics and the kernel-category totals — behind a single
``snapshot() -> dict``, so benchmarks, the run report and CI artifacts all
read one flat namespace instead of five bespoke dictionaries.

Instruments follow the Prometheus naming conventions loosely: dotted
lower-case names, counters for monotonically growing totals, gauges for
point-in-time values, histograms for distributions.  Registration is
get-or-create: asking for an existing name with the *same* instrument type
returns the existing instrument; re-registering a name as a *different*
type raises (the double-register edge the registry tests pin down).
Histogram aggregates are NaN on an empty run — the repo-wide
"an absent measurement must not read as a perfect one" convention from the
serving metrics.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

#: percentiles a histogram snapshot exports (suffix, q)
HISTOGRAM_PERCENTILES: Tuple[Tuple[str, float], ...] = (("p50", 50.0), ("p99", 99.0))


class Counter:
    """Monotonically non-decreasing total."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self._value += amount


class Gauge:
    """Point-in-time value that can move in either direction."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = float("nan")

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, amount: float) -> None:
        base = 0.0 if np.isnan(self._value) else self._value
        self._value = base + amount


class Histogram:
    """Distribution of observations; percentiles are NaN when empty."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._observations: List[float] = []

    def observe(self, value: float) -> None:
        self._observations.append(float(value))

    @property
    def count(self) -> int:
        return len(self._observations)

    @property
    def total(self) -> float:
        return float(sum(self._observations))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """q-th percentile of the observations; NaN on an empty histogram."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._observations:
            return float("nan")
        return float(np.percentile(np.asarray(self._observations, dtype=np.float64), q))

    def snapshot(self) -> Dict[str, float]:
        out = {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
        }
        for suffix, q in HISTOGRAM_PERCENTILES:
            out[suffix] = self.percentile(q)
        return out


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name-spaced home of every instrument one run produces."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # ------------------------------------------------------------------ registration
    def _get_or_create(self, name: str, cls: type, help: str) -> Instrument:
        if not name:
            raise ValueError("instrument name must be non-empty")
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} is already registered as "
                    f"{type(existing).__name__}, cannot re-register as {cls.__name__}"
                )
            return existing
        instrument = cls(name, help)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, help)  # type: ignore[return-value]

    # ------------------------------------------------------------------ bulk ingestion
    def set_gauges(self, values: Mapping[str, float], *, prefix: str = "") -> None:
        """Register/overwrite one gauge per mapping entry (flat unification
        path: breakdowns, collective totals, reuse stats, serving summaries)."""
        for key, value in values.items():
            name = f"{prefix}{key}" if prefix else key
            self.gauge(name).set(float(value))

    # ------------------------------------------------------------------ queries
    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> Dict[str, float]:
        """One flat, sorted ``name -> value`` view of every instrument.

        Counters and gauges appear under their own name; histograms expand
        to ``name.count`` / ``name.sum`` / ``name.mean`` / ``name.p50`` /
        ``name.p99``.  An empty registry snapshots to an empty dict.
        """
        out: Dict[str, float] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                for key, value in instrument.snapshot().items():
                    out[f"{name}.{key}"] = value
            else:
                out[name] = instrument.value
        return dict(sorted(out.items()))

    def reset(self) -> None:
        self._instruments.clear()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_PERCENTILES",
    "MetricsRegistry",
]
