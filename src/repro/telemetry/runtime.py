"""The telemetry runtime: one object binding tracer, registry and hooks.

:class:`Telemetry` is what the :class:`~repro.api.engine.Engine` owns per
run.  It builds the callback fan-out a ``TelemetrySpec`` asks for, attaches
it to whatever machinery the spec resolved to (any trainer, the serving
scheduler or every replica of a sharded engine, the device group's
collective path), assembles the per-device :class:`~repro.telemetry.
chrome_trace.TraceTrack` list for export, and folds the end-of-run result
records into the metrics registry so ``snapshot()`` is the single flat
quantitative view of the run.

Everything here is duck-typed against the execution layer (``trainer.hooks``,
``trainer.group``, ``engine.replicas`` …) so the runtime works for any
registered device/serving topology without importing their classes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.chrome_trace import TraceTrack, export_chrome_trace
from repro.telemetry.hooks import (
    CALLBACK_REGISTRY,
    CallbackList,
    LoggingCallback,
    MetricsCallback,
    TracingCallback,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer


class Telemetry:
    """Tracer + registry + callback fan-out for one engine run."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        callbacks: Sequence[str] = (),
    ) -> None:
        unknown = set(callbacks) - set(CALLBACK_REGISTRY)
        if unknown:
            raise ValueError(
                f"unknown telemetry callback(s) {sorted(unknown)}; "
                f"valid: {', '.join(sorted(CALLBACK_REGISTRY))}"
            )
        self.enabled = enabled
        self.tracer = SpanTracer()
        self.registry = MetricsRegistry()
        self.hooks = CallbackList()
        if enabled:
            # The tracing and metrics sinks are what the trace export and the
            # report's metrics snapshot are made of, so they are always on.
            self.hooks.add(TracingCallback(self.tracer))
            self.hooks.add(MetricsCallback(self.registry))
            if "logging" in callbacks:
                self.hooks.add(LoggingCallback())

    @classmethod
    def from_spec(cls, spec: Optional[Any]) -> "Telemetry":
        """Build from a ``TelemetrySpec`` (or None -> disabled)."""
        if spec is None:
            return cls(enabled=False)
        return cls(enabled=spec.enabled, callbacks=spec.callbacks)

    # ------------------------------------------------------------------ attachment
    def attach_trainer(self, trainer: Any) -> None:
        """Point a trainer's hook emissions (and its device group's
        collective notifications) at this runtime."""
        trainer.hooks = self.hooks
        group = getattr(trainer, "group", None)
        if group is not None:
            group.add_observer(self.hooks.on_collective)

    def attach_serving(self, engine: Any) -> None:
        """Point a serving engine (single scheduler or sharded replicas)."""
        replicas = getattr(engine, "replicas", None)
        if replicas is not None:
            for replica in replicas:
                replica.hooks = self.hooks
            # Engines with their own emission surface (the fleet's autoscale
            # events) get the live hooks alongside their replicas.
            if hasattr(engine, "hooks"):
                engine.hooks = self.hooks
        else:
            engine.hooks = self.hooks

    # ------------------------------------------------------------------ tracks
    def training_tracks(self, trainer: Any) -> List[TraceTrack]:
        """One track per training device (``gpu0`` .. ``gpuK-1``)."""
        group = getattr(trainer, "group", None)
        if group is not None:
            return [
                TraceTrack(f"gpu{i}", device.timeline, domain="train")
                for i, device in enumerate(group.devices)
            ]
        return [TraceTrack("gpu0", trainer.device.timeline, domain="train")]

    def serving_tracks(self, engine: Any) -> List[TraceTrack]:
        """One track per serving device (``serve_gpu0`` .. )."""
        replicas = getattr(engine, "replicas", None)
        if replicas is not None:
            return [
                TraceTrack(f"serve_gpu{i}", replica.device.timeline, domain="serve")
                for i, replica in enumerate(replicas)
            ]
        return [TraceTrack("serve_gpu0", engine.device.timeline, domain="serve")]

    # ------------------------------------------------------------------ export
    def export_trace(
        self,
        path: str,
        *,
        trainer: Any = None,
        serving_engine: Any = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Write the Chrome-trace JSON covering whatever machinery ran."""
        tracks: List[TraceTrack] = []
        if trainer is not None:
            tracks.extend(self.training_tracks(trainer))
        if serving_engine is not None:
            tracks.extend(self.serving_tracks(serving_engine))
        self.tracer.close_all()
        return export_chrome_trace(path, tracks, self.tracer.spans, metadata=metadata)

    # ------------------------------------------------------------------ unification
    def collect(self, report: Any) -> Dict[str, float]:
        """Fold a run report's scalar surfaces into the registry and snapshot.

        This is the unification point: the training breakdown and extras
        (collective seconds, bubble accounting, reuse stats), the per-kernel
        category totals and the serving summary all land as gauges next to
        the live counters/histograms the callbacks accumulated.
        """
        if not self.enabled:
            return {}
        registry = self.registry
        training = getattr(report, "training", None)
        if training is not None:
            registry.set_gauges(training.breakdown, prefix="train.breakdown.")
            registry.set_gauges(
                training.category_seconds, prefix="train.category_seconds."
            )
            registry.set_gauges(training.extras, prefix="train.extras.")
            registry.set_gauges(
                {
                    "train.simulated_seconds": training.simulated_seconds,
                    "train.steady_epoch_seconds": training.steady_epoch_seconds,
                    "train.final_loss": training.final_loss,
                    "train.gpu_utilization": training.gpu_utilization,
                    "train.sm_utilization": training.sm_utilization,
                    "train.kernel_launches": float(training.kernel_launches),
                    "train.peak_memory_bytes": float(training.peak_memory_bytes),
                }
            )
        serving = getattr(report, "serving", None)
        if serving is not None:
            registry.set_gauges(serving.metrics.summary(), prefix="serving.summary.")
            registry.set_gauges(serving.breakdown, prefix="serving.breakdown.")
            registry.set_gauges(serving.reuse_stats, prefix="serving.reuse.")
            registry.set_gauges(serving.extras, prefix="serving.extras.")
            registry.set_gauges(
                {
                    "serving.simulated_seconds": serving.simulated_seconds,
                    "serving.gpu_utilization": serving.gpu_utilization,
                    "serving.peak_memory_bytes": float(serving.peak_memory_bytes),
                }
            )
        analysis = getattr(report, "extras", {}).get("analysis")
        if analysis is not None:
            registry.set_gauges(
                {
                    "analysis.num_checks": float(len(analysis.get("checks", []))),
                    "analysis.num_violations": float(
                        analysis.get("num_violations", 0)
                    ),
                    "analysis.num_errors": float(analysis.get("num_errors", 0)),
                    "analysis.num_warnings": float(analysis.get("num_warnings", 0)),
                }
            )
        return registry.snapshot()


__all__ = ["Telemetry"]
