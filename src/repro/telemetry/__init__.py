"""Observability for the reproduction: spans, metrics, hooks, exporters.

The subsystem turns every run into a measured claim, the way the paper's own
arguments are measurement-shaped (per-stage breakdowns in Figs. 3/4, memory
requests in Fig. 5, utilization in Table 2):

- :mod:`repro.telemetry.spans` — nested spans on the simulated clock;
- :mod:`repro.telemetry.metrics` — one counters/gauges/histograms registry
  unifying the scattered quantitative surfaces behind ``snapshot()``;
- :mod:`repro.telemetry.hooks` — the callback layer trainers, device groups
  and serving schedulers emit events through, decoupled from any exporter;
- :mod:`repro.telemetry.chrome_trace` — Chrome-trace-event JSON export (one
  Perfetto track per device, one thread per resource);
- :mod:`repro.telemetry.runtime` — the per-run binding the engine owns;
- :mod:`repro.telemetry.persistence` — strict-JSON helpers for the NaN
  convention (non-finite floats round-trip as marker strings).
"""

from repro.telemetry.chrome_trace import (
    EXPORTER_REGISTRY,
    TraceTrack,
    build_chrome_trace,
    export_chrome_trace,
)
from repro.telemetry.hooks import (
    CALLBACK_REGISTRY,
    CallbackList,
    LoggingCallback,
    MetricsCallback,
    NULL_CALLBACK,
    TelemetryCallback,
    TracingCallback,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    HISTOGRAM_PERCENTILES,
    MetricsRegistry,
)
from repro.telemetry.persistence import restore_floats, sanitize_floats
from repro.telemetry.runtime import Telemetry
from repro.telemetry.spans import SPAN_DOMAINS, Span, SpanTracer

__all__ = [
    "CALLBACK_REGISTRY",
    "CallbackList",
    "Counter",
    "EXPORTER_REGISTRY",
    "Gauge",
    "HISTOGRAM_PERCENTILES",
    "Histogram",
    "LoggingCallback",
    "MetricsCallback",
    "MetricsRegistry",
    "NULL_CALLBACK",
    "SPAN_DOMAINS",
    "Span",
    "SpanTracer",
    "Telemetry",
    "TelemetryCallback",
    "TraceTrack",
    "TracingCallback",
    "build_chrome_trace",
    "export_chrome_trace",
    "restore_floats",
    "sanitize_floats",
]
