"""Utilization reporting helpers (Table 2 style)."""

from __future__ import annotations

from typing import Dict, Iterable

from repro.baselines.results import TrainingResult


def utilization_summary(results: Iterable[TrainingResult]) -> Dict[str, Dict[str, float]]:
    """GPU utilization (%) per (method, dataset) pair, nvidia-smi style.

    Memory-copy activity counts toward utilization, matching the paper's
    Table 2 measurement note.
    """
    table: Dict[str, Dict[str, float]] = {}
    for result in results:
        table.setdefault(result.method, {})[result.dataset] = result.gpu_utilization * 100.0
    return table
