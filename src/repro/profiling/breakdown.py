"""Latency and computation-time breakdowns (Fig. 3 / Fig. 4 style)."""

from __future__ import annotations

from typing import Dict

from repro.baselines.results import TrainingResult


def latency_breakdown(result: TrainingResult) -> Dict[str, float]:
    """Fractions of the end-to-end time spent on transfer / kernels / host.

    Matches the Fig. 3 view: the denominator is the sum of the GPU-related
    components (as the figure plots the GPU-related training time), and the
    SM utilization is carried alongside.
    """
    transfer = result.breakdown.get("h2d", 0.0) + result.breakdown.get("d2h", 0.0)
    compute = result.breakdown.get("kernel", 0.0)
    cpu = result.breakdown.get("cpu", 0.0)
    total = transfer + compute + cpu
    if total == 0:
        return {"transfer_fraction": 0.0, "compute_fraction": 0.0, "cpu_fraction": 0.0,
                "sm_utilization": result.sm_utilization}
    return {
        "transfer_fraction": transfer / total,
        "compute_fraction": compute / total,
        "cpu_fraction": cpu / total,
        "sm_utilization": result.sm_utilization,
    }


def compute_time_breakdown(result: TrainingResult) -> Dict[str, float]:
    """Fractions of GPU computation time by component (Fig. 4 view).

    The GNN component is the aggregation plus the update GEMMs; RNN covers
    the LSTM/GRU gates; everything else (readout, losses, optimizer) is
    "other".
    """
    categories = result.category_seconds
    gnn = categories.get("aggregation", 0.0) + categories.get("update", 0.0)
    rnn = categories.get("rnn", 0.0)
    other = categories.get("elementwise", 0.0) + categories.get("other", 0.0)
    total = gnn + rnn + other
    if total == 0:
        return {"gnn_fraction": 0.0, "rnn_fraction": 0.0, "other_fraction": 0.0}
    return {
        "gnn_fraction": gnn / total,
        "rnn_fraction": rnn / total,
        "other_fraction": other / total,
    }
