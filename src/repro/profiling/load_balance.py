"""Load-balance analysis of CSR vs sliced CSR aggregation (Fig. 12)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.sliced_csr import SlicedCSRMatrix
from repro.gpu.load_balance import (
    analyze_block_work,
    block_work_from_row_nnz,
    block_work_from_slice_nnz,
)
from repro.gpu.spec import GPUSpec


def sliced_vs_csr_balance(
    graph: DynamicGraph,
    spec: Optional[GPUSpec] = None,
    *,
    slice_capacity: int = 32,
    scale: float = 1.0,
    max_snapshots: int = 8,
) -> Dict[str, float]:
    """Average Balanced/Actual latency ratios of both formats over a dataset.

    Returns the mean imbalance factor (actual / balanced) for the plain-CSR
    row mapping and for the sliced-CSR slice mapping, plus the ratio of the
    two — the quantity Fig. 12's bars visualize.
    """
    spec = spec or GPUSpec()
    csr_imbalances, sliced_imbalances = [], []
    for snapshot in graph.snapshots[:max_snapshots]:
        adjacency = snapshot.adjacency
        if adjacency.nnz == 0:
            continue
        csr_report = analyze_block_work(
            block_work_from_row_nnz(adjacency.row_nnz()), spec, scale=scale
        )
        sliced = SlicedCSRMatrix.from_csr(adjacency, slice_capacity=slice_capacity)
        sliced_report = analyze_block_work(
            block_work_from_slice_nnz(sliced.slice_nnz()), spec, scale=scale
        )
        csr_imbalances.append(csr_report.imbalance)
        sliced_imbalances.append(sliced_report.imbalance)
    if not csr_imbalances:
        return {"csr_imbalance": 1.0, "sliced_imbalance": 1.0, "improvement": 1.0,
                "csr_balanced_fraction": 1.0, "sliced_balanced_fraction": 1.0}
    csr_imbalance = float(np.mean(csr_imbalances))
    sliced_imbalance = float(np.mean(sliced_imbalances))
    return {
        "csr_imbalance": csr_imbalance,
        "sliced_imbalance": sliced_imbalance,
        "improvement": csr_imbalance / sliced_imbalance if sliced_imbalance else 1.0,
        "csr_balanced_fraction": 1.0 / csr_imbalance,
        "sliced_balanced_fraction": 1.0 / sliced_imbalance,
    }


def format_load_balance(rows: Dict[str, Dict[str, float]]) -> str:
    """Render per-dataset load-balance rows as a fixed-width table."""
    lines = [f"{'dataset':<18} {'CSR actual/balanced':>20} {'sliced actual/balanced':>24} {'improvement':>12}"]
    for name, row in rows.items():
        lines.append(
            f"{name:<18} {row['csr_imbalance']:>20.3f} {row['sliced_imbalance']:>24.3f} "
            f"{row['improvement']:>12.3f}"
        )
    return "\n".join(lines)
