"""Profiling/analysis helpers layered on training results and graph data."""

from repro.profiling.breakdown import compute_time_breakdown, latency_breakdown
from repro.profiling.load_balance import format_load_balance, sliced_vs_csr_balance
from repro.profiling.utilization import utilization_summary

__all__ = [
    "compute_time_breakdown",
    "latency_breakdown",
    "format_load_balance",
    "sliced_vs_csr_balance",
    "utilization_summary",
]
