"""Kernel cost records and the analytic execution-time model.

Every kernel in :mod:`repro.kernels` (and every generic dense op observed by
the profiler) produces a :class:`KernelCost`.  The simulated device converts
a cost into execution time with a roofline-style model:

``time = max(compute_time, memory_time) * imbalance``

where compute throughput is de-rated by the kernel's active-thread ratio
(warp execution efficiency) and memory time is driven by the number of
32-byte transactions — the quantity the paper's memory-inefficiency analysis
(§3.2, Fig. 5, Fig. 11a) is framed around.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional

from repro.gpu.spec import GPUSpec

#: canonical kernel categories used by the breakdown figures
CATEGORY_AGGREGATION = "aggregation"
CATEGORY_UPDATE = "update"
CATEGORY_RNN = "rnn"
CATEGORY_ELEMENTWISE = "elementwise"
CATEGORY_OTHER = "other"
CATEGORIES = (
    CATEGORY_AGGREGATION,
    CATEGORY_UPDATE,
    CATEGORY_RNN,
    CATEGORY_ELEMENTWISE,
    CATEGORY_OTHER,
)


@dataclass(frozen=True)
class KernelCost:
    """Hardware cost of one kernel launch.

    Attributes
    ----------
    name:
        Kernel identifier (e.g. ``"spmm_sliced_parallel"``).
    category:
        One of :data:`CATEGORIES`; drives the Fig. 4 compute breakdown.
    flops:
        Floating-point operations executed.
    global_read_bytes / global_write_bytes:
        Useful bytes moved from/to global memory.
    mem_requests / mem_transactions:
        Warp-level requests and 32-byte transactions issued for global
        memory traffic (the Fig. 5 / Fig. 11a metrics).
    active_thread_ratio:
        Average fraction of active threads per warp
        (``warp_execution_efficiency``), in (0, 1].
    imbalance:
        Ratio of actual to perfectly balanced execution time (>= 1); the gap
        Fig. 12 visualizes.
    num_blocks:
        Thread blocks launched (used for the Balanced estimate).
    shared_mem_bytes:
        Shared-memory working set (informational).
    launches:
        Number of device kernel launches this cost represents.
    bandwidth_efficiency:
        Fraction of the device's sustained bandwidth this kernel's access
        pattern achieves (irregular gather/scatter ≪ 1, coalesced streaming
        ≈ 1).  This is the knob that separates the PyG, GE-SpMM and PiPAD
        aggregation kernels beyond raw transaction counts.
    """

    name: str
    category: str = CATEGORY_OTHER
    flops: float = 0.0
    global_read_bytes: float = 0.0
    global_write_bytes: float = 0.0
    mem_requests: float = 0.0
    mem_transactions: float = 0.0
    active_thread_ratio: float = 1.0
    imbalance: float = 1.0
    num_blocks: int = 1
    shared_mem_bytes: float = 0.0
    launches: int = 1
    bandwidth_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}; expected one of {CATEGORIES}")
        if not 0.0 < self.active_thread_ratio <= 1.0:
            raise ValueError(f"active_thread_ratio must be in (0, 1], got {self.active_thread_ratio}")
        if self.imbalance < 1.0:
            raise ValueError(f"imbalance must be >= 1, got {self.imbalance}")
        for attr in ("flops", "global_read_bytes", "global_write_bytes", "mem_requests", "mem_transactions"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")
        if not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise ValueError(
                f"bandwidth_efficiency must be in (0, 1], got {self.bandwidth_efficiency}"
            )

    # -- time model ---------------------------------------------------------
    def compute_seconds(self, spec: GPUSpec) -> float:
        """Time the arithmetic would take at de-rated peak throughput."""
        if self.flops == 0:
            return 0.0
        return self.flops / (spec.peak_flops * self.active_thread_ratio)

    def memory_seconds(self, spec: GPUSpec) -> float:
        """Time the global-memory traffic takes at sustained bandwidth."""
        bytes_moved = self.mem_transactions * spec.transaction_bytes
        bytes_moved = max(bytes_moved, self.global_read_bytes + self.global_write_bytes)
        if bytes_moved == 0:
            return 0.0
        return bytes_moved / (spec.effective_bandwidth * self.bandwidth_efficiency)

    def execution_seconds(self, spec: GPUSpec) -> float:
        """Roofline execution time (excluding launch overhead)."""
        return max(self.compute_seconds(spec), self.memory_seconds(spec)) * self.imbalance

    def balanced_seconds(self, spec: GPUSpec) -> float:
        """Ideal perfectly-load-balanced execution time (Fig. 12 "Balanced")."""
        return max(self.compute_seconds(spec), self.memory_seconds(spec))

    # -- algebra ------------------------------------------------------------
    def scaled(self, factor: float) -> "KernelCost":
        """Scale all extensive quantities by ``factor`` (workload extrapolation)."""
        if factor <= 0:
            raise ValueError("scale factor must be > 0")
        return replace(
            self,
            flops=self.flops * factor,
            global_read_bytes=self.global_read_bytes * factor,
            global_write_bytes=self.global_write_bytes * factor,
            mem_requests=self.mem_requests * factor,
            mem_transactions=self.mem_transactions * factor,
            num_blocks=max(1, int(round(self.num_blocks * factor))),
        )

    def merged_with(self, other: "KernelCost", name: Optional[str] = None) -> "KernelCost":
        """Combine two costs into one record (used for fused kernels)."""
        total_time_weight = self.flops + other.flops + 1e-30
        ratio = (
            self.active_thread_ratio * (self.flops + 1e-30)
            + other.active_thread_ratio * (other.flops + 1e-30)
        ) / total_time_weight
        return KernelCost(
            name=name or f"{self.name}+{other.name}",
            category=self.category if self.category == other.category else CATEGORY_OTHER,
            flops=self.flops + other.flops,
            global_read_bytes=self.global_read_bytes + other.global_read_bytes,
            global_write_bytes=self.global_write_bytes + other.global_write_bytes,
            mem_requests=self.mem_requests + other.mem_requests,
            mem_transactions=self.mem_transactions + other.mem_transactions,
            active_thread_ratio=min(1.0, max(ratio, 1e-3)),
            imbalance=max(self.imbalance, other.imbalance),
            num_blocks=self.num_blocks + other.num_blocks,
            shared_mem_bytes=max(self.shared_mem_bytes, other.shared_mem_bytes),
            launches=self.launches + other.launches,
            bandwidth_efficiency=min(self.bandwidth_efficiency, other.bandwidth_efficiency),
        )


def summarize_costs(costs: Iterable[KernelCost], spec: GPUSpec) -> Dict[str, float]:
    """Aggregate a stream of kernel costs into per-category seconds and totals."""
    summary: Dict[str, float] = {f"{cat}_seconds": 0.0 for cat in CATEGORIES}
    summary.update(
        total_seconds=0.0,
        total_flops=0.0,
        total_requests=0.0,
        total_transactions=0.0,
        total_launches=0,
    )
    for cost in costs:
        seconds = cost.execution_seconds(spec)
        summary[f"{cost.category}_seconds"] += seconds
        summary["total_seconds"] += seconds
        summary["total_flops"] += cost.flops
        summary["total_requests"] += cost.mem_requests
        summary["total_transactions"] += cost.mem_transactions
        summary["total_launches"] += cost.launches
    return summary
