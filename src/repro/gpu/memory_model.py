"""Global-memory access model (§3.2 of the paper).

Mainstream GPUs serve global memory in 32-byte transactions, and a warp of
32 threads issuing 4-byte scalar loads covers at most 128 bytes per request.
Reading one dense feature row of dimension ``F`` therefore exhibits two
inefficiency regimes:

- **bandwidth unsaturation** when ``4*F < 32``: the transaction moves more
  bytes than are useful;
- **request burst** when ``4*F > 128``: a single row needs several requests.

Vector memory instructions (float2/float4 per thread) widen the per-request
coverage and are how PiPAD handles large dimensions (§4.2).  These helpers
compute request/transaction counts for a *row access* performed by one warp;
kernel estimators multiply them by the number of accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.spec import GPUSpec

#: bytes per float32 feature element
FLOAT_BYTES = 4


@dataclass(frozen=True)
class RowAccessCost:
    """Requests/transactions/useful bytes for one warp reading one dense row."""

    requests: float
    transactions: float
    useful_bytes: float
    wasted_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.useful_bytes + self.wasted_bytes


def row_access(
    feature_dim: int,
    spec: GPUSpec,
    *,
    vectorized: bool = False,
    coalesced_rows: int = 1,
) -> RowAccessCost:
    """Cost of one warp fetching ``coalesced_rows`` feature rows of ``feature_dim``.

    Parameters
    ----------
    feature_dim:
        Number of float32 elements per row.
    vectorized:
        Use vector memory instructions (wider per-request coverage).
    coalesced_rows:
        Number of rows fetched back-to-back in one coalesced access (PiPAD's
        coalescent feature matrices make this ``S_per``; slice coalescing adds
        multiple slices per warp on top).
    """
    if feature_dim <= 0:
        raise ValueError("feature_dim must be > 0")
    if coalesced_rows <= 0:
        raise ValueError("coalesced_rows must be > 0")
    useful = float(feature_dim * FLOAT_BYTES * coalesced_rows)
    request_capacity = spec.vector_request_bytes if vectorized else spec.request_bytes
    requests = max(1.0, np.ceil(useful / request_capacity))
    transactions = max(1.0, np.ceil(useful / spec.transaction_bytes))
    wasted = transactions * spec.transaction_bytes - useful
    return RowAccessCost(
        requests=float(requests),
        transactions=float(transactions),
        useful_bytes=useful,
        wasted_bytes=float(max(0.0, wasted)),
    )


def classify_dimension(feature_dim: int, spec: GPUSpec) -> str:
    """Classify a feature dimension into the paper's §3.2 regimes."""
    row_bytes = feature_dim * FLOAT_BYTES
    if row_bytes < spec.transaction_bytes:
        return "bandwidth-unsaturated"
    if row_bytes > spec.request_bytes:
        return "request-burst"
    return "balanced"


def feature_cache_budget_bytes(
    spec: GPUSpec,
    *,
    model_bytes: float = 0.0,
    activation_bytes: float = 0.0,
    fraction: float = 0.5,
    safety: float = 0.9,
) -> int:
    """GPU-tier budget for the feature cache: what HBM can spare.

    Reserves the model parameters and the frame's activation working set
    (plus a ``safety`` headroom for allocator slack), then grants
    ``fraction`` of the remainder to feature rows.  Clamped at zero: an
    over-committed device simply gets no GPU tier and every row stages
    through the pinned-host tier instead.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    if not 0.0 < safety <= 1.0:
        raise ValueError("safety must be within (0, 1]")
    available = spec.memory_bytes * safety - model_bytes - activation_bytes
    return int(max(0.0, available) * fraction)


def contiguous_bytes_cost(nbytes: float, spec: GPUSpec, *, vectorized: bool = False) -> RowAccessCost:
    """Requests/transactions for a fully coalesced streaming access of ``nbytes``."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if nbytes == 0:
        return RowAccessCost(0.0, 0.0, 0.0, 0.0)
    request_capacity = spec.vector_request_bytes if vectorized else spec.request_bytes
    return RowAccessCost(
        requests=float(np.ceil(nbytes / request_capacity)),
        transactions=float(np.ceil(nbytes / spec.transaction_bytes)),
        useful_bytes=float(nbytes),
        wasted_bytes=0.0,
    )
