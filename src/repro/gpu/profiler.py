"""Cost observer: turns autograd op events into kernel costs.

The DGNN models execute through :mod:`repro.tensor`, which emits an
:class:`~repro.tensor.function.OpEvent` for every forward/backward operation.
:class:`KernelCostCollector` listens to that stream, estimates a
:class:`~repro.gpu.kernel_cost.KernelCost` for each generic dense op
(matmuls, activations, reductions, data movement) and passes through the
pre-computed costs that the specialized aggregation/update kernels attach to
their events.  Trainers install the collector around a forward/backward pass
and then launch the drained costs on the simulated device with the right
stream dependencies.

Workload extrapolation
----------------------
Dataset analogues are generated at laptop scale but represent graphs that are
100–1000× larger (``DESIGN.md`` §2).  The collector therefore multiplies the
extensive quantities of every op whose leading dimension equals the snapshot
node count by ``scale``, so kernel and transfer times land in the regime the
paper measured while numerics stay cheap.  Ops that do not touch the node
dimension (e.g. EvolveGCN's weight-evolving GRU) are left unscaled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gpu.kernel_cost import (
    CATEGORY_AGGREGATION,
    CATEGORY_ELEMENTWISE,
    CATEGORY_OTHER,
    CATEGORY_RNN,
    CATEGORY_UPDATE,
    KernelCost,
)
from repro.gpu.memory_model import contiguous_bytes_cost
from repro.gpu.spec import GPUSpec
from repro.tensor.function import OpEvent

#: ops that are pure metadata changes on the device (no kernel launched)
_FREE_OPS = {"reshape"}

#: transcendental activations cost a few flops per element
_TRANSCENDENTAL = {"sigmoid", "tanh", "exp", "log", "softmax"}

#: ops that move data without arithmetic
_COPY_OPS = {"transpose", "concat", "stack", "getitem", "dropout"}


def _scope_to_category(scope: str) -> str:
    if scope == "update":
        return CATEGORY_UPDATE
    if scope == "rnn":
        return CATEGORY_RNN
    if scope == "aggregation":
        return CATEGORY_AGGREGATION
    return CATEGORY_OTHER


def _shape_size(shape: Tuple[int, ...]) -> int:
    return int(np.prod(shape)) if shape else 1


def estimate_event_cost(event: OpEvent, spec: GPUSpec) -> Optional[KernelCost]:
    """Estimate the kernel cost of a generic dense op event.

    Returns ``None`` for events that launch no device kernel.  Events that
    carry an explicit ``kernel_cost`` attribute are returned as-is (with the
    backward pass of fused ops handled by the producing kernel).
    """
    explicit = event.attrs.get("kernel_cost")
    if explicit is not None:
        return explicit
    if event.name in _FREE_OPS:
        return None

    scope = str(event.attrs.get("scope", "other"))
    category = _scope_to_category(scope)
    out_elems = sum(_shape_size(s) for s in event.output_shapes)
    in_elems = sum(_shape_size(s) for s in event.input_shapes)

    if event.name == "matmul":
        if event.phase == "forward":
            (n, k), (_, m) = event.input_shapes[0], event.input_shapes[1]
            flops = 2.0 * n * k * m
            read_bytes = (n * k + k * m) * 4.0
            write_bytes = n * m * 4.0
            launches = 1
        else:
            # backward of C = A @ B launches two GEMMs: dA = dC B^T, dB = A^T dC
            (n, m) = event.input_shapes[0]
            total_out = sum(_shape_size(s) for s in event.output_shapes)
            k = max(1, total_out // max(1, n + m))
            flops = 4.0 * n * k * m
            read_bytes = 2.0 * (n * m + k * m + n * k) * 4.0
            write_bytes = (n * k + k * m) * 4.0
            launches = 2
        access = contiguous_bytes_cost(read_bytes + write_bytes, spec)
        return KernelCost(
            name=f"gemm_{event.phase}",
            category=category if category != CATEGORY_OTHER else CATEGORY_UPDATE,
            flops=flops,
            global_read_bytes=read_bytes,
            global_write_bytes=write_bytes,
            mem_requests=access.requests,
            mem_transactions=access.transactions,
            active_thread_ratio=1.0,
            launches=launches,
        )

    if event.name in _COPY_OPS:
        nbytes = (in_elems + out_elems) * 4.0
        access = contiguous_bytes_cost(nbytes, spec)
        return KernelCost(
            name=f"{event.name}_{event.phase}",
            category=category,
            flops=0.0,
            global_read_bytes=in_elems * 4.0,
            global_write_bytes=out_elems * 4.0,
            mem_requests=access.requests,
            mem_transactions=access.transactions,
            launches=1,
        )

    # Elementwise / reduction ops: memory bound streaming kernels.
    flops_per_elem = 4.0 if event.name in _TRANSCENDENTAL else 1.0
    work_elems = max(in_elems, out_elems)
    nbytes = (in_elems + out_elems) * 4.0
    access = contiguous_bytes_cost(nbytes, spec)
    return KernelCost(
        name=f"{event.name}_{event.phase}",
        category=category if category != CATEGORY_OTHER else CATEGORY_ELEMENTWISE,
        flops=flops_per_elem * work_elems,
        global_read_bytes=in_elems * 4.0,
        global_write_bytes=out_elems * 4.0,
        mem_requests=access.requests,
        mem_transactions=access.transactions,
        launches=1,
    )


@dataclass
class KernelCostCollector:
    """Op observer that accumulates kernel costs for one execution region.

    Parameters
    ----------
    spec:
        GPU spec used for generic-op estimates.
    num_nodes:
        Node count of the snapshots currently being processed; ops whose
        leading dimension matches are scaled by ``scale``.
    scale:
        Workload extrapolation factor (1.0 = no extrapolation).
    """

    spec: GPUSpec
    num_nodes: int = 0
    scale: float = 1.0
    costs: List[KernelCost] = field(default_factory=list)
    events_seen: int = 0

    def __call__(self, event: OpEvent) -> None:
        self.events_seen += 1
        cost = estimate_event_cost(event, self.spec)
        if cost is None:
            return
        # Kernels that attach an explicit cost (SpMM flavours, UpdateGEMM)
        # already applied their own workload scale; only generic dense ops
        # are extrapolated here.
        is_explicit = event.attrs.get("kernel_cost") is not None
        if not is_explicit and self.scale != 1.0 and self._touches_node_dim(event):
            cost = cost.scaled(self.scale)
        self.costs.append(cost)

    def _touches_node_dim(self, event: OpEvent) -> bool:
        if self.num_nodes <= 0:
            return False
        shapes = tuple(event.input_shapes) + tuple(event.output_shapes)
        return any(len(s) >= 1 and s[0] == self.num_nodes for s in shapes)

    # -- draining -----------------------------------------------------------
    def drain(self) -> List[KernelCost]:
        """Return and clear the collected costs."""
        drained, self.costs = self.costs, []
        return drained

    def peek_total_seconds(self) -> float:
        return sum(c.execution_seconds(self.spec) for c in self.costs)

    def reset(self) -> None:
        self.costs.clear()
        self.events_seen = 0
