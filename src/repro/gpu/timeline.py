"""Event timeline of the simulated device.

The timeline is a resource-constrained list scheduler: every operation is
bound to one *resource* (the GPU compute engine, the PCIe copy engine, or the
host CPU), belongs to one *stream* (a FIFO ordering constraint, mirroring
CUDA streams) and may depend on previously submitted operations.  An
operation starts as soon as its resource is free, all ops before it in its
stream have finished and all its dependencies have finished; this is enough
to reproduce the overlap behaviour the paper's pipeline (Fig. 8) relies on —
asynchronous transfers hiding behind kernels, partition ``k+1`` transfers
overlapping partition ``k`` compute, CPU-side preparation overlapping both.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: canonical resources
RESOURCE_COMPUTE = "compute"
RESOURCE_PCIE_H2D = "pcie_h2d"
RESOURCE_PCIE_D2H = "pcie_d2h"
RESOURCE_CPU = "cpu"
RESOURCES = (RESOURCE_COMPUTE, RESOURCE_PCIE_H2D, RESOURCE_PCIE_D2H, RESOURCE_CPU)

#: process-wide op identity: ``op_id`` restarts per timeline, but dependency
#: edges cross timelines (p2p recv ops, cross-device gates), so the
#: happens-before analyzer needs an identifier that is unique across every
#: timeline of a run
_UID_COUNTER = itertools.count()


@dataclass(frozen=True)
class TimelineOp:
    """One scheduled operation."""

    op_id: int
    label: str
    kind: str
    resource: str
    stream: str
    start: float
    end: float
    attrs: Dict[str, object] = field(default_factory=dict)
    #: process-unique identity (dep edges may point at other timelines)
    uid: int = -1
    #: uids of the ops this one was submitted ``depends_on``
    deps: Tuple[int, ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Collects operations and exposes busy-time / utilization statistics."""

    def __init__(self) -> None:
        self._ops: List[TimelineOp] = []
        self._resource_free: Dict[str, float] = {}
        self._stream_free: Dict[str, float] = {}
        self._next_id = 0

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        *,
        label: str,
        kind: str,
        resource: str,
        duration: float,
        stream: str = "default",
        depends_on: Optional[Sequence[TimelineOp]] = None,
        attrs: Optional[Dict[str, object]] = None,
        not_before: float = 0.0,
    ) -> TimelineOp:
        """Schedule an operation and return its placed record.

        ``not_before`` is an earliest-start constraint in timeline seconds;
        the serving engine uses it to model work arriving while the device is
        idle (a request cannot be processed before it arrives).
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        ready = max(0.0, not_before)
        if depends_on:
            ready = max(ready, max(op.end for op in depends_on))
        ready = max(ready, self._stream_free.get(stream, 0.0))
        start = max(ready, self._resource_free.get(resource, 0.0))
        end = start + duration
        op = TimelineOp(
            op_id=self._next_id,
            label=label,
            kind=kind,
            resource=resource,
            stream=stream,
            start=start,
            end=end,
            attrs=dict(attrs or {}),
            uid=next(_UID_COUNTER),
            deps=tuple(op.uid for op in depends_on) if depends_on else (),
        )
        self._next_id += 1
        self._ops.append(op)
        self._resource_free[resource] = end
        self._stream_free[stream] = end
        return op

    # -- queries -------------------------------------------------------------
    @property
    def ops(self) -> List[TimelineOp]:
        return list(self._ops)

    def resource_free_at(self, resource: str) -> float:
        """Earliest time a new op could start on ``resource``."""
        return self._resource_free.get(resource, 0.0)

    def stream_free_at(self, stream: str) -> float:
        """Earliest time a new op could start on ``stream`` (FIFO ordering)."""
        return self._stream_free.get(stream, 0.0)

    def makespan(self) -> float:
        """End time of the last scheduled operation."""
        return max((op.end for op in self._ops), default=0.0)

    def busy_time(self, resources: Iterable[str]) -> float:
        """Union length of busy intervals across the given resources."""
        intervals = sorted(
            (op.start, op.end) for op in self._ops if op.resource in set(resources) and op.duration > 0
        )
        if not intervals:
            return 0.0
        busy = 0.0
        cur_start, cur_end = intervals[0]
        for start, end in intervals[1:]:
            if start > cur_end:
                busy += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        busy += cur_end - cur_start
        return busy

    def resource_seconds(self, resource: str) -> float:
        """Total scheduled duration on one resource (no union — FIFO resource)."""
        return sum(op.duration for op in self._ops if op.resource == resource)

    def kind_seconds(self) -> Dict[str, float]:
        """Total duration per operation kind."""
        totals: Dict[str, float] = {}
        for op in self._ops:
            totals[op.kind] = totals.get(op.kind, 0.0) + op.duration
        return totals

    def gpu_utilization(self) -> float:
        """Fraction of the makespan during which the GPU is busy.

        Mirrors ``nvidia-smi`` utilization as used for Table 2: time with any
        kernel *or* device copy engine active counts as busy.
        """
        total = self.makespan()
        if total == 0:
            return 0.0
        busy = self.busy_time([RESOURCE_COMPUTE, RESOURCE_PCIE_H2D, RESOURCE_PCIE_D2H])
        return min(1.0, busy / total)

    def sm_utilization(self) -> float:
        """Fraction of the makespan during which compute kernels execute.

        Mirrors the PyTorch-profiler SM utilization of Fig. 3 (copies do not
        count).
        """
        total = self.makespan()
        if total == 0:
            return 0.0
        return min(1.0, self.busy_time([RESOURCE_COMPUTE]) / total)

    def reset(self) -> None:
        self._ops.clear()
        self._resource_free.clear()
        self._stream_free.clear()
        self._next_id = 0
