"""SpMM load-balance model (paper §4.1 and Fig. 12).

CSR-based aggregation assigns whole adjacency rows to warps/blocks, so the
skewed degree distributions of real graphs translate into idle blocks waiting
for the heaviest one.  Sliced CSR bounds per-slice work by the slice
capacity, flattening the distribution.  Following the methodology of
Huang et al. [16] that the paper references, the *balanced* latency is the
total work divided by the number of blocks the GPU can keep resident, and
the imbalance factor is the ratio of the wave-limited actual latency to it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.spec import GPUSpec


@dataclass(frozen=True)
class LoadBalanceReport:
    """Work distribution statistics for one kernel launch."""

    num_blocks: int
    total_work: float
    max_block_work: float
    mean_block_work: float
    imbalance: float

    @property
    def balanced_fraction(self) -> float:
        """Fraction of the actual latency that the balanced execution needs."""
        return 1.0 / self.imbalance if self.imbalance > 0 else 1.0


def block_work_from_row_nnz(row_nnz: np.ndarray, rows_per_block: int = 8) -> np.ndarray:
    """Aggregate per-row work into per-thread-block work (CSR row mapping)."""
    row_nnz = np.asarray(row_nnz, dtype=np.float64)
    if rows_per_block <= 0:
        raise ValueError("rows_per_block must be > 0")
    if len(row_nnz) == 0:
        return np.zeros(0)
    pad = (-len(row_nnz)) % rows_per_block
    padded = np.concatenate([row_nnz, np.zeros(pad)])
    # Every row costs at least one unit (the warp is scheduled even for an
    # empty row), which is the redundant-access effect sliced CSR avoids.
    padded = np.maximum(padded, 1.0)
    return padded.reshape(-1, rows_per_block).sum(axis=1)


def block_work_from_slice_nnz(slice_nnz: np.ndarray, slices_per_block: int = 8) -> np.ndarray:
    """Aggregate per-slice work into per-thread-block work (sliced CSR mapping)."""
    slice_nnz = np.asarray(slice_nnz, dtype=np.float64)
    if slices_per_block <= 0:
        raise ValueError("slices_per_block must be > 0")
    if len(slice_nnz) == 0:
        return np.zeros(0)
    pad = (-len(slice_nnz)) % slices_per_block
    padded = np.concatenate([slice_nnz, np.zeros(pad)])
    return padded.reshape(-1, slices_per_block).sum(axis=1)


def analyze_block_work(
    block_work: np.ndarray, spec: GPUSpec, *, scale: float = 1.0
) -> LoadBalanceReport:
    """Derive the imbalance factor from a per-block work distribution.

    The estimate follows the classic greedy/list-scheduling bound: blocks are
    dispatched to ``spec.max_active_blocks`` resident slots as they free up,
    so the finish time is at most the perfectly balanced time plus (almost)
    one heaviest block:

    ``balanced = total work / min(slots, num_blocks)``
    ``actual   = balanced + max_block * (1 - 1/slots)``
    ``imbalance = actual / balanced``

    ``scale`` extrapolates the *number* of blocks (the workload is ``scale``
    times larger with the same per-block distribution) without changing the
    per-block work, matching how the rest of the cost model extrapolates.
    """
    block_work = np.asarray(block_work, dtype=np.float64)
    if len(block_work) == 0 or block_work.sum() == 0:
        return LoadBalanceReport(0, 0.0, 0.0, 0.0, 1.0)
    if scale <= 0:
        raise ValueError("scale must be > 0")
    slots = max(1, spec.max_active_blocks)
    total = float(block_work.sum()) * scale
    num_blocks = int(round(len(block_work) * scale))
    max_block = float(block_work.max())
    balanced = total / min(slots, max(1, num_blocks))
    if num_blocks <= slots:
        # Single wave: every block starts immediately, the heaviest one decides.
        actual = max_block
    else:
        actual = total / slots + max_block * (1.0 - 1.0 / slots)
    imbalance = max(1.0, actual / balanced) if balanced > 0 else 1.0
    return LoadBalanceReport(
        num_blocks=num_blocks,
        total_work=total,
        max_block_work=max_block,
        mean_block_work=float(block_work.mean()),
        imbalance=imbalance,
    )
