"""A group of simulated GPUs coordinated through one interconnect.

:class:`DeviceGroup` owns ``K`` :class:`~repro.gpu.device.SimulatedGPU`
timelines that share a single simulated clock: a :class:`~repro.gpu.timeline.
TimelineOp` only carries start/end times, so an op scheduled on one device
can appear in another device's ``depends_on`` list — that is the
cross-device dependency edge the distributed trainer uses to order shard
compute after remote halo data has arrived.

Collectives (``all_reduce``, ``all_gather``, ``halo_exchange``) are
bulk-synchronous: every participant starts at the same instant — the latest
readiness over all devices' dependencies, communication engines and streams
— and occupies its ``peer_link`` resource for the ring-cost duration from
:class:`~repro.gpu.interconnect.Interconnect`.  Point-to-point ``send``
transfers involve only their two endpoints and occupy both of their
``peer_link`` engines — the primitive the frame-pipeline trainer hands
recurrent state (and state gradients) between stages with.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.gpu.device import SimulatedGPU
from repro.gpu.interconnect import Interconnect, LinkSpec
from repro.gpu.spec import GPUSpec, HostSpec, PCIeSpec
from repro.gpu.timeline import TimelineOp

#: the per-device communication engine collectives occupy
RESOURCE_PEER_LINK = "peer_link"
#: the FIFO stream collectives are issued on (mirrors NCCL's comm stream)
COMM_STREAM = "comm"

#: per-device dependency lists: one sequence of ops per group member
PerDeviceDeps = Optional[Sequence[Optional[Sequence[TimelineOp]]]]

#: observer of scheduled communication:
#: ``(kind, label, seconds, nbytes, start, end)``
CollectiveObserver = Callable[[str, str, float, float, float, float], None]


class DeviceGroup:
    """Coordinates ``K`` simulated-GPU timelines plus their interconnect."""

    def __init__(
        self,
        num_devices: int = 1,
        *,
        gpu: Optional[GPUSpec] = None,
        pcie: Optional[PCIeSpec] = None,
        host: Optional[HostSpec] = None,
        link: Optional[LinkSpec] = None,
        interconnect_kind: str = "nvlink",
        use_cuda_graph: bool = False,
        devices: Optional[Sequence[SimulatedGPU]] = None,
    ) -> None:
        if devices is not None:
            if not devices:
                raise ValueError("devices must not be empty")
            self.devices: List[SimulatedGPU] = list(devices)
        else:
            if num_devices < 1:
                raise ValueError("num_devices must be >= 1")
            self.devices = [
                SimulatedGPU(gpu, pcie, host, use_cuda_graph=use_cuda_graph)
                for _ in range(num_devices)
            ]
        self.interconnect = Interconnect(len(self.devices), link, kind=interconnect_kind)
        #: accumulated seconds per collective kind (single-device view)
        self.collective_seconds: Dict[str, float] = {}
        self._observers: List[CollectiveObserver] = []

    # ------------------------------------------------------------------ observation
    def add_observer(self, observer: CollectiveObserver) -> None:
        """Register a callable notified of every collective/p2p transfer.

        The telemetry layer uses this to turn group communication into
        ``on_collective`` hook events without the group importing it.
        """
        self._observers.append(observer)

    def _notify(
        self, kind: str, label: str, seconds: float, nbytes: float, start: float, end: float
    ) -> None:
        for observer in self._observers:
            observer(kind, label, seconds, nbytes, start, end)

    # ------------------------------------------------------------------ container
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def lead(self) -> SimulatedGPU:
        """Device 0: the one that also runs shared host-side work."""
        return self.devices[0]

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[SimulatedGPU]:
        return iter(self.devices)

    def __getitem__(self, index: int) -> SimulatedGPU:
        return self.devices[index]

    # ------------------------------------------------------------------ collectives
    def _ready_time(self, per_device_deps: PerDeviceDeps, not_before: float) -> float:
        ready = max(0.0, not_before)
        for index, device in enumerate(self.devices):
            timeline = device.timeline
            ready = max(
                ready,
                timeline.resource_free_at(RESOURCE_PEER_LINK),
                timeline.stream_free_at(COMM_STREAM),
            )
            deps = per_device_deps[index] if per_device_deps is not None else None
            if deps:
                ready = max(ready, max(op.end for op in deps))
        return ready

    def _collective(
        self,
        kind: str,
        label: str,
        seconds: float,
        nbytes: float,
        depends_on: PerDeviceDeps,
        not_before: float,
    ) -> List[TimelineOp]:
        if depends_on is not None and len(depends_on) != len(self.devices):
            raise ValueError(
                f"depends_on must list one entry per device "
                f"({len(self.devices)}), got {len(depends_on)}"
            )
        start = self._ready_time(depends_on, not_before)
        ops = [
            device.timeline.submit(
                label=label,
                kind="collective",
                resource=RESOURCE_PEER_LINK,
                duration=seconds,
                stream=COMM_STREAM,
                not_before=start,
                attrs={"collective": kind, "bytes": float(nbytes)},
            )
            for device in self.devices
        ]
        self.collective_seconds[kind] = self.collective_seconds.get(kind, 0.0) + seconds
        self._notify(kind, label, seconds, nbytes, ops[0].start, ops[0].end)
        return ops

    def all_reduce(
        self,
        nbytes: float,
        *,
        label: str = "all_reduce",
        depends_on: PerDeviceDeps = None,
        not_before: float = 0.0,
    ) -> List[TimelineOp]:
        """Ring all-reduce of an ``nbytes`` buffer; returns one op per device."""
        seconds = self.interconnect.all_reduce_seconds(nbytes)
        return self._collective("all_reduce", label, seconds, nbytes, depends_on, not_before)

    def all_gather(
        self,
        nbytes_per_device: float,
        *,
        label: str = "all_gather",
        depends_on: PerDeviceDeps = None,
        not_before: float = 0.0,
    ) -> List[TimelineOp]:
        """Ring all-gather where each device contributes ``nbytes_per_device``."""
        seconds = self.interconnect.all_gather_seconds(nbytes_per_device)
        return self._collective(
            "all_gather", label, seconds, nbytes_per_device, depends_on, not_before
        )

    def halo_exchange(
        self,
        bytes_per_device: Sequence[float],
        *,
        label: str = "halo_exchange",
        depends_on: PerDeviceDeps = None,
        not_before: float = 0.0,
    ) -> List[TimelineOp]:
        """Neighbor exchange of halo rows; cost bounded by the busiest device."""
        if len(bytes_per_device) != len(self.devices):
            raise ValueError(
                f"bytes_per_device must list one entry per device "
                f"({len(self.devices)}), got {len(bytes_per_device)}"
            )
        heaviest = max(float(b) for b in bytes_per_device)
        seconds = self.interconnect.halo_exchange_seconds(heaviest)
        return self._collective("halo_exchange", label, seconds, heaviest, depends_on, not_before)

    # ------------------------------------------------------------------ point to point
    def send(
        self,
        src: int,
        dst: int,
        nbytes: float,
        *,
        label: str = "p2p",
        depends_on: Optional[Sequence[TimelineOp]] = None,
        not_before: float = 0.0,
    ) -> Tuple[TimelineOp, TimelineOp]:
        """Point-to-point copy from ``src`` to ``dst`` over the peer link.

        Returns the ``(send_op, recv_op)`` pair: one op on each endpoint's
        timeline, covering the same interval and occupying both devices'
        ``peer_link`` engines for the transfer duration (a busy link delays
        collectives and further sends alike).  Dependents on the receiving
        device should wait on ``recv_op`` — that is the cross-device edge the
        pipeline trainer uses to hand the recurrent state to the next stage.

        Unlike the collectives, ``depends_on`` is a plain op sequence (only
        the two endpoints participate, so there is no per-device fan-out).
        """
        for name, device in (("src", src), ("dst", dst)):
            if not 0 <= device < len(self.devices):
                raise ValueError(
                    f"{name} {device} out of range [0, {len(self.devices)})"
                )
        if src == dst:
            raise ValueError(f"src and dst must differ, both are {src}")
        seconds = self.interconnect.peer_seconds(nbytes, src, dst)
        ready = max(0.0, not_before)
        if depends_on:
            ready = max(ready, max(op.end for op in depends_on))
        for index in (src, dst):
            timeline = self.devices[index].timeline
            ready = max(
                ready,
                timeline.resource_free_at(RESOURCE_PEER_LINK),
                timeline.stream_free_at(COMM_STREAM),
            )
        send_op, recv_op = (
            self.devices[index].timeline.submit(
                label=f"{label}_{suffix}",
                kind="collective",
                resource=RESOURCE_PEER_LINK,
                duration=seconds,
                stream=COMM_STREAM,
                not_before=ready,
                attrs={
                    "collective": "peer_transfer",
                    "bytes": float(nbytes),
                    "peer": peer,
                },
            )
            for index, suffix, peer in ((src, "send", dst), (dst, "recv", src))
        )
        self.collective_seconds["peer_transfer"] = (
            self.collective_seconds.get("peer_transfer", 0.0) + seconds
        )
        self._notify(
            "peer_transfer", label, seconds, float(nbytes), send_op.start, send_op.end
        )
        return send_op, recv_op

    def barrier(
        self, *, label: str = "barrier", depends_on: PerDeviceDeps = None
    ) -> List[TimelineOp]:
        """Zero-duration synchronization point across all devices.

        A barrier is only passed once every device has drained *all* its
        previously scheduled work, so it waits on each device's current
        makespan, not just the communication engine.
        """
        drained = self.makespan()
        return self._collective("barrier", label, 0.0, 0.0, depends_on, drained)

    # ------------------------------------------------------------------ metrics
    def makespan(self) -> float:
        """End time of the last op on any device (the group's wall clock)."""
        return max(device.elapsed_seconds() for device in self.devices)

    def device_seconds(self) -> List[float]:
        return [device.elapsed_seconds() for device in self.devices]

    def breakdown(self) -> Dict[str, float]:
        """Seconds per op kind summed across devices, plus per-collective totals.

        Compute/copy kinds add up across devices (the work is genuinely
        split), but one collective occupies *every* device's comm engine for
        the same interval — summing those K identical ops would overstate
        communication K-fold, so the ``collective`` total is the single-clock
        view, consistent with the per-kind ``collective_*`` entries.
        """
        totals: Dict[str, float] = {}
        for device in self.devices:
            for kind, seconds in device.timeline.kind_seconds().items():
                if kind != "collective":
                    totals[kind] = totals.get(kind, 0.0) + seconds
        if self.collective_seconds:
            totals["collective"] = sum(self.collective_seconds.values())
        for kind, seconds in self.collective_seconds.items():
            totals[f"collective_{kind}"] = seconds
        totals["makespan"] = self.makespan()
        return totals

    def reset(self) -> None:
        for device in self.devices:
            device.reset()
        self.collective_seconds.clear()
