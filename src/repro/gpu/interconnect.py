"""Peer-to-peer interconnect cost model for multi-GPU device groups.

Models the device-to-device links (NVLink or PCIe peer transfers) and the
bulk-synchronous collectives scheduled over them.  Collectives use the
standard ring algorithms, so their cost follows the usual α–β form: an
``all_reduce`` of ``N`` bytes over ``K`` devices runs ``2(K-1)`` steps each
moving ``N/K`` bytes per link; an ``all_gather`` runs ``K-1`` such steps.
The cost is symmetric in the endpoints — the rings are bidirectional — which
the distributed tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LinkSpec:
    """One peer link: sustained bandwidth plus per-message latency."""

    #: sustained per-direction bandwidth in GB/s
    bandwidth_gbs: float
    #: per-message latency (driver + routing) in µs
    latency_us: float

    def __post_init__(self) -> None:
        check_positive("bandwidth_gbs", self.bandwidth_gbs)
        if self.latency_us < 0:
            raise ValueError("latency_us must be >= 0")

    def transfer_seconds(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across one hop of this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes == 0:
            return 0.0
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbs * 1e9)


#: NVLink 2.0 (V100 era): ~25 GB/s per direction per link, sub-µs routing
NVLINK = LinkSpec(bandwidth_gbs=25.0, latency_us=2.0)
#: PCIe 3.0 peer-to-peer through the switch: lower bandwidth, higher latency
PCIE_PEER = LinkSpec(bandwidth_gbs=10.0, latency_us=10.0)

_LINK_KINDS = {"nvlink": NVLINK, "pcie": PCIE_PEER}


class Interconnect:
    """Ring-topology interconnect among ``num_devices`` peers."""

    def __init__(
        self,
        num_devices: int,
        link: Optional[LinkSpec] = None,
        *,
        kind: str = "nvlink",
    ) -> None:
        check_positive("num_devices", num_devices)
        if link is None:
            if kind not in _LINK_KINDS:
                raise ValueError(
                    f"unknown interconnect kind {kind!r}; expected one of {sorted(_LINK_KINDS)}"
                )
            link = _LINK_KINDS[kind]
        else:
            # An explicit LinkSpec overrides ``kind``; report the model that is
            # actually in effect rather than echoing a possibly-wrong label.
            kind = next(
                (name for name, spec in _LINK_KINDS.items() if spec == link),
                "custom",
            )
        self.num_devices = num_devices
        self.link = link
        self.kind = kind

    # ------------------------------------------------------------------ point to point
    def ring_distance(self, src: int, dst: int) -> int:
        """Hop count between two peers on the bidirectional ring."""
        for name, device in (("src", src), ("dst", dst)):
            if not 0 <= device < self.num_devices:
                raise ValueError(f"{name} {device} out of range [0, {self.num_devices})")
        direct = abs(src - dst)
        return min(direct, self.num_devices - direct)

    def peer_seconds(self, nbytes: float, src: int, dst: int) -> float:
        """Time for a point-to-point copy between two peers (0 for src == dst)."""
        hops = self.ring_distance(src, dst)
        if hops == 0 or nbytes == 0:
            return 0.0
        return hops * self.link.latency_us * 1e-6 + nbytes / (self.link.bandwidth_gbs * 1e9)

    # ------------------------------------------------------------------ collectives
    def all_reduce_seconds(self, nbytes: float) -> float:
        """Ring all-reduce of an ``nbytes`` buffer replicated on every device.

        Reduce-scatter plus all-gather: ``2(K-1)`` steps, each shipping one
        ``nbytes/K`` chunk over every link in parallel.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        k = self.num_devices
        if k == 1 or nbytes == 0:
            return 0.0
        steps = 2 * (k - 1)
        return steps * self.link.transfer_seconds(nbytes / k)

    def all_gather_seconds(self, nbytes_per_device: float) -> float:
        """Ring all-gather where every device contributes ``nbytes_per_device``."""
        if nbytes_per_device < 0:
            raise ValueError("nbytes_per_device must be >= 0")
        k = self.num_devices
        if k == 1 or nbytes_per_device == 0:
            return 0.0
        return (k - 1) * self.link.transfer_seconds(nbytes_per_device)

    def halo_exchange_seconds(self, max_bytes_per_device: float) -> float:
        """Neighbor halo exchange; bounded by the busiest device's halo volume.

        Each device swaps halo rows with its ring neighbors in both
        directions concurrently, so the exchange finishes when the device
        with the largest halo volume has shipped it over one hop.
        """
        if max_bytes_per_device < 0:
            raise ValueError("max_bytes_per_device must be >= 0")
        if self.num_devices == 1 or max_bytes_per_device == 0:
            return 0.0
        return self.link.transfer_seconds(max_bytes_per_device)
