"""Warp-occupancy / thread-utilization model (§3.2 and §4.2).

When a single warp is responsible for one sparse-matrix row and the feature
dimension ``F`` is smaller than the warp width, only ``F`` of its 32 threads
do useful work (``warp_execution_efficiency = F/32``).  PiPAD's thread-aware
slice coalescing assigns ``coalesce_num`` slices to each warp — each handled
by a thread group of size equal to the coalescent feature width — raising the
number of active threads per warp (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.spec import GPUSpec

#: paper's bound on thread groups per warp: each group's access must not
#: exceed one 32-byte transaction (§4.2)
MAX_COALESCE_NUM = 4


def baseline_active_thread_ratio(feature_dim: int, spec: GPUSpec) -> float:
    """Active-thread ratio of a warp-per-row kernel without slice coalescing."""
    if feature_dim <= 0:
        raise ValueError("feature_dim must be > 0")
    return min(spec.warp_size, feature_dim) / spec.warp_size


def choose_coalesce_num(coalescent_dim: int, spec: GPUSpec) -> int:
    """Thread groups per warp for PiPAD's slice coalescing.

    The coalescent feature width (``F * S_per``) determines the thread-group
    size; the number of groups is bounded both by the warp width and by the
    paper's limit of 4 (one 32-byte transaction per group).
    """
    if coalescent_dim <= 0:
        raise ValueError("coalescent_dim must be > 0")
    if coalescent_dim >= spec.warp_size:
        return 1
    return max(1, min(MAX_COALESCE_NUM, spec.warp_size // coalescent_dim))


def coalesced_active_thread_ratio(coalescent_dim: int, spec: GPUSpec) -> float:
    """Active-thread ratio with thread-aware slice coalescing enabled."""
    groups = choose_coalesce_num(coalescent_dim, spec)
    active = min(spec.warp_size, groups * coalescent_dim)
    return active / spec.warp_size


@dataclass(frozen=True)
class WarpEfficiencyReport:
    """Before/after thread-utilization comparison for a given dimension."""

    feature_dim: int
    coalescent_dim: int
    baseline_ratio: float
    coalesced_ratio: float
    coalesce_num: int

    @property
    def improvement(self) -> float:
        return self.coalesced_ratio / self.baseline_ratio if self.baseline_ratio else 1.0


def warp_efficiency_report(
    feature_dim: int, snapshots_per_partition: int, spec: GPUSpec
) -> WarpEfficiencyReport:
    """Summarize thread utilization for one-snapshot vs. coalesced execution."""
    coalescent_dim = feature_dim * max(1, snapshots_per_partition)
    return WarpEfficiencyReport(
        feature_dim=feature_dim,
        coalescent_dim=coalescent_dim,
        baseline_ratio=baseline_active_thread_ratio(feature_dim, spec),
        coalesced_ratio=coalesced_active_thread_ratio(coalescent_dim, spec),
        coalesce_num=choose_coalesce_num(coalescent_dim, spec),
    )
