"""The simulated GPU device.

:class:`SimulatedGPU` is the single object trainers talk to: it owns the
hardware specs, the event timeline, the memory-capacity ledger and the
per-category kernel statistics.  Kernels are *not* executed here — numerics
run in NumPy inside :mod:`repro.kernels` / :mod:`repro.tensor`; the device
only accounts for what the same work would cost on the modelled hardware and
when it would run given stream ordering and resource contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.gpu.kernel_cost import CATEGORIES, KernelCost
from repro.gpu.spec import GPUSpec, HostSpec, PCIeSpec
from repro.gpu.timeline import (
    RESOURCE_COMPUTE,
    RESOURCE_CPU,
    RESOURCE_PCIE_D2H,
    RESOURCE_PCIE_H2D,
    Timeline,
    TimelineOp,
)


class OutOfMemoryError(RuntimeError):
    """Raised when a simulated allocation exceeds the device memory capacity."""


@dataclass
class KernelStats:
    """Accumulated per-category kernel statistics."""

    seconds: float = 0.0
    launches: int = 0
    flops: float = 0.0
    mem_requests: float = 0.0
    mem_transactions: float = 0.0
    balanced_seconds: float = 0.0
    weighted_thread_ratio: float = 0.0  # sum(ratio * seconds)


class SimulatedGPU:
    """Analytic single-GPU device with streams, PCIe link and memory ledger."""

    def __init__(
        self,
        spec: Optional[GPUSpec] = None,
        pcie: Optional[PCIeSpec] = None,
        host: Optional[HostSpec] = None,
        *,
        use_cuda_graph: bool = False,
    ) -> None:
        self.spec = spec or GPUSpec()
        self.pcie = pcie or PCIeSpec()
        self.host = host or HostSpec()
        self.use_cuda_graph = use_cuda_graph
        self.timeline = Timeline()
        self._allocated_bytes = 0
        self._peak_bytes = 0
        self._allocations: Dict[str, int] = {}
        self.kernel_stats: Dict[str, KernelStats] = {cat: KernelStats() for cat in CATEGORIES}

    # ------------------------------------------------------------------ memory
    @property
    def allocated_bytes(self) -> int:
        return self._allocated_bytes

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    def malloc(self, name: str, nbytes: int) -> None:
        """Reserve device memory; raises :class:`OutOfMemoryError` on overflow."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if self._allocated_bytes + nbytes > self.spec.memory_bytes:
            raise OutOfMemoryError(
                f"allocating {nbytes / 1e6:.1f} MB for {name!r} exceeds device capacity "
                f"({self.spec.memory_gb} GB, {self._allocated_bytes / 1e6:.1f} MB in use)"
            )
        self._allocations[name] = nbytes
        self._allocated_bytes += nbytes
        self._peak_bytes = max(self._peak_bytes, self._allocated_bytes)

    def free(self, name: str) -> None:
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r}")
        self._allocated_bytes -= self._allocations.pop(name)

    def free_all(self) -> None:
        self._allocations.clear()
        self._allocated_bytes = 0

    def would_fit(self, nbytes: int) -> bool:
        return self._allocated_bytes + nbytes <= self.spec.memory_bytes

    # ------------------------------------------------------------------ ops
    def transfer_h2d(
        self,
        nbytes: float,
        *,
        label: str = "h2d",
        stream: str = "copy",
        pinned: bool = True,
        depends_on: Optional[Sequence[TimelineOp]] = None,
        not_before: float = 0.0,
    ) -> TimelineOp:
        """Schedule a host→device copy of ``nbytes``."""
        duration = self.pcie.transfer_seconds(nbytes, pinned=pinned)
        return self.timeline.submit(
            label=label,
            kind="h2d",
            resource=RESOURCE_PCIE_H2D,
            duration=duration,
            stream=stream,
            depends_on=depends_on,
            attrs={"bytes": float(nbytes), "pinned": pinned},
            not_before=not_before,
        )

    def transfer_d2h(
        self,
        nbytes: float,
        *,
        label: str = "d2h",
        stream: str = "copy_back",
        pinned: bool = True,
        depends_on: Optional[Sequence[TimelineOp]] = None,
        not_before: float = 0.0,
    ) -> TimelineOp:
        """Schedule a device→host copy of ``nbytes``."""
        duration = self.pcie.transfer_seconds(nbytes, pinned=pinned)
        return self.timeline.submit(
            label=label,
            kind="d2h",
            resource=RESOURCE_PCIE_D2H,
            duration=duration,
            stream=stream,
            depends_on=depends_on,
            attrs={"bytes": float(nbytes), "pinned": pinned},
            not_before=not_before,
        )

    def launch_kernel(
        self,
        cost: KernelCost,
        *,
        label: Optional[str] = None,
        stream: str = "compute",
        depends_on: Optional[Sequence[TimelineOp]] = None,
        use_cuda_graph: Optional[bool] = None,
    ) -> TimelineOp:
        """Schedule one kernel (or a fused group described by a single cost)."""
        graph_mode = self.use_cuda_graph if use_cuda_graph is None else use_cuda_graph
        per_launch_us = (
            self.spec.cudagraph_launch_overhead_us if graph_mode else self.spec.kernel_launch_overhead_us
        )
        duration = cost.execution_seconds(self.spec) + cost.launches * per_launch_us * 1e-6
        op = self.timeline.submit(
            label=label or cost.name,
            kind="kernel",
            resource=RESOURCE_COMPUTE,
            duration=duration,
            stream=stream,
            depends_on=depends_on,
            attrs={"category": cost.category, "launches": cost.launches},
        )
        stats = self.kernel_stats[cost.category]
        exec_seconds = cost.execution_seconds(self.spec)
        stats.seconds += exec_seconds
        stats.launches += cost.launches
        stats.flops += cost.flops
        stats.mem_requests += cost.mem_requests
        stats.mem_transactions += cost.mem_transactions
        stats.balanced_seconds += cost.balanced_seconds(self.spec)
        stats.weighted_thread_ratio += cost.active_thread_ratio * max(exec_seconds, 1e-12)
        return op

    def launch_kernels(
        self,
        costs: Sequence[KernelCost],
        *,
        label: str = "kernel_batch",
        stream: str = "compute",
        depends_on: Optional[Sequence[TimelineOp]] = None,
        use_cuda_graph: Optional[bool] = None,
    ) -> List[TimelineOp]:
        """Schedule a sequence of kernels back-to-back on one stream."""
        ops: List[TimelineOp] = []
        deps = depends_on
        for i, cost in enumerate(costs):
            op = self.launch_kernel(
                cost,
                label=f"{label}[{i}]:{cost.name}",
                stream=stream,
                depends_on=deps,
                use_cuda_graph=use_cuda_graph,
            )
            deps = [op]
            ops.append(op)
        return ops

    def host_op(
        self,
        seconds: float,
        *,
        label: str = "host",
        stream: str = "cpu",
        depends_on: Optional[Sequence[TimelineOp]] = None,
        not_before: float = 0.0,
    ) -> TimelineOp:
        """Schedule CPU-side work (graph slicing, preparation, dispatch)."""
        return self.timeline.submit(
            label=label,
            kind="cpu",
            resource=RESOURCE_CPU,
            duration=seconds,
            stream=stream,
            depends_on=depends_on,
            not_before=not_before,
        )

    # ------------------------------------------------------------------ metrics
    def elapsed_seconds(self) -> float:
        """Simulated wall-clock time so far (timeline makespan)."""
        return self.timeline.makespan()

    def gpu_utilization(self) -> float:
        return self.timeline.gpu_utilization()

    def sm_utilization(self) -> float:
        return self.timeline.sm_utilization()

    def breakdown(self) -> Dict[str, float]:
        """Seconds per op kind plus derived utilization figures."""
        result = self.timeline.kind_seconds()
        result["makespan"] = self.elapsed_seconds()
        result["gpu_utilization"] = self.gpu_utilization()
        result["sm_utilization"] = self.sm_utilization()
        return result

    def category_seconds(self) -> Dict[str, float]:
        return {cat: stats.seconds for cat, stats in self.kernel_stats.items()}

    def average_thread_ratio(self, categories: Optional[Sequence[str]] = None) -> float:
        """Execution-time-weighted warp execution efficiency."""
        cats = list(categories) if categories else list(CATEGORIES)
        weighted = sum(self.kernel_stats[c].weighted_thread_ratio for c in cats)
        seconds = sum(max(self.kernel_stats[c].seconds, 0.0) for c in cats)
        return weighted / seconds if seconds > 0 else 1.0

    def memory_statistics(self) -> Dict[str, float]:
        return {
            "requests": sum(s.mem_requests for s in self.kernel_stats.values()),
            "transactions": sum(s.mem_transactions for s in self.kernel_stats.values()),
        }

    def reset(self) -> None:
        """Clear the timeline, memory ledger and statistics (specs persist)."""
        self.timeline.reset()
        self.free_all()
        self._peak_bytes = 0
        self.kernel_stats = {cat: KernelStats() for cat in CATEGORIES}
