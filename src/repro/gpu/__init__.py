"""Simulated GPU: specs, cost models, timeline, device and profiler."""

from repro.gpu.spec import GPUSpec, HostSpec, PCIeSpec
from repro.gpu.kernel_cost import (
    CATEGORIES,
    CATEGORY_AGGREGATION,
    CATEGORY_ELEMENTWISE,
    CATEGORY_OTHER,
    CATEGORY_RNN,
    CATEGORY_UPDATE,
    KernelCost,
    summarize_costs,
)
from repro.gpu.memory_model import (
    FLOAT_BYTES,
    RowAccessCost,
    classify_dimension,
    contiguous_bytes_cost,
    row_access,
)
from repro.gpu.warp_model import (
    MAX_COALESCE_NUM,
    WarpEfficiencyReport,
    baseline_active_thread_ratio,
    choose_coalesce_num,
    coalesced_active_thread_ratio,
    warp_efficiency_report,
)
from repro.gpu.load_balance import (
    LoadBalanceReport,
    analyze_block_work,
    block_work_from_row_nnz,
    block_work_from_slice_nnz,
)
from repro.gpu.timeline import (
    RESOURCE_COMPUTE,
    RESOURCE_CPU,
    RESOURCE_PCIE_D2H,
    RESOURCE_PCIE_H2D,
    Timeline,
    TimelineOp,
)
from repro.gpu.device import KernelStats, OutOfMemoryError, SimulatedGPU
from repro.gpu.interconnect import NVLINK, PCIE_PEER, Interconnect, LinkSpec
from repro.gpu.device_group import COMM_STREAM, RESOURCE_PEER_LINK, DeviceGroup
from repro.gpu.profiler import KernelCostCollector, estimate_event_cost

__all__ = [
    "GPUSpec",
    "HostSpec",
    "PCIeSpec",
    "CATEGORIES",
    "CATEGORY_AGGREGATION",
    "CATEGORY_ELEMENTWISE",
    "CATEGORY_OTHER",
    "CATEGORY_RNN",
    "CATEGORY_UPDATE",
    "KernelCost",
    "summarize_costs",
    "FLOAT_BYTES",
    "RowAccessCost",
    "classify_dimension",
    "contiguous_bytes_cost",
    "row_access",
    "MAX_COALESCE_NUM",
    "WarpEfficiencyReport",
    "baseline_active_thread_ratio",
    "choose_coalesce_num",
    "coalesced_active_thread_ratio",
    "warp_efficiency_report",
    "LoadBalanceReport",
    "analyze_block_work",
    "block_work_from_row_nnz",
    "block_work_from_slice_nnz",
    "RESOURCE_COMPUTE",
    "RESOURCE_CPU",
    "RESOURCE_PCIE_D2H",
    "RESOURCE_PCIE_H2D",
    "Timeline",
    "TimelineOp",
    "KernelStats",
    "OutOfMemoryError",
    "SimulatedGPU",
    "COMM_STREAM",
    "RESOURCE_PEER_LINK",
    "DeviceGroup",
    "Interconnect",
    "LinkSpec",
    "NVLINK",
    "PCIE_PEER",
    "KernelCostCollector",
    "estimate_event_cost",
]
