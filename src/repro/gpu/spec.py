"""Hardware specifications of the simulated device.

Default numbers follow the paper's testbed (§5.1): one NVIDIA Tesla V100
(16 GB HBM2) attached over PCIe 3.0 x16 to a 24-core Xeon host.  Only the
architectural constants that the paper's analysis depends on are modelled:
the 32-byte minimum global-memory transaction, the 128-byte upper bound a
32-thread warp can request at once (4 bytes/thread), the widened request
size available through vector memory instructions, SM/bandwidth peaks, and
kernel-launch overheads with and without CUDA Graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class GPUSpec:
    """Architectural constants of the simulated GPU (defaults: Tesla V100)."""

    name: str = "tesla-v100-sim"
    num_sms: int = 80
    warp_size: int = 32
    fp32_cores_per_sm: int = 64
    clock_ghz: float = 1.38
    #: HBM2 peak bandwidth in GB/s
    memory_bandwidth_gbs: float = 900.0
    #: sustained fraction of peak bandwidth achievable by SpMM-like kernels
    memory_efficiency: float = 0.75
    #: minimum global-memory transaction granularity in bytes
    transaction_bytes: int = 32
    #: maximum bytes one warp-level request covers with scalar 4-byte loads
    request_bytes: int = 128
    #: maximum bytes one warp-level request covers with vector memory
    #: instructions (float4 per thread, §4.2 "32/64/128 floats per request")
    vector_request_bytes: int = 512
    shared_mem_per_sm_kb: int = 96
    memory_gb: float = 16.0
    #: host-side latency to issue one kernel through the CUDA runtime (µs)
    kernel_launch_overhead_us: float = 6.5
    #: per-kernel issue latency when kernels are replayed via CUDA Graphs (µs)
    cudagraph_launch_overhead_us: float = 1.2
    #: maximum thread blocks resident per SM (occupancy bound used for the
    #: load-balance "Balanced" estimate of Fig. 12)
    max_blocks_per_sm: int = 16

    def __post_init__(self) -> None:
        for field_name in (
            "num_sms",
            "warp_size",
            "fp32_cores_per_sm",
            "clock_ghz",
            "memory_bandwidth_gbs",
            "transaction_bytes",
            "request_bytes",
            "vector_request_bytes",
            "memory_gb",
        ):
            check_positive(field_name, getattr(self, field_name))
        if not 0 < self.memory_efficiency <= 1.0:
            raise ValueError("memory_efficiency must be in (0, 1]")

    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s (FMA counted as two FLOPs)."""
        return self.num_sms * self.fp32_cores_per_sm * 2.0 * self.clock_ghz * 1e9

    @property
    def effective_bandwidth(self) -> float:
        """Sustained global-memory bandwidth in bytes/s."""
        return self.memory_bandwidth_gbs * 1e9 * self.memory_efficiency

    @property
    def memory_bytes(self) -> int:
        return int(self.memory_gb * 1024**3)

    @property
    def max_active_blocks(self) -> int:
        """Upper bound on concurrently resident thread blocks."""
        return self.num_sms * self.max_blocks_per_sm


@dataclass(frozen=True)
class PCIeSpec:
    """Host↔device interconnect model (defaults: PCIe 3.0 x16)."""

    #: sustained host→device bandwidth for pinned memory, GB/s
    bandwidth_gbs: float = 12.0
    #: fixed per-transfer latency (driver + DMA setup), µs
    latency_us: float = 8.0
    #: throughput penalty for pageable (non-pinned) staging copies
    pageable_penalty: float = 1.6

    def __post_init__(self) -> None:
        check_positive("bandwidth_gbs", self.bandwidth_gbs)
        check_positive("pageable_penalty", self.pageable_penalty)

    def transfer_seconds(self, nbytes: float, *, pinned: bool = True) -> float:
        """Time to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes == 0:
            return 0.0
        bandwidth = self.bandwidth_gbs * 1e9
        if not pinned:
            bandwidth /= self.pageable_penalty
        return self.latency_us * 1e-6 + nbytes / bandwidth


@dataclass(frozen=True)
class HostSpec:
    """CPU-side constants used for analytic host-operation costs."""

    #: per-framework-op host overhead when issuing kernels eagerly (µs);
    #: mirrors the Python/PyTorch dispatch cost the paper's CPU-side latency
    #: breakdown includes
    dispatch_overhead_us: float = 10.0
    #: per-kernel host overhead when a pre-captured CUDA Graph is replayed
    #: (the whole graph is issued with one driver call, §4.2/OOB reference)
    graph_dispatch_overhead_us: float = 0.8
    #: per-element cost of CSR -> sliced CSR conversion (ns per nnz)
    slicing_ns_per_nnz: float = 2.0
    #: per-element cost of overlap extraction between snapshots (ns per nnz)
    overlap_extract_ns_per_nnz: float = 4.0
    #: fixed per-snapshot host preparation (batching, indexing) in µs
    snapshot_prep_us: float = 40.0
    #: sustained host-memory gather throughput (feature/adjacency rows into
    #: one contiguous staging buffer), GB/s — the ``gather`` datapipe stage
    gather_bandwidth_gbs: float = 64.0
    #: sustained pageable→pinned staging-copy throughput, GB/s — the ``pin``
    #: datapipe stage
    pin_bandwidth_gbs: float = 32.0
