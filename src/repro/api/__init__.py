"""Unified entry layer: declarative specs, one engine, one report.

Instead of five hand-wired construction idioms (``make_trainer``,
``PiPADTrainer(...)``, ``DistributedTrainer(...)``, ``build_serving_engine``,
``build_sharded_serving_engine``), every scenario is described by a
serializable :class:`RunSpec` and executed by one :class:`Engine`:

>>> from repro.api import Engine, RunSpec
>>> spec = RunSpec(dataset="covid19_england", model="tgcn", method="pipad")
>>> report = Engine.from_spec(spec).run()
>>> report.training.final_loss  # doctest: +SKIP

Specs round-trip through dicts and JSON (``RunSpec.from_dict``, ``.to_json``,
``.load``/``.save``), so runs are storable, diffable artifacts; the
``python -m repro`` CLI executes them directly.  The registries in
:mod:`repro.api.registries` make new device/serving topologies pluggable.
"""

from repro.api.engine import COLLECTIVE_KEYS, Engine, RunReport
from repro.api.registries import (
    DATAPIPE_REGISTRY,
    DEVICE_REGISTRY,
    SERVING_REGISTRY,
    DataPipeKind,
    DeviceKind,
    ServingKind,
    build_pipe_config,
    build_serving,
    build_trainer,
    trainer_registry,
)
from repro.api.spec import (
    DEVICE_KINDS,
    INTERCONNECT_KINDS,
    PIPAD_FIELDS,
    SERVING_KINDS,
    AnalysisSpec,
    DataSpec,
    DeviceSpec,
    MemorySpec,
    RunSpec,
    ServingSpec,
    TelemetrySpec,
    TraceSpec,
)

__all__ = [
    "AnalysisSpec",
    "COLLECTIVE_KEYS",
    "DATAPIPE_REGISTRY",
    "DEVICE_KINDS",
    "DEVICE_REGISTRY",
    "DataPipeKind",
    "DataSpec",
    "DeviceKind",
    "DeviceSpec",
    "Engine",
    "INTERCONNECT_KINDS",
    "MemorySpec",
    "PIPAD_FIELDS",
    "RunReport",
    "RunSpec",
    "SERVING_KINDS",
    "SERVING_REGISTRY",
    "ServingKind",
    "ServingSpec",
    "TelemetrySpec",
    "TraceSpec",
    "build_pipe_config",
    "build_serving",
    "build_trainer",
    "trainer_registry",
]
