"""Declarative run specifications — one serializable description per scenario.

A :class:`RunSpec` captures everything the repo can execute — dataset, model,
training method, PiPAD runtime overrides, device topology and an optional
serving section — as plain data.  Specs round-trip losslessly through
``to_dict``/``from_dict`` and JSON, reject unknown keys at every nesting
level, and validate all names against the live registries at construction
time, so a typo fails immediately with the list of valid choices instead of
deep inside a sweep.

The :class:`~repro.api.engine.Engine` façade consumes a spec and resolves it
into the concrete trainer / serving engine; nothing here imports the heavy
execution machinery, so specs stay cheap to build, compare and serialize.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Type, TypeVar, Union

from repro.core.config import PiPADConfig
from repro.graph.partition import PARTITION_MODES, SCHEDULE_MODES
from repro.utils.validation import check_positive

#: peer-link models understood by :class:`~repro.gpu.interconnect.Interconnect`
INTERCONNECT_KINDS: Tuple[str, ...] = ("nvlink", "pcie")

#: device topologies understood by the engine (keys of ``DEVICE_REGISTRY``)
DEVICE_KINDS: Tuple[str, ...] = ("single", "group", "pipeline")

#: serving topologies understood by the engine (keys of ``SERVING_REGISTRY``)
SERVING_KINDS: Tuple[str, ...] = ("local", "sharded", "fleet")

#: names of the :class:`PiPADConfig` knobs a spec may override
PIPAD_FIELDS: Tuple[str, ...] = tuple(f.name for f in fields(PiPADConfig))

_T = TypeVar("_T", bound="_SpecBase")


def _known_choices(valid: Union[Mapping[str, Any], Tuple[str, ...], list]) -> str:
    return ", ".join(sorted(valid))


def _reject_unknown_keys(cls: type, data: Mapping[str, Any]) -> None:
    valid = {f.name for f in fields(cls)}
    unknown = set(data) - valid
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} key(s) {sorted(unknown)}; "
            f"valid keys: {_known_choices(valid)}"
        )


class _SpecBase:
    """Shared dict/JSON plumbing for the spec dataclasses."""

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data view (tuples become lists, nested specs become dicts)."""

        def convert(value: Any) -> Any:
            if isinstance(value, _SpecBase):
                return value.to_dict()
            if isinstance(value, tuple):
                return [convert(v) for v in value]
            if isinstance(value, dict):
                return {k: convert(v) for k, v in value.items()}
            return value

        return {
            f.name: convert(getattr(self, f.name)) for f in fields(self)  # type: ignore[arg-type]
        }

    @classmethod
    def from_dict(cls: Type[_T], data: Mapping[str, Any]) -> _T:
        """Inverse of :meth:`to_dict`; raises on unknown keys."""
        if not isinstance(data, Mapping):
            raise ValueError(f"{cls.__name__} expects a mapping, got {type(data).__name__}")
        _reject_unknown_keys(cls, data)
        kwargs: Dict[str, Any] = {}
        nested = {f.name: f for f in fields(cls)}
        for key, value in data.items():
            spec_cls = _NESTED_SPECS.get((cls.__name__, key))
            if spec_cls is not None and value is not None:
                value = spec_cls.from_dict(value)
            elif nested[key].name in _TUPLE_FIELDS.get(cls.__name__, ()):
                if value is not None:
                    value = tuple(value)
            kwargs[key] = value
        return cls(**kwargs)  # type: ignore[call-arg]

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls: Type[_T], text: str) -> _T:
        return cls.from_dict(json.loads(text))

    def replace(self: _T, **changes: Any) -> _T:
        return dataclasses.replace(self, **changes)  # type: ignore[type-var]


@dataclass(frozen=True)
class DeviceSpec(_SpecBase):
    """Device topology: one GPU, a sharded group, or a frame pipeline."""

    #: ``"single"`` (one simulated GPU), ``"group"`` (node-sharded device
    #: group) or ``"pipeline"`` (snapshot groups pipelined across devices)
    kind: str = "single"
    #: number of devices in the group/pipeline (must be 1 for ``"single"``)
    num_devices: int = 1
    #: peer-link model between group devices (``"nvlink"`` or ``"pcie"``)
    interconnect: str = "nvlink"
    #: node-assignment strategy of the partitioner (``"edges"`` or ``"nodes"``;
    #: only consulted by kind ``"group"``)
    partition_mode: str = "edges"
    #: stage-assignment strategy of the frame partitioner (``"round_robin"``
    #: or ``"blocked"``; only consulted by kind ``"pipeline"``)
    schedule: str = "round_robin"

    def __post_init__(self) -> None:
        if self.kind not in DEVICE_KINDS:
            raise ValueError(
                f"unknown device kind {self.kind!r}; valid kinds: "
                f"{_known_choices(DEVICE_KINDS)}"
            )
        check_positive("num_devices", self.num_devices)
        if self.kind == "single" and self.num_devices != 1:
            raise ValueError(
                f"device kind 'single' requires num_devices=1, got {self.num_devices}; "
                "use kind='group' or kind='pipeline' for multi-device runs"
            )
        # 'group' and 'pipeline' allow num_devices=1: a one-device run is the
        # reference of scaling sweeps (same trainer class, no collectives).
        if self.interconnect not in INTERCONNECT_KINDS:
            raise ValueError(
                f"unknown interconnect {self.interconnect!r}; valid kinds: "
                f"{_known_choices(INTERCONNECT_KINDS)}"
            )
        if self.partition_mode not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition_mode {self.partition_mode!r}; valid modes: "
                f"{_known_choices(tuple(PARTITION_MODES))}"
            )
        if self.schedule not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; valid schedules: "
                f"{_known_choices(tuple(SCHEDULE_MODES))}"
            )


@dataclass(frozen=True)
class TraceSpec(_SpecBase):
    """Parameters of a synthesized delta/request serving trace."""

    num_events: int = 160
    request_fraction: float = 0.7
    nodes_per_request: int = 8
    mean_interarrival_ms: float = 0.5
    seed: int = 7

    def __post_init__(self) -> None:
        check_positive("num_events", self.num_events)
        check_positive("nodes_per_request", self.nodes_per_request)
        if not 0.0 <= self.request_fraction <= 1.0:
            raise ValueError(
                f"request_fraction must be in [0, 1], got {self.request_fraction}"
            )
        if self.mean_interarrival_ms <= 0:
            raise ValueError(
                f"mean_interarrival_ms must be > 0, got {self.mean_interarrival_ms}"
            )


@dataclass(frozen=True)
class TelemetrySpec(_SpecBase):
    """Observability section of a run: exporters and callback sinks.

    ``trace_path``/``report_path`` are export destinations the engine writes
    after :meth:`~repro.api.engine.Engine.run` (the CLI's ``--trace`` /
    ``--save-report`` flags set them); ``callbacks`` selects extra sinks from
    the telemetry callback registry (the tracing and metrics sinks are always
    active while telemetry is enabled).
    """

    enabled: bool = True
    #: Chrome-trace-event JSON destination (None -> no trace export)
    trace_path: Optional[str] = None
    #: run-report JSON destination (None -> no report export)
    report_path: Optional[str] = None
    #: extra callback sinks by registry name (e.g. ``("logging",)``)
    callbacks: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        from repro.telemetry.hooks import CALLBACK_REGISTRY

        if not isinstance(self.callbacks, tuple):
            object.__setattr__(self, "callbacks", tuple(self.callbacks))
        unknown = set(self.callbacks) - set(CALLBACK_REGISTRY)
        if unknown:
            raise ValueError(
                f"unknown telemetry callback(s) {sorted(unknown)}; "
                f"valid callbacks: {_known_choices(CALLBACK_REGISTRY)}"
            )


@dataclass(frozen=True)
class DataSpec(_SpecBase):
    """Data-pipeline section of a run: stage composition and prefetching.

    Declares how partition data moves from host memory onto the device —
    which staged pipeline variant runs (``repro.core.datapipe.
    DATAPIPE_VARIANTS``), how many items the :class:`~repro.core.datapipe.
    Prefetcher` may prepare ahead of the one currently computing, and whether
    transfers stage through page-locked memory.  The engine resolves this
    through ``repro.api.registries.DATAPIPE_REGISTRY`` into the
    :class:`~repro.core.datapipe.DataPipeConfig` every trainer and serving
    replica shares.  Scheduling-only: losses and predictions are identical
    for every setting.
    """

    #: pipeline variant (``"staged"`` or the legacy ``"monolithic"``)
    pipeline: str = "staged"
    #: max items prepared ahead of the one computing; 0 fully serializes
    prefetch_depth: int = 2
    #: stage transfers through page-locked memory (adds the ``pin`` stage;
    #: unpinned transfers pay the PCIe pageable penalty instead)
    pin_memory: bool = True

    def __post_init__(self) -> None:
        from repro.core.datapipe import DATAPIPE_VARIANTS

        if self.pipeline not in DATAPIPE_VARIANTS:
            raise ValueError(
                f"unknown datapipe pipeline {self.pipeline!r}; valid pipelines: "
                f"{_known_choices(DATAPIPE_VARIANTS)}"
            )
        if not isinstance(self.prefetch_depth, int) or isinstance(
            self.prefetch_depth, bool
        ):
            raise ValueError(
                f"prefetch_depth must be an int, got {self.prefetch_depth!r}"
            )
        if self.prefetch_depth < 0:
            raise ValueError(
                f"prefetch_depth must be >= 0, got {self.prefetch_depth}"
            )

    def to_pipe_config(self) -> "DataPipeConfig":  # noqa: F821 - forward ref
        """Materialize the core-level :class:`DataPipeConfig`."""
        from repro.core.datapipe import DataPipeConfig

        return DataPipeConfig(
            pipeline=self.pipeline,
            prefetch_depth=self.prefetch_depth,
            pin_memory=self.pin_memory,
        )


@dataclass(frozen=True)
class MemorySpec(_SpecBase):
    """Memory section of a run: the multi-tier feature cache.

    Declares whether feature rows flow through the
    :class:`~repro.memory.FeatureCache` (GPU-resident tier over
    pinned-host and host-spill tiers) and how the tiers are sized.  The
    GPU-tier budget is derived from ``GPUSpec.memory_gb`` minus the
    model/activation reservations (``gpu/memory_model.
    feature_cache_budget_bytes``) unless ``gpu_budget_mb`` pins it
    explicitly.  Accounting-only: losses and predictions are identical
    with the cache on or off — but graphs whose feature bytes exceed a
    device's HBM *require* ``feature_cache=true`` to run at all.
    """

    #: route feature rows through the multi-tier cache
    feature_cache: bool = False
    #: eviction policy (key of ``repro.memory.CACHE_POLICY_REGISTRY``)
    policy: str = "lru"
    #: fraction of HBM left after model/activation reservations granted
    #: to the GPU tier (ignored when ``gpu_budget_mb`` is set)
    gpu_budget_fraction: float = 0.5
    #: explicit GPU-tier budget in MiB (``None`` derives it from the spec)
    gpu_budget_mb: Optional[float] = None
    #: pinned-host tier budget in MiB (the pin stage's staging buffer)
    pinned_budget_mb: float = 256.0
    #: host-spill tier budget in MiB (``None`` = unbounded host memory)
    spill_budget_mb: Optional[float] = None
    #: feature rows per cache block (granularity of hits and invalidation)
    block_rows: int = 256

    def __post_init__(self) -> None:
        from repro.memory.policy import CACHE_POLICY_REGISTRY

        if self.policy not in CACHE_POLICY_REGISTRY:
            raise ValueError(
                f"unknown cache policy {self.policy!r}; valid policies: "
                f"{_known_choices(CACHE_POLICY_REGISTRY)}"
            )
        if not 0.0 <= self.gpu_budget_fraction <= 1.0:
            raise ValueError(
                f"gpu_budget_fraction must be in [0, 1], got {self.gpu_budget_fraction}"
            )
        if self.gpu_budget_mb is not None and self.gpu_budget_mb < 0:
            raise ValueError(f"gpu_budget_mb must be >= 0, got {self.gpu_budget_mb}")
        if self.pinned_budget_mb < 0:
            raise ValueError(
                f"pinned_budget_mb must be >= 0, got {self.pinned_budget_mb}"
            )
        if self.spill_budget_mb is not None and self.spill_budget_mb < 0:
            raise ValueError(
                f"spill_budget_mb must be >= 0, got {self.spill_budget_mb}"
            )
        if not isinstance(self.block_rows, int) or isinstance(self.block_rows, bool):
            raise ValueError(f"block_rows must be an int, got {self.block_rows!r}")
        check_positive("block_rows", self.block_rows)

    def to_memory_config(self) -> "MemoryConfig":  # noqa: F821 - forward ref
        """Materialize the core-level :class:`repro.memory.MemoryConfig`."""
        from repro.memory.cache import MemoryConfig

        return MemoryConfig(
            feature_cache=self.feature_cache,
            policy=self.policy,
            gpu_budget_fraction=self.gpu_budget_fraction,
            gpu_budget_mb=self.gpu_budget_mb,
            pinned_budget_mb=self.pinned_budget_mb,
            spill_budget_mb=self.spill_budget_mb,
            block_rows=self.block_rows,
        )


@dataclass(frozen=True)
class ServingSpec(_SpecBase):
    """Online-serving section of a run: engine topology + scheduler knobs."""

    #: ``"local"`` (one :class:`ServingScheduler`), ``"sharded"``
    #: (:class:`ShardedServingEngine` over ``num_shards`` full replicas) or
    #: ``"fleet"`` (:class:`FleetServingEngine`: node-sharded store,
    #: admission control, elastic replica pool)
    kind: str = "local"
    num_shards: int = 1
    window: int = 8
    max_batch_requests: int = 16
    max_delay_ms: float = 2.0
    enable_reuse: bool = True
    enable_pipeline: bool = True
    fixed_s_per: Optional[int] = None
    # -- fleet-only knobs (consulted by kind "fleet") -----------------------
    #: replicas active at start (and the autoscaler's floor)
    min_replicas: int = 1
    #: autoscaler ceiling; ``None`` means all ``num_shards`` replicas
    max_replicas: Optional[int] = None
    #: per-replica queue depth at which new requests are shed
    admission_limit: int = 32
    #: p99 latency SLO (milliseconds, simulated) driving the autoscaler
    slo_p99_ms: float = 50.0
    #: node-ownership strategy of the fleet partition plan
    partition_mode: str = "edges"
    #: trace replayed by ``Engine.serve()`` when none is passed explicitly
    trace: TraceSpec = field(default_factory=TraceSpec)

    def __post_init__(self) -> None:
        from repro.graph.partition import PARTITION_MODES

        if isinstance(self.trace, Mapping):
            object.__setattr__(self, "trace", TraceSpec.from_dict(self.trace))
        if self.kind not in SERVING_KINDS:
            raise ValueError(
                f"unknown serving kind {self.kind!r}; valid kinds: "
                f"{_known_choices(SERVING_KINDS)}"
            )
        check_positive("num_shards", self.num_shards)
        if self.kind == "local" and self.num_shards != 1:
            raise ValueError(
                f"serving kind 'local' requires num_shards=1, got {self.num_shards}; "
                "use kind='sharded' for multi-replica serving"
            )
        if self.kind in ("sharded", "fleet") and self.num_shards < 2:
            raise ValueError(
                f"serving kind {self.kind!r} requires num_shards>=2, got "
                f"{self.num_shards}"
            )
        check_positive("min_replicas", self.min_replicas)
        check_positive("admission_limit", self.admission_limit)
        check_positive("slo_p99_ms", self.slo_p99_ms)
        if self.partition_mode not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition_mode {self.partition_mode!r}; valid modes: "
                f"{_known_choices(tuple(PARTITION_MODES))}"
            )
        ceiling = self.num_shards if self.max_replicas is None else self.max_replicas
        if not self.min_replicas <= ceiling <= self.num_shards:
            raise ValueError(
                f"need min_replicas <= max_replicas <= num_shards, got "
                f"min={self.min_replicas} max={ceiling} shards={self.num_shards}"
            )

    def to_serving_config(self) -> "ServingConfig":  # noqa: F821 - forward ref
        """Materialize the scheduler-level :class:`ServingConfig`."""
        from repro.serving.scheduler import ServingConfig

        return ServingConfig(
            window=self.window,
            max_batch_requests=self.max_batch_requests,
            max_delay_ms=self.max_delay_ms,
            enable_reuse=self.enable_reuse,
            enable_pipeline=self.enable_pipeline,
            fixed_s_per=self.fixed_s_per,
        )

    def to_fleet_config(self) -> "FleetConfig":  # noqa: F821 - forward ref
        """Materialize the engine-level :class:`FleetConfig` (kind 'fleet')."""
        from repro.distributed.fleet import FleetConfig

        return FleetConfig(
            num_shards=self.num_shards,
            min_replicas=self.min_replicas,
            max_replicas=self.max_replicas,
            admission_limit=self.admission_limit,
            slo_p99_ms=self.slo_p99_ms,
            partition_mode=self.partition_mode,
        )


@dataclass(frozen=True)
class AnalysisSpec(_SpecBase):
    """Sanitizer section of a run: which checks gate it, and how hard.

    With ``enabled`` the engine replays the finished run through the
    execution checkers (happens-before races, collective lint, memory
    watermarks) plus the static spec lint, surfaces violations in
    ``RunReport.extras["analysis"]`` and as Chrome-trace instant events,
    and — with ``fail_on_violation`` — fails the run on any
    error-severity finding.  ``python -m repro check`` runs the static
    family alone, no engine required.
    """

    enabled: bool = False
    #: check selection from ``repro.analysis.CHECK_REGISTRY``; empty = all
    checks: Tuple[str, ...] = ()
    #: raise :class:`repro.analysis.AnalysisError` after export when the
    #: sanitizer found error-severity violations
    fail_on_violation: bool = True

    def __post_init__(self) -> None:
        from repro.analysis import resolve_checks

        if not isinstance(self.checks, tuple):
            object.__setattr__(self, "checks", tuple(self.checks))
        resolve_checks(self.checks)  # rejects unknown names with the catalog


@dataclass(frozen=True)
class RunSpec(_SpecBase):
    """One declarative, serializable description of an executable run."""

    #: dataset analogue (any name in ``repro.graph.datasets.DATASET_ORDER``)
    dataset: str = "covid19_england"
    #: DGNN model (any name in ``repro.nn.MODEL_REGISTRY``)
    model: str = "tgcn"
    #: training method (any key of the baselines trainer registry)
    method: str = "pipad"
    num_snapshots: int = 12
    frame_size: int = 8
    epochs: int = 3
    lr: float = 1e-3
    optimizer: str = "adam"
    seed: int = 0
    hidden_dim: Optional[int] = None
    #: workload-extrapolation factor; ``None`` derives it from the dataset
    cost_scale: Optional[float] = None
    #: :class:`PiPADConfig` overrides (only consulted by PiPAD-family methods)
    pipad: Dict[str, Any] = field(default_factory=dict)
    device: DeviceSpec = field(default_factory=DeviceSpec)
    #: data pipeline: stage composition, prefetch depth, pinning
    data: DataSpec = field(default_factory=DataSpec)
    #: multi-tier feature cache: tiers, budgets, eviction policy
    memory: MemorySpec = field(default_factory=MemorySpec)
    #: optional online-serving phase; ``None`` means a training-only run
    serving: Optional[ServingSpec] = None
    #: observability: exporters + callback sinks (enabled by default)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)
    #: sanitizer: check selection + failure policy (off by default)
    analysis: AnalysisSpec = field(default_factory=AnalysisSpec)

    def __post_init__(self) -> None:
        from repro.baselines import _registry
        from repro.graph.datasets import DATASET_ORDER
        from repro.nn import MODEL_REGISTRY

        # Accept plain mappings for the nested sections (the ergonomic literal
        # form ``RunSpec(device={"kind": "group", ...})``).
        if isinstance(self.device, Mapping):
            object.__setattr__(self, "device", DeviceSpec.from_dict(self.device))
        if isinstance(self.data, Mapping):
            object.__setattr__(self, "data", DataSpec.from_dict(self.data))
        if isinstance(self.memory, Mapping):
            object.__setattr__(self, "memory", MemorySpec.from_dict(self.memory))
        if isinstance(self.serving, Mapping):
            object.__setattr__(self, "serving", ServingSpec.from_dict(self.serving))
        if isinstance(self.telemetry, Mapping):
            object.__setattr__(
                self, "telemetry", TelemetrySpec.from_dict(self.telemetry)
            )
        if isinstance(self.analysis, Mapping):
            object.__setattr__(
                self, "analysis", AnalysisSpec.from_dict(self.analysis)
            )

        dataset_key = self.dataset.lower().replace("-", "_")
        if dataset_key not in DATASET_ORDER:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; valid datasets: "
                f"{_known_choices(tuple(DATASET_ORDER))}"
            )
        model_key = self.model.lower().replace("-", "_")
        if model_key not in MODEL_REGISTRY:
            raise ValueError(
                f"unknown model {self.model!r}; valid models: "
                f"{_known_choices(MODEL_REGISTRY)}"
            )
        method_key = self.method.lower().replace("_", "-")
        registry = _registry()
        if method_key not in registry:
            raise ValueError(
                f"unknown method {self.method!r}; valid methods: "
                f"{_known_choices(registry)}"
            )
        check_positive("num_snapshots", self.num_snapshots)
        check_positive("frame_size", self.frame_size)
        check_positive("epochs", self.epochs)
        check_positive("lr", self.lr)
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}; valid: adam, sgd")
        unknown = set(self.pipad) - set(PIPAD_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown PiPADConfig override(s) {sorted(unknown)}; "
                f"valid keys: {_known_choices(PIPAD_FIELDS)}"
            )
        if self.device.kind != "single" and method_key != "pipad":
            raise ValueError(
                f"device kind {self.device.kind!r} is only supported by method "
                f"'pipad' (DistributedTrainer/PipelineTrainer), got method "
                f"{self.method!r}"
            )
        # Frozen dataclass: normalize names via object.__setattr__ so the
        # engine and registries can rely on canonical keys downstream.
        object.__setattr__(self, "dataset", dataset_key)
        object.__setattr__(self, "model", model_key)
        object.__setattr__(self, "method", method_key)

    # ------------------------------------------------------------------ resolution
    def pipad_config(self) -> PiPADConfig:
        """Materialize the PiPAD runtime config with this spec's overrides."""
        overrides = dict(self.pipad)
        if "s_per_candidates" in overrides:
            overrides["s_per_candidates"] = tuple(overrides["s_per_candidates"])
        return PiPADConfig(**overrides)

    def trainer_config(self) -> "TrainerConfig":  # noqa: F821 - forward ref
        """Materialize the shared :class:`TrainerConfig` for this spec."""
        from repro.baselines import TrainerConfig

        return TrainerConfig(
            model=self.model,
            hidden_dim=self.hidden_dim,
            frame_size=self.frame_size,
            epochs=self.epochs,
            lr=self.lr,
            optimizer=self.optimizer,
            seed=self.seed,
            cost_scale=self.cost_scale,
        )

    # ------------------------------------------------------------------ files
    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec as JSON; returns the path."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunSpec":
        """Read a spec from a JSON file."""
        return cls.from_json(Path(path).read_text())


#: (owner class name, field name) -> nested spec class, for ``from_dict``
_NESTED_SPECS: Dict[Tuple[str, str], type] = {
    ("RunSpec", "device"): DeviceSpec,
    ("RunSpec", "data"): DataSpec,
    ("RunSpec", "memory"): MemorySpec,
    ("RunSpec", "serving"): ServingSpec,
    ("RunSpec", "telemetry"): TelemetrySpec,
    ("RunSpec", "analysis"): AnalysisSpec,
    ("ServingSpec", "trace"): TraceSpec,
}

#: fields that serialize as JSON lists but are tuples in memory
_TUPLE_FIELDS: Dict[str, Tuple[str, ...]] = {
    "TelemetrySpec": ("callbacks",),
    "AnalysisSpec": ("checks",),
}
