"""The execution façade: one ``Engine`` for every scenario the repo runs.

``Engine.from_spec(...)`` accepts a :class:`~repro.api.spec.RunSpec` (or a
dict / JSON file path) and resolves it through the registries in
:mod:`repro.api.registries` into the right concrete machinery —
:class:`~repro.core.trainer.PiPADTrainer`, any PyGT variant,
:class:`~repro.core.distributed_trainer.DistributedTrainer`,
:class:`~repro.serving.scheduler.ServingScheduler` or
:class:`~repro.distributed.serving.ShardedServingEngine` — behind one
``train()`` / ``serve()`` / ``report()`` lifecycle.  Numerics are untouched:
the engine builds exactly the objects the old hand-wired entry points built,
so losses are bit-identical with the pre-façade code paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.analysis import (
    AnalysisError,
    AnalysisReport,
    collect_artifacts,
    run_checks,
)
from repro.api import registries
from repro.api.spec import RunSpec
from repro.baselines.base import DGNNTrainerBase
from repro.baselines.results import TrainingResult
from repro.core.distributed_trainer import COLLECTIVE_KEYS
from repro.graph.datasets import load_dataset
from repro.graph.dynamic_graph import DynamicGraph
from repro.nn.base_model import DGNNModel
from repro.serving.deltas import ServingEvent, synthesize_serving_trace
from repro.serving.metrics import ServingReport
from repro.telemetry.persistence import restore_float_dict, sanitize_floats
from repro.telemetry.runtime import Telemetry


@dataclass
class RunReport:
    """Normalized outcome of one engine run (training and/or serving)."""

    spec: RunSpec
    training: Optional[TrainingResult] = None
    serving: Optional[ServingReport] = None
    #: flat telemetry snapshot (``MetricsRegistry.snapshot()``); empty when
    #: the run's telemetry is disabled
    metrics: Dict[str, float] = field(default_factory=dict)
    #: structured side-channels keyed by producer (``"analysis"`` holds the
    #: sanitizer's :class:`~repro.analysis.base.AnalysisReport` as plain data)
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def analysis(self) -> Optional[AnalysisReport]:
        """The sanitizer report, rehydrated from extras (None if it never ran)."""
        data = self.extras.get("analysis")
        if data is None:
            return None
        return AnalysisReport.from_dict(data)

    # ------------------------------------------------------------------ views
    def timeline_breakdown(self) -> Dict[str, float]:
        """Merged per-kind simulated-seconds breakdown across both phases.

        Serving keys are prefixed ``serving_`` so the two timelines never
        collide; training keys keep their historical names.
        """
        merged: Dict[str, float] = {}
        if self.training is not None:
            merged.update(self.training.breakdown)
        if self.serving is not None:
            merged.update(
                {f"serving_{k}": v for k, v in self.serving.breakdown.items()}
            )
        return merged

    def collective_breakdown(self) -> Dict[str, float]:
        """Collective times of a distributed run ({} on single-device runs)."""
        if self.training is None:
            return {}
        return {
            key: self.training.extras[key]
            for key in COLLECTIVE_KEYS
            if key in self.training.extras
        }

    def summary(self) -> Dict[str, float]:
        """Flat scalar summary covering whichever phases ran."""
        out: Dict[str, float] = {}
        if self.training is not None:
            out.update(
                {
                    "train_simulated_seconds": self.training.simulated_seconds,
                    "train_steady_epoch_seconds": self.training.steady_epoch_seconds,
                    "final_loss": self.training.final_loss,
                    "gpu_utilization": self.training.gpu_utilization,
                }
            )
            out.update(self.collective_breakdown())
        if self.serving is not None:
            out.update(
                {f"serving_{k}": v for k, v in self.serving.metrics.summary().items()}
            )
        return out

    def format(self) -> str:
        """Human-readable multi-line report (CLI and example output)."""
        lines = [
            f"run: dataset={self.spec.dataset} model={self.spec.model} "
            f"method={self.spec.method} device={self.spec.device.kind}"
            + (
                f" x{self.spec.device.num_devices} ({self.spec.device.interconnect})"
                if self.spec.device.kind != "single"
                else ""
            )
        ]
        if self.training is not None:
            t = self.training
            lines.append(
                f"  training [{t.method}]: {t.epochs} epochs, "
                f"{t.simulated_seconds * 1e3:.2f} ms simulated "
                f"({t.steady_epoch_seconds * 1e3:.2f} ms/steady epoch), "
                f"final loss {t.final_loss:.4f}, gpu util {t.gpu_utilization:.1%}"
            )
            collectives = self.collective_breakdown()
            if any(v > 0 for v in collectives.values()):
                parts = ", ".join(f"{k}={v * 1e3:.2f} ms" for k, v in collectives.items())
                lines.append(f"  collectives: {parts}")
        if self.serving is not None:
            lines.extend("  " + line for line in self.serving.format().splitlines())
        analysis = self.extras.get("analysis")
        if analysis is not None:
            lines.append(
                f"  analysis: {len(analysis.get('checks', []))} check(s), "
                f"{analysis.get('num_errors', 0)} error(s), "
                f"{analysis.get('num_warnings', 0)} warning(s)"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ persistence
    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-data view (strict JSON: non-finite floats become
        the marker strings of :mod:`repro.telemetry.persistence`)."""
        return {
            "spec": self.spec.to_dict(),
            "training": None if self.training is None else self.training.to_dict(),
            "serving": None if self.serving is None else self.serving.to_dict(),
            "metrics": sanitize_floats(dict(self.metrics)),
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        training = data.get("training")
        serving = data.get("serving")
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            training=None if training is None else TrainingResult.from_dict(training),
            serving=None if serving is None else ServingReport.from_dict(serving),
            metrics=restore_float_dict(data.get("metrics")),
            extras=dict(data.get("extras") or {}),
        )

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the report as JSON; returns the path."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunReport":
        """Read a report back from a JSON file."""
        return cls.from_json(Path(path).read_text())


class Engine:
    """Resolves one :class:`RunSpec` into trainers/serving engines and runs it."""

    def __init__(
        self,
        spec: RunSpec,
        *,
        graph: Optional[DynamicGraph] = None,
        model: Optional[DGNNModel] = None,
    ) -> None:
        self.spec = spec
        self.telemetry = Telemetry.from_spec(spec.telemetry)
        self._graph: Optional[DynamicGraph] = graph
        self._model: Optional[DGNNModel] = model
        self._trainer: Optional[DGNNTrainerBase] = None
        self._training: Optional[TrainingResult] = None
        self._serving_engine: Optional[object] = None
        self._serving_report: Optional[ServingReport] = None
        self._analysis: Optional[AnalysisReport] = None

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_spec(
        cls,
        spec: Union[RunSpec, Mapping[str, Any], str, Path],
        *,
        graph: Optional[DynamicGraph] = None,
        model: Optional[DGNNModel] = None,
    ) -> "Engine":
        """Build an engine from a spec object, a plain dict, or a JSON path.

        ``graph`` injects an already-loaded dataset (sweeps load one graph
        and run several specs against it); when omitted, the engine loads
        the spec's dataset lazily.  ``model`` injects already-trained
        weights: :meth:`serve` then skips the offline training phase, so
        two serving specs can be compared against the exact same model
        instead of each retraining its own.
        """
        if isinstance(spec, RunSpec):
            return cls(spec, graph=graph, model=model)
        if isinstance(spec, Mapping):
            return cls(RunSpec.from_dict(spec), graph=graph, model=model)
        return cls(RunSpec.load(spec), graph=graph, model=model)

    @property
    def graph(self) -> DynamicGraph:
        """The dataset analogue, loaded lazily and reused across phases."""
        if self._graph is None:
            self._graph = load_dataset(
                self.spec.dataset,
                seed=self.spec.seed,
                num_snapshots=self.spec.num_snapshots,
            )
        return self._graph

    @property
    def trainer(self) -> DGNNTrainerBase:
        """The resolved trainer (built on first access, then reused)."""
        if self._trainer is None:
            self._trainer = registries.build_trainer(self.spec, self.graph)
            self.telemetry.attach_trainer(self._trainer)
        return self._trainer

    @property
    def model(self) -> DGNNModel:
        """The model serving predicts with: injected weights win over the
        trainer's own (so comparison runs can share one trained model)."""
        if self._model is not None:
            return self._model
        return self.trainer.model

    @property
    def serving_engine(self):
        """The resolved online engine (requires a serving section)."""
        if self._serving_engine is None:
            self._serving_engine = registries.build_serving(
                self.spec, self.graph, self.model
            )
            self.telemetry.attach_serving(self._serving_engine)
        return self._serving_engine

    # ------------------------------------------------------------------ lifecycle
    def train(self) -> TrainingResult:
        """Run the training phase and cache its result."""
        trainer = self.trainer
        self.telemetry.hooks.on_phase_start("train", trainer._sim_now())
        self._training = trainer.train()
        self.telemetry.hooks.on_phase_end("train", self._training.simulated_seconds)
        return self._training

    def default_trace(self) -> List[ServingEvent]:
        """Synthesize the serving trace the spec's trace section describes."""
        if self.spec.serving is None:
            raise ValueError("spec has no serving section; cannot build a trace")
        trace = self.spec.serving.trace
        return synthesize_serving_trace(
            self.graph.snapshots[-1],
            num_events=trace.num_events,
            request_fraction=trace.request_fraction,
            nodes_per_request=trace.nodes_per_request,
            mean_interarrival_ms=trace.mean_interarrival_ms,
            seed=trace.seed,
        )

    def serve(
        self, trace: Optional[Sequence[ServingEvent]] = None
    ) -> ServingReport:
        """Run the online phase: train if needed, then replay the trace.

        The offline phase trains the model the serving engine predicts with;
        a prior :meth:`train` call is reused, so ``train(); serve()`` and a
        bare ``serve()`` execute identical work.  An injected ``model``
        (see :meth:`from_spec`) skips training entirely.
        """
        if self._model is None and self._training is None:
            self.train()
        events = list(trace) if trace is not None else self.default_trace()
        self.telemetry.hooks.on_phase_start("serve", 0.0)
        self._serving_report = self.serving_engine.run_trace(events)
        self.telemetry.hooks.on_phase_end(
            "serve", self._serving_report.simulated_seconds
        )
        return self._serving_report

    def run(self) -> RunReport:
        """Execute every phase the spec declares and return the report.

        With ``spec.analysis.enabled`` the sanitizer replays the finished
        run *before* artifact export (so violations land in the trace and
        the persisted report), then — unless ``fail_on_violation`` is off —
        fails the run with :class:`~repro.analysis.AnalysisError`.
        """
        self.train()
        if self.spec.serving is not None:
            self.serve()
        if self.spec.analysis.enabled:
            self.sanitize()
        report = self.report()
        self.export_artifacts(report)
        self.raise_on_violations()
        return report

    def report(self) -> RunReport:
        """Normalized report over whatever has executed so far."""
        report = RunReport(
            spec=self.spec,
            training=self._training,
            serving=self._serving_report,
        )
        if self._analysis is not None:
            report.extras["analysis"] = self._analysis.to_dict()
        report.metrics = self.telemetry.collect(report)
        return report

    # ------------------------------------------------------------------ sanitizer
    def sanitize(self) -> AnalysisReport:
        """Run the analysis checks over whatever has executed so far.

        The static spec lint always applies; the execution checkers replay
        the artifacts of every finished phase (device timelines, collective
        groups, feature caches).  The report is cached, folded into
        :meth:`report` extras, and mirrored into the tracer as Chrome-trace
        instant events so violations show up next to the ops they indict.
        """
        artifacts = collect_artifacts(
            trainer=self._trainer, serving_engine=self._serving_engine
        )
        report = run_checks(
            self.spec,
            artifacts=artifacts,
            checks=self.spec.analysis.checks or None,
        )
        self._record_violations(report)
        self._analysis = report
        return report

    def raise_on_violations(self) -> None:
        """Fail the run if a cached sanitize pass found errors (and the
        spec says violations are fatal).  No-op when clean or not sanitized."""
        if self._analysis is None or self._analysis.ok:
            return
        if self.spec.analysis.fail_on_violation:
            raise AnalysisError(self._analysis)

    def _record_violations(self, report: AnalysisReport) -> None:
        """Mirror violations into the tracer (exported as instant events)."""
        if not self.telemetry.enabled:
            return
        for violation in report.violations:
            self.telemetry.tracer.record(
                f"violation:{violation.check}",
                violation.time,
                violation.time,
                category="violation",
                domain=violation.domain,
                check=violation.check,
                severity=violation.severity,
                source=violation.source,
                message=violation.message,
            )

    # ------------------------------------------------------------------ artifacts
    def export_trace(self, path: Union[str, Path]) -> Dict[str, Any]:
        """Write a Chrome-trace JSON of whatever has executed so far."""
        return self.telemetry.export_trace(
            path,
            trainer=self._trainer,
            serving_engine=self._serving_engine,
            metadata={
                "dataset": self.spec.dataset,
                "model": self.spec.model,
                "method": self.spec.method,
            },
        )

    def export_artifacts(self, report: RunReport) -> None:
        """Honor the spec's telemetry output paths (trace / report JSON)."""
        tel = self.spec.telemetry
        if tel.trace_path:
            self.export_trace(tel.trace_path)
        if tel.report_path:
            report.save(tel.report_path)


__all__ = ["COLLECTIVE_KEYS", "Engine", "RunReport"]
