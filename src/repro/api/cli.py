"""``python -m repro`` — the spec-driven command-line surface.

Four subcommands cover the repo's scenarios, all driven by
:class:`~repro.api.spec.RunSpec`:

- ``python -m repro list`` — every registered dataset, model, method,
  device/serving topology, experiment and built-in preset;
- ``python -m repro run SPEC`` — execute a spec (JSON file path or preset
  name) through :class:`~repro.api.engine.Engine`: training plus, when the
  spec declares one, the serving phase;
- ``python -m repro serve SPEC`` — the online phase only (trains the model
  the spec describes, then replays the spec's serving trace);
- ``python -m repro check SPEC`` — static spec lint from the
  :mod:`repro.analysis` catalog, no execution (exit 3 on errors);
- ``python -m repro experiment NAME`` — regenerate a paper artifact through
  the experiment harness.

``--set key=value`` applies dotted overrides to a loaded spec
(``--set epochs=5 --set device.num_devices=4``), so one JSON file serves a
family of runs.  ``--sanitize`` on run/serve turns on the execution
sanitizer: the finished run is replayed through the happens-before,
collective and memory-watermark checkers, violations land in the trace and
report, and the command exits 3 when any are errors.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis import AnalysisError, run_checks
from repro.api.engine import Engine
from repro.api.registries import (
    DATAPIPE_REGISTRY,
    DEVICE_REGISTRY,
    SERVING_REGISTRY,
    trainer_registry,
)
from repro.api.spec import RunSpec

#: built-in specs runnable by name (``python -m repro run quick``); the same
#: scenarios ship as JSON files under ``specs/`` at the repo root
PRESETS: Dict[str, Dict[str, Any]] = {
    "quick": {
        "dataset": "covid19_england",
        "model": "tgcn",
        "method": "pipad",
        "num_snapshots": 10,
        "frame_size": 6,
        "epochs": 2,
    },
    "pipad-single": {
        "dataset": "covid19_england",
        "model": "tgcn",
        "method": "pipad",
        "num_snapshots": 14,
        "frame_size": 8,
        "epochs": 3,
    },
    "pygt-baseline": {
        "dataset": "covid19_england",
        "model": "tgcn",
        "method": "pygt",
        "num_snapshots": 14,
        "frame_size": 8,
        "epochs": 3,
    },
    "distributed-4gpu": {
        "dataset": "flickr",
        "model": "tgcn",
        "method": "pipad",
        "num_snapshots": 12,
        "frame_size": 8,
        "epochs": 3,
        "cost_scale": 5000.0,
        "device": {"kind": "group", "num_devices": 4, "interconnect": "nvlink"},
    },
    "pipeline-4gpu": {
        "dataset": "flickr",
        "model": "evolvegcn",
        "method": "pipad",
        "num_snapshots": 12,
        "frame_size": 8,
        "epochs": 3,
        "cost_scale": 5000.0,
        "pipad": {"fixed_s_per": 2},
        "device": {
            "kind": "pipeline",
            "num_devices": 4,
            "interconnect": "nvlink",
            "schedule": "round_robin",
        },
        "data": {"pipeline": "staged", "prefetch_depth": 2, "pin_memory": True},
    },
    "train-oversized": {
        # Feature working set ~20.6 GiB against a 16 GiB simulated HBM:
        # inexpressible without the multi-tier feature cache, which pages the
        # overflow through pinned host memory and the spill tier.
        "dataset": "flickr",
        "model": "tgcn",
        "method": "pipad",
        "num_snapshots": 10,
        "frame_size": 8,
        "epochs": 2,
        "cost_scale": 150000.0,
        "memory": {
            "feature_cache": True,
            "gpu_budget_mb": 2048.0,
            "pinned_budget_mb": 1024.0,
            "block_rows": 64,
        },
        "serving": {
            "kind": "local",
            "window": 8,
            "max_batch_requests": 8,
            "max_delay_ms": 1.0,
            "trace": {"num_events": 40, "seed": 7},
        },
    },
    "fleet-serving": {
        "dataset": "youtube",
        "model": "tgcn",
        "method": "pipad",
        "num_snapshots": 12,
        "frame_size": 8,
        "epochs": 2,
        "lr": 5e-3,
        "serving": {
            "kind": "fleet",
            "num_shards": 4,
            "min_replicas": 2,
            "admission_limit": 16,
            "slo_p99_ms": 2.0,
            "window": 8,
            "max_batch_requests": 8,
            "max_delay_ms": 1.0,
            "trace": {"num_events": 160, "mean_interarrival_ms": 0.2, "seed": 7},
        },
    },
    "sharded-serving": {
        "dataset": "covid19_england",
        "model": "tgcn",
        "method": "pipad",
        "num_snapshots": 16,
        "frame_size": 8,
        "epochs": 2,
        "lr": 5e-3,
        "serving": {
            "kind": "sharded",
            "num_shards": 2,
            "window": 8,
            "max_batch_requests": 8,
            "max_delay_ms": 1.0,
            "trace": {"num_events": 120, "seed": 7},
        },
    },
}


#: Python-style literals accepted next to their JSON spellings.  Without this
#: mapping ``--set serving.enable_reuse=False`` would fall through the JSON
#: parse and silently reach a bool field as the *truthy* string ``"False"``.
_PYTHON_LITERALS: Dict[str, Any] = {"True": True, "False": False, "None": None}


def _parse_value(raw: str) -> Any:
    """Interpret an override value: JSON when it parses, bare string otherwise.

    Accepts JSON literals (``4``, ``-0.5``, ``1e-3``, ``true``, ``null``,
    ``"quoted"``, ``[2, 4]``) plus the Python spellings ``True``/``False``/
    ``None``; anything unparsable stays a plain string (``nvlink``).
    """
    if raw in _PYTHON_LITERALS:
        return _PYTHON_LITERALS[raw]
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _apply_overrides(data: Dict[str, Any], overrides: Sequence[str]) -> Dict[str, Any]:
    """Apply ``--set a.b=value`` overrides to a spec dict."""
    for item in overrides:
        if "=" not in item:
            raise ValueError(f"--set expects key=value, got {item!r}")
        dotted, raw = item.split("=", 1)
        keys = dotted.split(".")
        node = data
        for key in keys[:-1]:
            child = node.get(key)
            if child is None:
                child = node[key] = {}
            elif not isinstance(child, dict):
                raise ValueError(f"--set {dotted}: {key!r} is not a nested section")
            node = child
        node[keys[-1]] = _parse_value(raw)
    return data


def load_spec(source: str, overrides: Sequence[str] = ()) -> RunSpec:
    """Resolve a CLI spec argument: a JSON file path or a preset name."""
    path = Path(source)
    if path.exists():
        data = json.loads(path.read_text())
    elif source in PRESETS:
        data = json.loads(json.dumps(PRESETS[source]))  # deep copy
    else:
        raise ValueError(
            f"spec {source!r} is neither a readable JSON file nor a preset; "
            f"presets: {', '.join(sorted(PRESETS))}"
        )
    if overrides:
        data = _apply_overrides(data, overrides)
    return RunSpec.from_dict(data)


def _summary_json(summary: Dict[str, Any]) -> str:
    """Strict-JSON dump: NaN/inf (e.g. empty-window latencies) become null."""
    cleaned = {
        key: None if isinstance(value, float) and not math.isfinite(value) else value
        for key, value in summary.items()
    }
    return json.dumps(cleaned, indent=2, allow_nan=False)


# ------------------------------------------------------------------ subcommands
def _cmd_list(args: argparse.Namespace) -> int:
    from repro.analysis import CHECK_REGISTRY
    from repro.core.datapipe import STAGE_REGISTRY
    from repro.experiments import list_experiments
    from repro.graph.datasets import DATASET_ORDER
    from repro.memory import CACHE_POLICY_REGISTRY
    from repro.nn import MODEL_ORDER
    from repro.telemetry.chrome_trace import EXPORTER_REGISTRY
    from repro.telemetry.hooks import CALLBACK_REGISTRY

    catalogue = {
        "datasets": list(DATASET_ORDER),
        "models": list(MODEL_ORDER),
        "methods": sorted(trainer_registry()),
        "device_kinds": {k: v.description for k, v in DEVICE_REGISTRY.items()},
        "serving_kinds": {k: v.description for k, v in SERVING_REGISTRY.items()},
        "datapipes": {k: v.description for k, v in DATAPIPE_REGISTRY.items()},
        "datapipe_stages": dict(STAGE_REGISTRY),
        "cache_policies": {
            name: description
            for name, (_, description) in CACHE_POLICY_REGISTRY.items()
        },
        "experiments": list_experiments(),
        "presets": sorted(PRESETS),
        "telemetry_callbacks": dict(CALLBACK_REGISTRY),
        "telemetry_exporters": dict(EXPORTER_REGISTRY),
        "analysis_checks": {
            name: f"[{info.family}] {info.description}"
            for name, info in CHECK_REGISTRY.items()
        },
    }
    if args.json:
        print(json.dumps(catalogue, indent=2))
        return 0
    for section, entries in catalogue.items():
        print(f"{section}:")
        if isinstance(entries, dict):
            for name, description in entries.items():
                print(f"  {name:<10} {description}")
        else:
            print("  " + ", ".join(entries))
    return 0


def _apply_output_flags(spec: RunSpec, args: argparse.Namespace) -> RunSpec:
    """Fold ``--trace``/``--save-report`` into the spec's telemetry section.

    The flags are sugar over ``--set telemetry.trace_path=...`` — artifact
    export stays spec-driven, so programmatic :class:`Engine` users and the
    CLI produce identical files.
    """
    updates: Dict[str, Any] = {}
    if getattr(args, "trace", None):
        updates["trace_path"] = args.trace
    if getattr(args, "save_report", None):
        updates["report_path"] = args.save_report
    if not updates:
        return spec
    if not spec.telemetry.enabled and "trace_path" in updates:
        raise ValueError("--trace requires telemetry.enabled=True")
    return spec.replace(telemetry=spec.telemetry.replace(**updates))


def _apply_sanitize_flag(spec: RunSpec, args: argparse.Namespace) -> RunSpec:
    """``--sanitize`` is sugar over ``--set analysis.enabled=True``."""
    if not getattr(args, "sanitize", False) or spec.analysis.enabled:
        return spec
    return spec.replace(analysis=spec.analysis.replace(enabled=True))


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _apply_output_flags(load_spec(args.spec, args.set or ()), args)
    spec = _apply_sanitize_flag(spec, args)
    engine = Engine.from_spec(spec)
    report = engine.run()
    if args.json:
        print(_summary_json(report.summary()))
    else:
        print(report.format())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    spec = _apply_output_flags(load_spec(args.spec, args.set or ()), args)
    spec = _apply_sanitize_flag(spec, args)
    if spec.serving is None:
        raise ValueError(
            f"spec {args.spec!r} has no serving section; add one or use "
            "'python -m repro run' for training-only specs"
        )
    engine = Engine.from_spec(spec)
    engine.serve()
    if spec.analysis.enabled:
        engine.sanitize()
    report = engine.report()
    engine.export_artifacts(report)
    engine.raise_on_violations()
    if args.json:
        print(_summary_json(report.summary()))
    else:
        print(report.format())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Static spec lint: no engine, no execution, exit 3 on errors."""
    spec = load_spec(args.spec, args.set or ())
    report = run_checks(spec, checks=spec.analysis.checks or None)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(f"spec: {args.spec}")
        print(report.format())
    return 0 if report.ok else 3


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ExperimentConfig,
        format_experiment,
        list_experiments,
        run_experiment,
    )

    if args.name not in list_experiments():
        raise ValueError(
            f"unknown experiment {args.name!r}; available: {list_experiments()}"
        )
    if args.full:
        config = ExperimentConfig.full()
    elif args.quick:
        config = ExperimentConfig.quick()
    else:
        config = ExperimentConfig()
    rows = run_experiment(args.name, config)
    print(format_experiment(args.name, rows))
    return 0


# ------------------------------------------------------------------ entry point
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Spec-driven entry point of the PiPAD reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered names and presets")
    p_list.add_argument("--json", action="store_true", help="machine-readable output")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="execute a RunSpec (JSON path or preset)")
    p_run.add_argument("spec", help="spec JSON file path or preset name")
    p_run.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="dotted spec override, e.g. --set device.num_devices=4",
    )
    p_run.add_argument("--json", action="store_true", help="print the summary as JSON")
    p_run.add_argument(
        "--trace", metavar="PATH",
        help="write a Chrome-trace JSON of the simulated run (open in Perfetto)",
    )
    p_run.add_argument(
        "--save-report", metavar="PATH",
        help="write the full RunReport as JSON (reload with RunReport.load)",
    )
    p_run.add_argument(
        "--sanitize", action="store_true",
        help="replay the finished run through the execution sanitizer "
        "(exit 3 on violations)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_serve = sub.add_parser("serve", help="run a spec's online serving phase")
    p_serve.add_argument("spec", help="spec JSON file path or preset name")
    p_serve.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="dotted spec override, e.g. --set serving.num_shards=4",
    )
    p_serve.add_argument("--json", action="store_true", help="print the summary as JSON")
    p_serve.add_argument(
        "--trace", metavar="PATH",
        help="write a Chrome-trace JSON of the simulated run (open in Perfetto)",
    )
    p_serve.add_argument(
        "--save-report", metavar="PATH",
        help="write the full RunReport as JSON (reload with RunReport.load)",
    )
    p_serve.add_argument(
        "--sanitize", action="store_true",
        help="replay the finished run through the execution sanitizer "
        "(exit 3 on violations)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_check = sub.add_parser(
        "check", help="statically lint a RunSpec (no execution)"
    )
    p_check.add_argument("spec", help="spec JSON file path or preset name")
    p_check.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="dotted spec override, e.g. --set analysis.checks='[\"spec-partitioning\"]'",
    )
    p_check.add_argument(
        "--json", action="store_true", help="print the analysis report as JSON"
    )
    p_check.set_defaults(func=_cmd_check)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    p_exp.add_argument("name", help="experiment name (see 'python -m repro list')")
    scale = p_exp.add_mutually_exclusive_group()
    scale.add_argument("--quick", action="store_true", help="minimal smoke sweep")
    scale.add_argument("--full", action="store_true", help="the paper's full grid")
    p_exp.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except AnalysisError as exc:
        print(f"sanitizer: {exc}", file=sys.stderr)
        return 3
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
