"""Unified registries the engine resolves specs through.

Five registries cover the whole construction space:

- the **trainer registry** (owned by :mod:`repro.baselines`; re-exposed here)
  maps method names to trainer classes — ``pygt``/``pygt-a``/``pygt-r``/
  ``pygt-g``/``pipad``;
- :data:`MODEL_REGISTRY` and :data:`DATASET_ORDER` are re-exports of the
  existing model/dataset name spaces;
- :data:`DEVICE_REGISTRY` maps a device topology kind to the builder that
  wires a trainer for it (``single`` → the method's own trainer class,
  ``group`` → :class:`~repro.core.distributed_trainer.DistributedTrainer`,
  ``pipeline`` → :class:`~repro.core.pipeline_trainer.PipelineTrainer`);
- :data:`SERVING_REGISTRY` maps a serving topology kind to the builder that
  wires the online engine (``local`` → one
  :class:`~repro.serving.scheduler.ServingScheduler`, ``sharded`` →
  :class:`~repro.distributed.serving.ShardedServingEngine`, ``fleet`` →
  :class:`~repro.distributed.fleet.FleetServingEngine` with a node-sharded
  store, admission control and an elastic replica pool);
- :data:`DATAPIPE_REGISTRY` maps a data-pipeline variant (``staged`` /
  ``monolithic``) to its stage composition and the builder that materializes
  the :class:`~repro.core.datapipe.DataPipeConfig` every trainer and serving
  replica consumes (``RunSpec.data`` resolves through it).

Every builder takes ``(spec, graph, ...)`` so new topologies plug in by
registration instead of another bespoke construction path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Type, Union

from repro.api.spec import RunSpec
from repro.baselines import _registry as _trainer_registry
from repro.baselines.base import DGNNTrainerBase
from repro.graph.datasets import DATASET_ORDER
from repro.graph.dynamic_graph import DynamicGraph
from repro.nn import MODEL_REGISTRY
from repro.nn.base_model import DGNNModel


def trainer_registry() -> Dict[str, Type[DGNNTrainerBase]]:
    """Method name -> trainer class (the baselines registry, unchanged)."""
    return _trainer_registry()


def list_methods() -> List[str]:
    return sorted(trainer_registry())


# ------------------------------------------------------------------ datapipe
@dataclass(frozen=True)
class DataPipeKind:
    """One data-pipeline variant the engine can resolve ``RunSpec.data`` onto."""

    name: str
    description: str
    #: stage names in execution order (see ``repro.core.datapipe.STAGE_REGISTRY``)
    stages: tuple
    build: Callable[[RunSpec], "DataPipeConfig"]  # noqa: F821 - forward ref


def _datapipe_registry() -> Dict[str, DataPipeKind]:
    from repro.core.datapipe import DATAPIPE_VARIANTS

    descriptions = {
        "staged": (
            "slice -> gather -> pin -> h2d staged prep with depth-bounded "
            "prefetching (the default)"
        ),
        "monolithic": "legacy accounting: one opaque host op + the transfer",
    }
    return {
        name: DataPipeKind(
            name,
            descriptions.get(name, "datapipe variant"),
            stages,
            lambda spec: spec.data.to_pipe_config(),
        )
        for name, stages in DATAPIPE_VARIANTS.items()
    }


DATAPIPE_REGISTRY: Dict[str, DataPipeKind] = _datapipe_registry()


def build_pipe_config(spec: RunSpec) -> "DataPipeConfig":  # noqa: F821
    """Resolve a spec's data section into the core :class:`DataPipeConfig`."""
    return DATAPIPE_REGISTRY[spec.data.pipeline].build(spec)


# ------------------------------------------------------------------ devices
def _build_single_device_trainer(spec: RunSpec, graph: DynamicGraph) -> DGNNTrainerBase:
    cls = trainer_registry()[spec.method]
    if spec.method == "pipad":
        return cls(
            graph,
            spec.trainer_config(),
            pipad_config=spec.pipad_config(),
            data_config=build_pipe_config(spec),
            memory_config=spec.memory.to_memory_config(),
        )
    return cls(graph, spec.trainer_config())


def _build_group_trainer(spec: RunSpec, graph: DynamicGraph) -> DGNNTrainerBase:
    from repro.core.distributed_trainer import DistributedConfig, DistributedTrainer

    return DistributedTrainer(
        graph,
        spec.trainer_config(),
        pipad_config=spec.pipad_config(),
        dist_config=DistributedConfig(
            num_devices=spec.device.num_devices,
            partition_mode=spec.device.partition_mode,
            interconnect=spec.device.interconnect,
        ),
        data_config=build_pipe_config(spec),
        memory_config=spec.memory.to_memory_config(),
    )


def _build_pipeline_trainer(spec: RunSpec, graph: DynamicGraph) -> DGNNTrainerBase:
    from repro.core.pipeline_trainer import PipelineConfig, PipelineTrainer

    return PipelineTrainer(
        graph,
        spec.trainer_config(),
        pipad_config=spec.pipad_config(),
        pipe_config=PipelineConfig(
            num_devices=spec.device.num_devices,
            interconnect=spec.device.interconnect,
            schedule=spec.device.schedule,
        ),
        data_config=build_pipe_config(spec),
        memory_config=spec.memory.to_memory_config(),
    )


@dataclass(frozen=True)
class DeviceKind:
    """One device topology the engine can resolve a spec onto."""

    name: str
    description: str
    build: Callable[[RunSpec, DynamicGraph], DGNNTrainerBase]


DEVICE_REGISTRY: Dict[str, DeviceKind] = {
    "single": DeviceKind(
        "single",
        "one simulated GPU; the method's own trainer class",
        _build_single_device_trainer,
    ),
    "group": DeviceKind(
        "group",
        "K-device group with ring collectives (DistributedTrainer)",
        _build_group_trainer,
    ),
    "pipeline": DeviceKind(
        "pipeline",
        "K-stage frame pipeline with p2p state handoff (PipelineTrainer)",
        _build_pipeline_trainer,
    ),
}


# ------------------------------------------------------------------ serving
def _serving_scale(spec: RunSpec) -> float:
    """Per-row cost multiplier the serving engines inherit from the spec.

    Only an *explicit* ``cost_scale`` carries over — the dataset-derived
    training default stays a training concern, so specs without the knob
    keep today's serving timings bit-for-bit.
    """
    return float(spec.cost_scale) if spec.cost_scale is not None else 1.0


def _build_local_serving(
    spec: RunSpec, graph: DynamicGraph, model: DGNNModel
) -> "ServingScheduler":  # noqa: F821 - forward ref
    from repro.serving.scheduler import _build_serving_scheduler

    assert spec.serving is not None
    return _build_serving_scheduler(
        graph,
        model,
        spec.serving.to_serving_config(),
        data=build_pipe_config(spec),
        scale=_serving_scale(spec),
        memory=spec.memory.to_memory_config(),
    )


def _build_sharded_serving(
    spec: RunSpec, graph: DynamicGraph, model: DGNNModel
) -> "ShardedServingEngine":  # noqa: F821 - forward ref
    from repro.distributed.serving import build_sharded_serving_engine

    assert spec.serving is not None
    return build_sharded_serving_engine(
        graph,
        model,
        spec.serving.num_shards,
        spec.serving.to_serving_config(),
        data=build_pipe_config(spec),
        scale=_serving_scale(spec),
        memory=spec.memory.to_memory_config(),
    )


def _build_fleet_serving(
    spec: RunSpec, graph: DynamicGraph, model: DGNNModel
) -> "FleetServingEngine":  # noqa: F821 - forward ref
    from repro.distributed.fleet import build_fleet_serving_engine

    assert spec.serving is not None
    return build_fleet_serving_engine(
        graph,
        model,
        spec.serving.to_fleet_config(),
        spec.serving.to_serving_config(),
        data=build_pipe_config(spec),
        scale=_serving_scale(spec),
        memory=spec.memory.to_memory_config(),
    )


@dataclass(frozen=True)
class ServingKind:
    """One serving topology the engine can resolve a spec onto."""

    name: str
    description: str
    build: Callable[[RunSpec, DynamicGraph, DGNNModel], object]


SERVING_REGISTRY: Dict[str, ServingKind] = {
    "local": ServingKind(
        "local",
        "one ServingScheduler replica on one simulated GPU",
        _build_local_serving,
    ),
    "sharded": ServingKind(
        "sharded",
        "ShardedServingEngine: round-robin routing over K replicas",
        _build_sharded_serving,
    ),
    "fleet": ServingKind(
        "fleet",
        "FleetServingEngine: node-sharded store, load-aware admission "
        "control, elastic replica pool",
        _build_fleet_serving,
    ),
}


def build_trainer(spec: RunSpec, graph: DynamicGraph) -> DGNNTrainerBase:
    """Resolve a spec's method + device topology into a wired trainer."""
    return DEVICE_REGISTRY[spec.device.kind].build(spec, graph)


def build_serving(
    spec: RunSpec, graph: DynamicGraph, model: DGNNModel
) -> Union["ServingScheduler", "ShardedServingEngine"]:  # noqa: F821
    """Resolve a spec's serving section into a wired online engine."""
    if spec.serving is None:
        raise ValueError(
            "spec has no serving section; set RunSpec.serving to build an "
            "online engine"
        )
    return SERVING_REGISTRY[spec.serving.kind].build(spec, graph, model)


__all__ = [
    "DATAPIPE_REGISTRY",
    "DATASET_ORDER",
    "DEVICE_REGISTRY",
    "DataPipeKind",
    "DeviceKind",
    "MODEL_REGISTRY",
    "SERVING_REGISTRY",
    "ServingKind",
    "build_pipe_config",
    "build_serving",
    "build_trainer",
    "list_methods",
    "trainer_registry",
]
