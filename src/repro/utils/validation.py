"""Small argument-validation helpers used across the package.

These raise early with precise messages instead of letting NumPy produce a
cryptic broadcast error three layers down.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Tuple, Type

import numpy as np


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(
    name: str, value: float, low: float, high: float, *, inclusive: bool = True
) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high`` (or strict)."""
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValueError(f"{name} must satisfy {low} {op} {name} {op} {high}, got {value!r}")


def check_type(name: str, value: Any, types: Type | Tuple[Type, ...]) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expect = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be {expect}, got {type(value).__name__}")


def check_array(
    name: str,
    value: Any,
    *,
    ndim: Optional[int] = None,
    dtype_kind: Optional[str] = None,
    shape: Optional[Sequence[Optional[int]]] = None,
) -> np.ndarray:
    """Coerce ``value`` to ``np.ndarray`` and validate its structure.

    Parameters
    ----------
    ndim:
        Required number of dimensions, if any.
    dtype_kind:
        Required NumPy dtype kind string (e.g. ``"f"``, ``"i"``, ``"iu"``
        meaning "any of these kinds").
    shape:
        Expected shape where ``None`` entries are wildcards.
    """
    arr = np.asarray(value)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have ndim={ndim}, got ndim={arr.ndim}")
    if dtype_kind is not None and arr.dtype.kind not in dtype_kind:
        raise ValueError(
            f"{name} must have dtype kind in {dtype_kind!r}, got {arr.dtype} (kind {arr.dtype.kind!r})"
        )
    if shape is not None:
        if len(shape) != arr.ndim:
            raise ValueError(f"{name} must have {len(shape)} dims, got {arr.ndim}")
        for axis, expected in enumerate(shape):
            if expected is not None and arr.shape[axis] != expected:
                raise ValueError(
                    f"{name} has shape {arr.shape}, expected {tuple(shape)} (mismatch on axis {axis})"
                )
    return arr
