"""Random-number-generator helpers.

Everything that draws randomness in the package accepts either an integer
seed, ``None`` or a :class:`numpy.random.Generator`, funnelled through
:func:`as_rng` so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Used when a workload (e.g. a dynamic-graph generator) needs one stream
    per snapshot so that changing the number of snapshots does not perturb
    the randomness of earlier ones.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    root = as_rng(seed)
    seed_seq = getattr(root.bit_generator, "seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in seed_seq.spawn(n)]
    # Fallback when the generator exposes no seed sequence: derive children
    # from fresh integers drawn off the root stream.
    return [np.random.default_rng(int(root.integers(0, 2**63 - 1))) for _ in range(n)]
