"""Wall-clock timing helper for host-side (CPU) phases.

The simulated device accounts for GPU/PCIe time analytically; CPU-side work
(graph slicing, overlap extraction, host preparation) is real Python work,
so we measure it with a monotonic wall clock and feed the measurement into
the same timeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class WallTimer:
    """Accumulates named wall-clock durations.

    Example
    -------
    >>> timer = WallTimer()
    >>> with timer.measure("slice"):
    ...     do_work()
    >>> timer.total("slice")  # seconds
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def measure(self, name: str) -> "_TimerContext":
        return _TimerContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration for {name!r}: {seconds}")
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def grand_total(self) -> float:
        return sum(self.totals.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self.totals)


class _TimerContext:
    def __init__(self, timer: WallTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.add(self._name, time.perf_counter() - self._start)
