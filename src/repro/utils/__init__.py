"""Shared utilities: validation helpers, RNG handling and lightweight timing."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
    check_array,
)
from repro.utils.timing import WallTimer

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "check_array",
    "WallTimer",
]
