"""Tests for overlap extraction, smoothening, generators, datasets and stats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    CSRMatrix,
    GeneratorConfig,
    IncrementalOverlapTracker,
    apply_edge_life,
    change_rate,
    extract_overlap,
    generate_dynamic_graph,
    get_dataset_spec,
    group_overlap_rate,
    list_datasets,
    load_dataset,
    pairwise_overlap_rate,
    refine_overlap,
    smoothened_edge_total,
    summarize,
)
from repro.graph.stats import DegreeStats, density, format_sizes


def make_adj(keys, n=20):
    return CSRMatrix.from_edge_keys(np.asarray(sorted(keys), dtype=np.int64), (n, n))


class TestOverlap:
    def test_identical_snapshots_full_overlap(self):
        adj = make_adj([1, 5, 9])
        result = extract_overlap([adj, adj, adj])
        assert result.overlap_rate == pytest.approx(1.0)
        assert all(e.nnz == 0 for e in result.exclusives)

    def test_disjoint_snapshots_zero_overlap(self):
        a, b = make_adj([1, 2]), make_adj([3, 4])
        result = extract_overlap([a, b])
        assert result.overlap.nnz == 0
        assert result.overlap_rate == 0.0

    def test_reconstruction_is_exact(self, small_graph):
        adjs = [small_graph[i].adjacency for i in range(4)]
        result = extract_overlap(adjs)
        for original, exclusive in zip(adjs, result.exclusives):
            rebuilt = np.union1d(result.overlap.edge_keys(), exclusive.edge_keys())
            assert np.array_equal(rebuilt, original.edge_keys())

    def test_saved_fraction_positive_for_overlapping_group(self, small_graph):
        adjs = [small_graph[i].adjacency for i in range(3)]
        result = extract_overlap(adjs)
        assert 0.0 < result.saved_fraction < 1.0
        assert result.transfer_elements < result.baseline_elements

    def test_pairwise_and_change_rate_complementary(self):
        a, b = make_adj([1, 2, 3]), make_adj([2, 3, 4])
        assert pairwise_overlap_rate(a, b) == pytest.approx(0.5)
        assert change_rate(a, b) == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            extract_overlap([make_adj([1], n=10), make_adj([1], n=20)])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            extract_overlap([])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500), group=st.integers(2, 5))
    def test_property_overlap_is_subset_and_exact(self, seed, group):
        """Overlap ∪ exclusive_i reconstructs snapshot i; overlap ⊆ every snapshot."""
        rng = np.random.default_rng(seed)
        adjs = []
        base = rng.choice(400, size=40, replace=False).astype(np.int64)
        for _ in range(group):
            extra = rng.choice(400, size=10, replace=False).astype(np.int64)
            adjs.append(make_adj(np.union1d(base[: rng.integers(10, 40)], extra)))
        result = extract_overlap(adjs)
        overlap_keys = result.overlap.edge_keys()
        for adj, exclusive in zip(adjs, result.exclusives):
            keys = adj.edge_keys()
            assert np.all(np.isin(overlap_keys, keys))
            assert np.array_equal(np.union1d(overlap_keys, exclusive.edge_keys()), keys)
            assert len(np.intersect1d(overlap_keys, exclusive.edge_keys())) == 0


class TestIncrementalOverlapTracker:
    def test_empty_delta_keeps_full_overlap(self):
        """Pushing an unchanged adjacency (empty delta) leaves the overlap
        equal to the snapshot itself and all exclusives empty."""
        adj = make_adj([1, 5, 9])
        tracker = IncrementalOverlapTracker(adj.shape, capacity=3)
        for version in range(3):
            tracker.push(version, adj)
        result = tracker.decomposition()
        assert result.overlap_rate == pytest.approx(1.0)
        assert np.array_equal(result.overlap.edge_keys(), adj.edge_keys())
        assert all(e.nnz == 0 for e in result.exclusives)

    def test_delta_removing_overlap_edge_demotes_it(self):
        """An edge shared by the whole window leaves the overlap as soon as
        one pushed version drops it."""
        tracker = IncrementalOverlapTracker((20, 20), capacity=3)
        tracker.push(0, make_adj([1, 5, 9]))
        tracker.push(1, make_adj([1, 5, 9]))
        assert 5 in tracker.decomposition().overlap.edge_keys().tolist()
        tracker.push(2, make_adj([1, 9]))  # delta removed edge key 5
        result = tracker.decomposition()
        assert 5 not in result.overlap.edge_keys().tolist()
        assert result.overlap.edge_keys().tolist() == [1, 9]
        # The survivors still hold 5 in their exclusives.
        assert 5 in result.exclusives[0].edge_keys().tolist()
        assert 5 in result.exclusives[1].edge_keys().tolist()
        assert result.exclusives[2].nnz == 0

    def test_eviction_can_grow_overlap(self):
        """Evicting the one window member that lacked an edge promotes that
        edge back into the intersection."""
        tracker = IncrementalOverlapTracker((20, 20), capacity=2)
        tracker.push(0, make_adj([1, 9]))  # lacks 5
        tracker.push(1, make_adj([1, 5, 9]))
        assert 5 not in tracker.decomposition().overlap.edge_keys().tolist()
        evicted = tracker.push(2, make_adj([1, 5, 9]))
        assert evicted == 0
        assert 5 in tracker.decomposition().overlap.edge_keys().tolist()

    def test_single_snapshot_window(self):
        """A single-snapshot partition is pure overlap (rate 1, no exclusive)."""
        adj = make_adj([2, 7])
        tracker = IncrementalOverlapTracker(adj.shape, capacity=4)
        tracker.push(0, adj)
        result = tracker.decomposition()
        assert result.group_size == 1
        assert result.overlap_rate == pytest.approx(1.0)
        assert np.array_equal(result.overlap.edge_keys(), adj.edge_keys())
        assert result.exclusives[0].nnz == 0

    def test_matches_extract_overlap_under_random_churn(self, small_graph):
        tracker = IncrementalOverlapTracker(
            small_graph[0].adjacency.shape, capacity=4
        )
        window = []
        for snap in small_graph.snapshots:
            tracker.push(snap.timestep, snap.adjacency)
            window.append(snap.adjacency)
            window = window[-4:]
            scratch = extract_overlap(window)
            incremental = tracker.decomposition()
            assert np.array_equal(
                incremental.overlap.edge_keys(), scratch.overlap.edge_keys()
            )
            assert incremental.overlap_rate == pytest.approx(scratch.overlap_rate)

    def test_empty_window_rejected(self):
        tracker = IncrementalOverlapTracker((4, 4), capacity=2)
        with pytest.raises(ValueError):
            tracker.decomposition()


class TestRefineOverlap:
    def test_subgroup_matches_direct_extraction(self, small_graph):
        adjs = [small_graph[i].adjacency for i in range(4)]
        full = extract_overlap(adjs)
        for subset in ([0, 1], [1, 2, 3], [2]):
            refined = refine_overlap(full, subset)
            direct = extract_overlap([adjs[i] for i in subset])
            assert np.array_equal(
                refined.overlap.edge_keys(), direct.overlap.edge_keys()
            )
            for a, b in zip(refined.exclusives, direct.exclusives):
                assert np.array_equal(a.edge_keys(), b.edge_keys())
            assert refined.overlap_rate == pytest.approx(direct.overlap_rate)

    def test_single_member_is_pure_overlap(self, small_graph):
        adjs = [small_graph[i].adjacency for i in range(3)]
        full = extract_overlap(adjs)
        refined = refine_overlap(full, [1])
        assert np.array_equal(refined.overlap.edge_keys(), adjs[1].edge_keys())
        assert refined.exclusives[0].nnz == 0
        assert refined.overlap_rate == pytest.approx(1.0)

    def test_invalid_indices_rejected(self, small_graph):
        full = extract_overlap([small_graph[0].adjacency, small_graph[1].adjacency])
        with pytest.raises(ValueError):
            refine_overlap(full, [])
        with pytest.raises(IndexError):
            refine_overlap(full, [5])


class TestSmoothing:
    def test_edge_life_one_is_identity(self, small_graph):
        adjs = [s.adjacency for s in small_graph.snapshots[:3]]
        result = apply_edge_life(adjs, 1)
        assert all(a is b for a, b in zip(result, adjs))

    def test_edge_life_unions_previous_edges(self):
        a, b = make_adj([1]), make_adj([2])
        smoothened = apply_edge_life([a, b], edge_life=2)
        assert set(smoothened[1].edge_keys().tolist()) == {1, 2}

    def test_edge_counts_monotone_in_life(self, small_graph):
        adjs = [s.adjacency for s in small_graph.snapshots[:5]]
        assert smoothened_edge_total(adjs, 3) >= smoothened_edge_total(adjs, 1)

    def test_invalid_life_rejected(self):
        with pytest.raises(ValueError):
            apply_edge_life([make_adj([1])], 0)


class TestGenerators:
    def test_change_rate_close_to_target(self):
        config = GeneratorConfig(
            num_nodes=200, avg_degree=4, feature_dim=2, num_snapshots=8, change_rate=0.2
        )
        graph = generate_dynamic_graph(config, seed=0)
        assert abs(graph.average_change_rate() - 0.2) < 0.1

    def test_static_topology_never_changes(self):
        config = GeneratorConfig(
            num_nodes=50, avg_degree=3, feature_dim=2, num_snapshots=5,
            change_rate=0.0, topology="static",
        )
        graph = generate_dynamic_graph(config, seed=0)
        assert graph.average_change_rate() == pytest.approx(0.0)

    def test_deterministic_given_seed(self):
        config = GeneratorConfig(num_nodes=40, avg_degree=2, feature_dim=3, num_snapshots=4)
        a = generate_dynamic_graph(config, seed=9)
        b = generate_dynamic_graph(config, seed=9)
        assert np.array_equal(a[2].adjacency.edge_keys(), b[2].adjacency.edge_keys())
        assert np.allclose(a[2].features, b[2].features)

    def test_all_topologies_produce_graphs(self):
        for topology in ("preferential", "uniform", "community", "static"):
            config = GeneratorConfig(
                num_nodes=30, avg_degree=2, feature_dim=2, num_snapshots=3, topology=topology
            )
            graph = generate_dynamic_graph(config, seed=1)
            assert graph.total_edges > 0

    def test_targets_present_and_finite(self, small_graph):
        for snapshot in small_graph:
            assert snapshot.targets is not None
            assert np.isfinite(snapshot.targets).all()

    def test_invalid_topology_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(num_nodes=10, avg_degree=1, feature_dim=1, num_snapshots=2, topology="x")


class TestDatasets:
    def test_registry_has_seven_datasets(self):
        assert len(list_datasets()) == 7

    def test_spec_lookup_case_insensitive(self):
        assert get_dataset_spec("HepTh").name == "hepth"
        with pytest.raises(KeyError):
            get_dataset_spec("nope")

    def test_load_dataset_respects_overrides(self):
        graph = load_dataset("pems08", num_snapshots=6, scale=0.5)
        assert graph.num_snapshots == 6
        assert graph.num_nodes == 85

    def test_metadata_populated(self):
        graph = load_dataset("hepth", num_snapshots=5)
        assert graph.metadata["dataset"] == "hepth"
        assert graph.metadata["hidden_dim"] == 32
        assert graph.metadata["max_s_per"] == 8

    def test_large_datasets_capped_at_two(self):
        graph = load_dataset("flickr", num_snapshots=4)
        assert graph.metadata["max_s_per"] == 2

    def test_feature_dims_match_paper_setting(self):
        for name in list_datasets():
            spec = get_dataset_spec(name)
            assert spec.config.feature_dim in (2, 16)
            assert spec.hidden_dim == (6 if spec.config.feature_dim == 2 else 32)


class TestStats:
    def test_degree_stats(self, random_csr):
        stats = DegreeStats.from_adjacency(random_csr)
        assert stats.mean == pytest.approx(random_csr.nnz / random_csr.num_rows)
        assert 0.0 <= stats.gini <= 1.0

    def test_density(self, random_csr):
        assert density(random_csr) == pytest.approx(random_csr.nnz / 900)

    def test_format_sizes_keys(self, random_csr):
        sizes = format_sizes(random_csr)
        assert sizes["csr_bytes"] <= sizes["sliced_csr_bytes"]

    def test_summarize(self, small_graph):
        summary = summarize(small_graph)
        assert summary["num_nodes"] == 60
        assert 0.0 <= summary["avg_change_rate"] <= 1.0
        assert summary["total_edges"] > 0
