"""Tests for normalization, snapshots, dynamic graphs, frames and partitions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CSRMatrix,
    DynamicGraph,
    FrameIterator,
    GraphSnapshot,
    add_self_loops,
    gcn_normalize,
    partition_frame,
)


def tiny_adj():
    return CSRMatrix.from_edges(np.array([0, 1, 2]), np.array([1, 2, 0]), (4, 4))


class TestNormalize:
    def test_self_loops_added(self):
        adj = add_self_loops(tiny_adj())
        dense = adj.to_dense()
        assert np.all(np.diag(dense) == 1.0)

    def test_mean_rows_sum_to_one(self):
        norm = gcn_normalize(tiny_adj(), method="mean")
        sums = norm.to_dense().sum(axis=1)
        assert np.allclose(sums, 1.0, atol=1e-6)

    def test_sym_is_symmetric_for_symmetric_input(self):
        adj = CSRMatrix.from_edges(np.array([0, 1]), np.array([1, 0]), (3, 3))
        norm = gcn_normalize(adj, method="sym").to_dense()
        assert np.allclose(norm, norm.T, atol=1e-6)

    def test_none_keeps_values(self):
        norm = gcn_normalize(tiny_adj(), method="none", self_loops=False)
        assert np.allclose(norm.to_dense(), tiny_adj().to_dense())

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            gcn_normalize(tiny_adj(), method="bogus")

    def test_isolated_node_handled(self):
        adj = CSRMatrix.from_edges(np.array([0]), np.array([1]), (3, 3))
        norm = gcn_normalize(adj, method="mean")
        assert np.isfinite(norm.to_dense()).all()


class TestSnapshot:
    def test_basic_properties(self):
        snap = GraphSnapshot(tiny_adj(), np.zeros((4, 3), dtype=np.float32), timestep=5)
        assert snap.num_nodes == 4 and snap.num_edges == 3 and snap.feature_dim == 3
        assert snap.timestep == 5

    def test_feature_row_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GraphSnapshot(tiny_adj(), np.zeros((5, 3), dtype=np.float32))

    def test_target_length_checked(self):
        with pytest.raises(ValueError):
            GraphSnapshot(tiny_adj(), np.zeros((4, 3), dtype=np.float32), targets=np.zeros(3))

    def test_normalized_adjacency_cached(self):
        snap = GraphSnapshot(tiny_adj(), np.zeros((4, 2), dtype=np.float32))
        assert snap.normalized_adjacency() is snap.normalized_adjacency()

    def test_adjacency_bytes_formats(self):
        snap = GraphSnapshot(tiny_adj(), np.zeros((4, 2), dtype=np.float32))
        assert snap.adjacency_bytes("coo") == 3 * snap.num_edges * 4
        assert snap.adjacency_bytes("csr+csc") > snap.adjacency_bytes("csr")
        with pytest.raises(ValueError):
            snap.adjacency_bytes("bogus")


class TestDynamicGraph:
    def test_properties(self, small_graph):
        assert small_graph.num_snapshots == 10
        assert small_graph.num_nodes == 60
        assert small_graph.feature_dim == 4
        assert small_graph.total_edges == sum(s.num_edges for s in small_graph)

    def test_change_rates_in_unit_interval(self, small_graph):
        rates = small_graph.change_rates()
        assert len(rates) == small_graph.num_snapshots - 1
        assert np.all((rates >= 0) & (rates <= 1))

    def test_slice_view_shares_snapshots(self, small_graph):
        view = small_graph.slice_view(2, 6)
        assert view.num_snapshots == 4
        assert view[0] is small_graph[2]

    def test_slice_view_bounds_checked(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.slice_view(5, 3)

    def test_mismatched_nodes_rejected(self, small_graph):
        other = GraphSnapshot(tiny_adj(), np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            DynamicGraph(snapshots=[small_graph[0], other])


class TestFrames:
    def test_num_frames(self, small_graph):
        frames = FrameIterator(small_graph, frame_size=4)
        assert frames.num_frames == small_graph.num_snapshots - 4 + 1

    def test_frames_slide_by_stride(self, small_graph):
        frames = list(FrameIterator(small_graph, frame_size=4, stride=2))
        assert frames[1].start == 2
        assert [s.timestep for s in frames[0]] == [0, 1, 2, 3]

    def test_frame_size_too_large_rejected(self, small_graph):
        with pytest.raises(ValueError):
            FrameIterator(small_graph, frame_size=small_graph.num_snapshots + 1)

    def test_overlap_with_next(self, small_graph):
        frames = FrameIterator(small_graph, frame_size=4)
        assert frames.overlap_with_next(0) == 3
        assert frames.overlap_with_next(frames.num_frames - 1) == 0

    def test_frame_lookup_out_of_range(self, small_graph):
        frames = FrameIterator(small_graph, frame_size=4)
        with pytest.raises(IndexError):
            frames.frame(frames.num_frames)

    @pytest.mark.parametrize("s_per,expected_sizes", [(1, [1] * 4), (2, [2, 2]), (3, [3, 1]), (4, [4])])
    def test_partition_frame_sizes(self, small_graph, s_per, expected_sizes):
        frame = FrameIterator(small_graph, frame_size=4).frame(0)
        partitions = partition_frame(frame, s_per)
        assert [p.size for p in partitions] == expected_sizes
        flattened = [s.timestep for p in partitions for s in p]
        assert flattened == [s.timestep for s in frame]
