"""Tests for COO / CSR / sliced CSR sparse formats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import COOMatrix, CSRMatrix, SlicedCSRMatrix


def random_edges(seed: int, n: int, m: int):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    mask = rows != cols
    return rows[mask], cols[mask]


class TestCOO:
    def test_from_edges_deduplicates(self):
        coo = COOMatrix.from_edges([0, 0, 1], [1, 1, 2], (3, 3))
        assert coo.nnz == 2

    def test_to_dense_matches_entries(self):
        coo = COOMatrix.from_edges([0, 2], [1, 0], (3, 3))
        dense = coo.to_dense()
        assert dense[0, 1] == 1.0 and dense[2, 0] == 1.0
        assert dense.sum() == 2.0

    def test_nbytes_formula(self):
        coo = COOMatrix.from_edges([0, 2], [1, 0], (3, 3))
        assert coo.nbytes == 3 * coo.nnz * 4

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix(
                rows=np.array([5]), cols=np.array([0]),
                values=np.array([1.0], dtype=np.float32), shape=(3, 3),
            )

    def test_roundtrip_through_csr(self):
        rows, cols = random_edges(0, 20, 60)
        coo = COOMatrix.from_edges(rows, cols, (20, 20))
        assert np.allclose(coo.to_csr().to_dense(), coo.to_dense())

    def test_edge_keys_sorted(self):
        rows, cols = random_edges(1, 15, 40)
        keys = COOMatrix.from_edges(rows, cols, (15, 15)).edge_keys()
        assert np.all(np.diff(keys) > 0)


class TestCSR:
    def test_from_edges_matches_scipy(self, random_csr):
        dense = random_csr.to_dense()
        assert dense.shape == (30, 30)
        assert random_csr.nnz == int(dense.sum())

    def test_row_nnz_sums_to_nnz(self, random_csr):
        assert int(random_csr.row_nnz().sum()) == random_csr.nnz

    def test_matmul_dense_matches_numpy(self, random_csr):
        x = np.random.default_rng(0).random((30, 5)).astype(np.float32)
        expected = random_csr.to_dense() @ x
        assert np.allclose(random_csr.matmul_dense(x), expected, atol=1e-5)

    def test_matmul_dimension_mismatch(self, random_csr):
        with pytest.raises(ValueError):
            random_csr.matmul_dense(np.zeros((5, 5), dtype=np.float32))

    def test_transpose_is_involution(self, random_csr):
        assert np.allclose(random_csr.transpose().transpose().to_dense(), random_csr.to_dense())

    def test_empty_matrix(self):
        empty = CSRMatrix.empty((4, 4))
        assert empty.nnz == 0
        assert np.allclose(empty.matmul_dense(np.ones((4, 2), dtype=np.float32)), 0.0)

    def test_nbytes_formula(self, random_csr):
        assert random_csr.nbytes == (2 * random_csr.nnz + random_csr.num_rows + 1) * 4

    def test_from_edge_keys_roundtrip(self, random_csr):
        rebuilt = CSRMatrix.from_edge_keys(random_csr.edge_keys(), random_csr.shape)
        assert np.allclose(rebuilt.to_dense(), random_csr.to_dense())

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                indptr=np.array([0, 2]), indices=np.array([0]),
                data=np.array([1.0], dtype=np.float32), shape=(1, 3),
            )

    def test_with_values_preserves_pattern(self, random_csr):
        new = random_csr.with_values(np.full(random_csr.nnz, 2.0, dtype=np.float32))
        assert np.allclose(new.to_dense(), 2.0 * random_csr.to_dense())


class TestSlicedCSR:
    @pytest.mark.parametrize("capacity", [1, 2, 4, 32])
    def test_roundtrip(self, random_csr, capacity):
        sliced = SlicedCSRMatrix.from_csr(random_csr, slice_capacity=capacity)
        assert np.allclose(sliced.to_csr().to_dense(), random_csr.to_dense())

    def test_slice_capacity_respected(self, random_csr):
        sliced = SlicedCSRMatrix.from_csr(random_csr, slice_capacity=3)
        assert sliced.slice_nnz().max() <= 3

    def test_num_slices_lower_bound(self, random_csr):
        sliced = SlicedCSRMatrix.from_csr(random_csr, slice_capacity=4)
        expected = int(np.sum(-(-random_csr.row_nnz() // 4)))
        assert sliced.num_slices == expected

    def test_empty_rows_have_no_slices(self):
        csr = CSRMatrix.from_edges(np.array([0, 0]), np.array([1, 2]), (5, 5))
        sliced = SlicedCSRMatrix.from_csr(csr, slice_capacity=1)
        assert set(sliced.row_indices.tolist()) == {0}

    def test_space_formula(self, random_csr):
        sliced = SlicedCSRMatrix.from_csr(random_csr, slice_capacity=2)
        assert sliced.nbytes == (2 * sliced.nnz + 2 * sliced.num_slices + 1) * 4

    def test_space_between_csr_and_coo_for_default_capacity(self, random_csr):
        sliced = SlicedCSRMatrix.from_csr(random_csr)
        assert random_csr.nbytes <= sliced.nbytes <= random_csr.to_coo().nbytes + 4

    def test_matmul_matches_csr(self, random_csr):
        x = np.random.default_rng(1).random((30, 3)).astype(np.float32)
        sliced = SlicedCSRMatrix.from_csr(random_csr, slice_capacity=2)
        assert np.allclose(sliced.matmul_dense(x), random_csr.matmul_dense(x), atol=1e-5)

    def test_empty_matrix(self):
        sliced = SlicedCSRMatrix.from_csr(CSRMatrix.empty((3, 3)))
        assert sliced.num_slices == 0 and sliced.nnz == 0

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        capacity=st.integers(1, 8),
        n=st.integers(2, 25),
        m=st.integers(0, 80),
    )
    def test_property_roundtrip_and_capacity(self, seed, capacity, n, m):
        """Slicing any CSR matrix is lossless and respects the capacity bound."""
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, n, size=m)
        cols = rng.integers(0, n, size=m)
        csr = CSRMatrix.from_edges(rows, cols, (n, n))
        sliced = SlicedCSRMatrix.from_csr(csr, slice_capacity=capacity)
        assert np.allclose(sliced.to_csr().to_dense(), csr.to_dense())
        if sliced.num_slices:
            assert sliced.slice_nnz().max() <= capacity
            assert sliced.slice_nnz().min() >= 1
