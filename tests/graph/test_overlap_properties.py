"""Property-based tests for the overlap-decomposition invariants.

Everything downstream — partition transfers, the reuse cache, the serving
store, the distributed shards — leans on two invariants of §4.1's
decomposition, so they are checked here over randomized workloads instead
of hand-picked examples:

1. for *arbitrary* snapshot windows, ``overlap ∪ exclusives[i]``
   reconstructs every snapshot exactly and the two parts are disjoint;
2. the incremental tracker agrees with the from-scratch
   :func:`extract_overlap` / :func:`refine_overlap` after *any* sequence of
   graph deltas.

Cases are generated from seeded :mod:`repro.utils.rng` streams (60 seeds ×
several window states each), so a failure reproduces from its seed alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRMatrix, IncrementalOverlapTracker, extract_overlap, refine_overlap
from repro.utils.rng import as_rng

#: number of seeded cases per property (two properties -> >= 50 cases total)
NUM_SEEDS = 30


def random_keys(rng: np.random.Generator, n: int, max_edges: int) -> np.ndarray:
    """A random (possibly empty) edge-key set over an ``n x n`` node grid."""
    num = int(rng.integers(0, max_edges + 1))
    rows = rng.integers(0, n, size=num, dtype=np.int64)
    cols = rng.integers(0, n, size=num, dtype=np.int64)
    return np.unique(rows * n + cols)


def evolve_keys(keys: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    """One random delta: drop ~20 % of the edges, insert a few fresh ones."""
    kept = keys[rng.random(len(keys)) > 0.2] if len(keys) else keys
    fresh = random_keys(rng, n, max(2, len(keys) // 3))
    return np.union1d(kept, fresh)


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_decomposition_reconstructs_arbitrary_windows(seed):
    rng = as_rng(seed)
    n = int(rng.integers(8, 40))
    group_size = int(rng.integers(1, 7))
    key_sets = [random_keys(rng, n, 4 * n) for _ in range(group_size)]
    adjacencies = [CSRMatrix.from_edge_keys(keys, (n, n)) for keys in key_sets]

    decomposition = extract_overlap(adjacencies)
    overlap_keys = decomposition.overlap.edge_keys()
    assert decomposition.group_size == group_size
    assert 0.0 <= decomposition.overlap_rate <= 1.0
    assert decomposition.transfer_elements <= decomposition.baseline_elements

    for keys, exclusive in zip(key_sets, decomposition.exclusives):
        exclusive_keys = exclusive.edge_keys()
        # Exact reconstruction: overlap ∪ exclusive == the original snapshot.
        assert np.array_equal(np.union1d(overlap_keys, exclusive_keys), keys)
        # Disjointness: no edge is stored twice.
        assert len(np.intersect1d(overlap_keys, exclusive_keys)) == 0
        # The overlap is contained in every member.
        assert len(np.setdiff1d(overlap_keys, keys)) == 0


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_tracker_matches_from_scratch_after_any_delta_sequence(seed):
    rng = as_rng(1_000 + seed)
    n = int(rng.integers(8, 32))
    capacity = int(rng.integers(2, 6))
    tracker = IncrementalOverlapTracker((n, n), capacity)

    keys = random_keys(rng, n, 3 * n)
    window: list = []
    for version in range(int(rng.integers(capacity, 2 * capacity + 3))):
        keys = evolve_keys(keys, n, rng)
        tracker.push(version, keys)
        window.append(keys)
        window = window[-capacity:]

        scratch = extract_overlap(
            [CSRMatrix.from_edge_keys(k, (n, n)) for k in window]
        )
        incremental = tracker.decomposition()
        assert np.array_equal(
            incremental.overlap.edge_keys(), scratch.overlap.edge_keys()
        )
        for a, b in zip(incremental.exclusives, scratch.exclusives):
            assert np.array_equal(a.edge_keys(), b.edge_keys())
        assert incremental.overlap_rate == pytest.approx(scratch.overlap_rate)

    # Refinement of a random subgroup agrees with both the from-scratch
    # refinement and a direct extraction over the subgroup members.
    size = int(rng.integers(1, len(window) + 1))
    positions = sorted(
        int(p) for p in rng.choice(len(window), size=size, replace=False)
    )
    refined = tracker.refine(positions)
    scratch_refined = refine_overlap(
        extract_overlap([CSRMatrix.from_edge_keys(k, (n, n)) for k in window]),
        positions,
    )
    direct = extract_overlap(
        [CSRMatrix.from_edge_keys(window[p], (n, n)) for p in positions]
    )
    for other in (scratch_refined, direct):
        assert np.array_equal(
            refined.overlap.edge_keys(), other.overlap.edge_keys()
        )
        for a, b in zip(refined.exclusives, other.exclusives):
            assert np.array_equal(a.edge_keys(), b.edge_keys())
    assert refined.overlap_rate == pytest.approx(scratch_refined.overlap_rate)
