"""Tests for the experiment harness, profiling helpers and package surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.baselines import PyGTTrainer, TrainerConfig
from repro.experiments import (
    ExperimentConfig,
    format_experiment,
    format_table,
    list_experiments,
    run_experiment,
)
from repro.experiments.fig10_overall_speedup import speedups
from repro.experiments.fig11_parallel_gnn import dimension_sensitivity, thread_utilization
from repro.profiling import (
    compute_time_breakdown,
    latency_breakdown,
    sliced_vs_csr_balance,
    utilization_summary,
)

QUICK = ExperimentConfig.quick()


class TestPackageSurface:
    def test_version_and_lazy_exports(self):
        assert repro.__version__
        assert repro.CSRMatrix is not None
        assert repro.PiPADTrainer is not None
        assert "load_dataset" in dir(repro)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_symbol


class TestProfilingHelpers:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.graph import load_dataset

        graph = load_dataset("covid19_england", num_snapshots=8)
        return PyGTTrainer(graph, TrainerConfig(model="tgcn", frame_size=4, epochs=1)).train()

    def test_latency_breakdown_sums_to_one(self, result):
        breakdown = latency_breakdown(result)
        total = (
            breakdown["transfer_fraction"]
            + breakdown["compute_fraction"]
            + breakdown["cpu_fraction"]
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_compute_breakdown_sums_to_one(self, result):
        breakdown = compute_time_breakdown(result)
        assert sum(breakdown.values()) == pytest.approx(1.0, abs=1e-6)
        assert breakdown["gnn_fraction"] > 0

    def test_utilization_summary_shape(self, result):
        table = utilization_summary([result])
        assert table["PyGT"][result.dataset] == pytest.approx(result.gpu_utilization * 100)

    def test_sliced_vs_csr_balance(self, small_graph):
        report = sliced_vs_csr_balance(small_graph)
        assert report["csr_imbalance"] >= 1.0
        assert report["sliced_imbalance"] >= 1.0
        assert report["improvement"] >= 1.0 - 1e-9


class TestExperimentHarness:
    def test_registry_covers_all_paper_artifacts(self):
        names = set(list_experiments())
        assert {"table1", "table2", "fig3", "fig4", "fig5", "fig9", "fig10", "fig11", "fig12"} <= names

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [["x", 1.0], ["yy", 2.5]])
        assert "a" in text and "2.500" in text

    def test_table1_rows(self):
        rows = run_experiment("table1", QUICK)
        assert len(rows) == 7
        assert rows["flickr"]["feature_dim"] == 2
        assert "paper_nodes" in rows["flickr"]
        assert format_experiment("table1", rows)

    def test_fig5_monotone_transactions(self):
        rows = run_experiment("fig5", QUICK)
        dims = sorted(rows)
        transactions = [rows[d]["transactions_per_nnz"] for d in dims]
        assert transactions == sorted(transactions)
        # Requests stay flat until the 128-byte boundary, transactions rise at 32 bytes.
        assert rows[2]["transactions_per_nnz"] == pytest.approx(rows[8]["transactions_per_nnz"], rel=0.2)
        assert rows[64]["requests_per_nnz"] > rows[16]["requests_per_nnz"]

    def test_fig9_speedups_monotone_in_s_per(self):
        rows = run_experiment("fig9", QUICK)
        table = rows["speedup_vs_overlap"]
        for overlap in (0.1, 0.9):
            assert table[(8, overlap)] >= table[(2, overlap)] * 0.9
        assert format_experiment("fig9", rows)

    def test_fig11_rows_and_thread_utilization(self):
        rows = run_experiment("fig11", QUICK)
        for row in rows.values():
            assert row["speedup_over_pygt"] > 1.0
            assert row["speedup_over_pygt_g"] > 0.5
        util = thread_utilization(QUICK)
        assert util["pipad_thread_utilization"] > util["pygt_g_thread_utilization"]
        sens = dimension_sensitivity(QUICK, dimensions=(2, 16), group_size=2)
        assert all(v > 1.0 for v in sens.values())

    def test_space_overhead_between_csr_and_coo(self):
        rows = run_experiment("space_overhead", QUICK)
        for row in rows.values():
            assert row["csr_bytes"] <= row["sliced_csr_bytes"]
            assert row["sliced_over_coo"] <= 1.05

    def test_fig10_and_table2_quick(self):
        rows = run_experiment("fig10", QUICK)
        table = speedups(rows)
        for row in table.values():
            assert row["PyGT"] == pytest.approx(1.0)
            assert row["PiPAD"] > 1.0
        util = run_experiment("table2", QUICK.with_overrides(methods=("PyGT", "PiPAD")))
        for row in util.values():
            assert 0 < row["PyGT"] <= 100.0
        assert format_experiment("fig10", rows)

    def test_fig3_breakdown_quick(self):
        rows = run_experiment("fig3", QUICK)
        for row in rows.values():
            total = row["transfer_fraction"] + row["compute_fraction"] + row["cpu_fraction"]
            assert total == pytest.approx(1.0, abs=1e-6)
        assert format_experiment("fig3", rows)
