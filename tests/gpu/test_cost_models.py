"""Tests for the GPU specs, memory/warp/load-balance models and kernel costs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    GPUSpec,
    HostSpec,
    KernelCost,
    PCIeSpec,
    analyze_block_work,
    baseline_active_thread_ratio,
    block_work_from_row_nnz,
    block_work_from_slice_nnz,
    choose_coalesce_num,
    classify_dimension,
    coalesced_active_thread_ratio,
    contiguous_bytes_cost,
    row_access,
    summarize_costs,
    warp_efficiency_report,
)


class TestSpecs:
    def test_default_peak_flops_reasonable(self, gpu_spec):
        assert 10e12 < gpu_spec.peak_flops < 20e12

    def test_memory_bytes(self, gpu_spec):
        assert gpu_spec.memory_bytes == 16 * 1024**3

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(num_sms=0)
        with pytest.raises(ValueError):
            GPUSpec(memory_efficiency=1.5)

    def test_pcie_transfer_time_monotone_in_bytes(self):
        pcie = PCIeSpec()
        assert pcie.transfer_seconds(2e6) > pcie.transfer_seconds(1e6)
        assert pcie.transfer_seconds(0) == 0.0

    def test_pcie_pageable_slower_than_pinned(self):
        pcie = PCIeSpec()
        assert pcie.transfer_seconds(1e8, pinned=False) > pcie.transfer_seconds(1e8, pinned=True)

    def test_pcie_negative_rejected(self):
        with pytest.raises(ValueError):
            PCIeSpec().transfer_seconds(-1)

    def test_host_spec_defaults(self):
        host = HostSpec()
        assert host.dispatch_overhead_us > host.graph_dispatch_overhead_us


class TestMemoryModel:
    def test_bandwidth_unsaturation_regime(self, gpu_spec):
        access = row_access(2, gpu_spec)
        assert access.transactions == 1 and access.requests == 1
        assert access.wasted_bytes == 32 - 8
        assert classify_dimension(2, gpu_spec) == "bandwidth-unsaturated"

    def test_request_burst_regime(self, gpu_spec):
        access = row_access(64, gpu_spec)
        assert access.requests == 2 and access.transactions == 8
        assert classify_dimension(64, gpu_spec) == "request-burst"

    def test_balanced_regime(self, gpu_spec):
        assert classify_dimension(16, gpu_spec) == "balanced"

    def test_vectorized_reduces_requests_not_transactions(self, gpu_spec):
        scalar = row_access(128, gpu_spec)
        vector = row_access(128, gpu_spec, vectorized=True)
        assert vector.requests < scalar.requests
        assert vector.transactions == scalar.transactions

    def test_coalesced_rows_scale_useful_bytes(self, gpu_spec):
        single = row_access(2, gpu_spec)
        coalesced = row_access(2, gpu_spec, coalesced_rows=4)
        assert coalesced.useful_bytes == 4 * single.useful_bytes
        assert coalesced.transactions == 1

    def test_contiguous_bytes_cost(self, gpu_spec):
        cost = contiguous_bytes_cost(1024, gpu_spec)
        assert cost.transactions == 32 and cost.requests == 8

    def test_invalid_dims_rejected(self, gpu_spec):
        with pytest.raises(ValueError):
            row_access(0, gpu_spec)

    @settings(max_examples=40, deadline=None)
    @given(dim=st.integers(1, 512))
    def test_property_transactions_cover_useful_bytes(self, dim):
        """Transactions always move at least the useful bytes, in 32-byte units."""
        spec = GPUSpec()
        access = row_access(dim, spec)
        assert access.transactions * spec.transaction_bytes >= access.useful_bytes
        assert access.requests <= access.transactions or access.useful_bytes <= spec.transaction_bytes


class TestWarpModel:
    def test_baseline_ratio_small_dim(self, gpu_spec):
        assert baseline_active_thread_ratio(2, gpu_spec) == pytest.approx(2 / 32)
        assert baseline_active_thread_ratio(64, gpu_spec) == 1.0

    def test_coalesce_num_bounds(self, gpu_spec):
        assert choose_coalesce_num(2, gpu_spec) == 4   # capped at 4 thread groups
        assert choose_coalesce_num(8, gpu_spec) == 4
        assert choose_coalesce_num(16, gpu_spec) == 2
        assert choose_coalesce_num(32, gpu_spec) == 1

    def test_coalesced_ratio_never_below_baseline(self, gpu_spec):
        for dim in (1, 2, 4, 8, 16, 31, 32, 64):
            assert coalesced_active_thread_ratio(dim, gpu_spec) >= baseline_active_thread_ratio(
                dim, gpu_spec
            )

    def test_warp_efficiency_report(self, gpu_spec):
        report = warp_efficiency_report(2, 4, gpu_spec)
        assert report.coalescent_dim == 8
        assert report.improvement > 1.0


class TestLoadBalance:
    def test_uniform_work_is_balanced(self, gpu_spec):
        report = analyze_block_work(np.full(100, 10.0), gpu_spec)
        assert report.imbalance == pytest.approx(1.0, abs=0.15)

    def test_skewed_work_is_imbalanced(self, gpu_spec):
        work = np.ones(64)
        work[0] = 1000.0
        report = analyze_block_work(work, gpu_spec)
        assert report.imbalance > 2.0

    def test_scale_reduces_tail_effect(self, gpu_spec):
        work = np.ones(64)
        work[0] = 1000.0
        small = analyze_block_work(work, gpu_spec, scale=1.0)
        large = analyze_block_work(work, gpu_spec, scale=1000.0)
        assert large.imbalance < small.imbalance

    def test_sliced_mapping_more_balanced_than_rows(self, random_csr, gpu_spec):
        from repro.graph import SlicedCSRMatrix

        row_report = analyze_block_work(block_work_from_row_nnz(random_csr.row_nnz()), gpu_spec)
        sliced = SlicedCSRMatrix.from_csr(random_csr, slice_capacity=2)
        slice_report = analyze_block_work(
            block_work_from_slice_nnz(sliced.slice_nnz()), gpu_spec
        )
        assert slice_report.imbalance <= row_report.imbalance + 1e-9

    def test_empty_work(self, gpu_spec):
        report = analyze_block_work(np.zeros(0), gpu_spec)
        assert report.imbalance == 1.0


class TestKernelCost:
    def test_memory_bound_kernel_time(self, gpu_spec):
        cost = KernelCost(name="k", mem_transactions=1e6)
        expected = 1e6 * 32 / gpu_spec.effective_bandwidth
        assert cost.execution_seconds(gpu_spec) == pytest.approx(expected)

    def test_compute_bound_kernel_time(self, gpu_spec):
        cost = KernelCost(name="k", flops=1e12)
        assert cost.execution_seconds(gpu_spec) == pytest.approx(1e12 / gpu_spec.peak_flops)

    def test_low_thread_ratio_slows_compute(self, gpu_spec):
        fast = KernelCost(name="k", flops=1e12, active_thread_ratio=1.0)
        slow = KernelCost(name="k", flops=1e12, active_thread_ratio=0.25)
        assert slow.execution_seconds(gpu_spec) == pytest.approx(4 * fast.execution_seconds(gpu_spec))

    def test_imbalance_multiplies_time(self, gpu_spec):
        base = KernelCost(name="k", mem_transactions=1e6)
        imbalanced = KernelCost(name="k", mem_transactions=1e6, imbalance=2.0)
        assert imbalanced.execution_seconds(gpu_spec) == pytest.approx(
            2 * base.execution_seconds(gpu_spec)
        )
        assert imbalanced.balanced_seconds(gpu_spec) == pytest.approx(
            base.execution_seconds(gpu_spec)
        )

    def test_bandwidth_efficiency_slows_memory(self, gpu_spec):
        base = KernelCost(name="k", mem_transactions=1e6)
        derated = KernelCost(name="k", mem_transactions=1e6, bandwidth_efficiency=0.5)
        assert derated.execution_seconds(gpu_spec) == pytest.approx(
            2 * base.execution_seconds(gpu_spec)
        )

    def test_scaled_multiplies_extensive_quantities(self, gpu_spec):
        cost = KernelCost(name="k", flops=10, mem_transactions=20, mem_requests=5, num_blocks=4)
        scaled = cost.scaled(3.0)
        assert scaled.flops == 30 and scaled.mem_transactions == 60 and scaled.num_blocks == 12
        assert scaled.active_thread_ratio == cost.active_thread_ratio

    def test_merged_with_sums_traffic(self):
        a = KernelCost(name="a", flops=10, mem_transactions=5, launches=1)
        b = KernelCost(name="b", flops=20, mem_transactions=10, launches=2)
        merged = a.merged_with(b)
        assert merged.flops == 30 and merged.mem_transactions == 15 and merged.launches == 3

    def test_invalid_costs_rejected(self):
        with pytest.raises(ValueError):
            KernelCost(name="k", category="bogus")
        with pytest.raises(ValueError):
            KernelCost(name="k", active_thread_ratio=0.0)
        with pytest.raises(ValueError):
            KernelCost(name="k", imbalance=0.5)
        with pytest.raises(ValueError):
            KernelCost(name="k", flops=-1)

    def test_summarize_costs(self, gpu_spec):
        costs = [
            KernelCost(name="a", category="aggregation", mem_transactions=1e6),
            KernelCost(name="b", category="rnn", flops=1e9, launches=3),
        ]
        summary = summarize_costs(costs, gpu_spec)
        assert summary["total_launches"] == 4
        assert summary["aggregation_seconds"] > 0
        assert summary["total_seconds"] == pytest.approx(
            summary["aggregation_seconds"] + summary["rnn_seconds"]
        )
