"""Tests for the timeline scheduler, the simulated device and the profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import (
    KernelCost,
    KernelCostCollector,
    OutOfMemoryError,
    SimulatedGPU,
    Timeline,
    estimate_event_cost,
)
from repro.tensor import Tensor, observe_ops, ops, op_scope
from repro.tensor.function import OpEvent


class TestTimeline:
    def test_same_stream_serializes(self):
        timeline = Timeline()
        a = timeline.submit(label="a", kind="kernel", resource="compute", duration=1.0, stream="s")
        b = timeline.submit(label="b", kind="kernel", resource="compute", duration=1.0, stream="s")
        assert b.start == pytest.approx(a.end)
        assert timeline.makespan() == pytest.approx(2.0)

    def test_different_resources_overlap(self):
        timeline = Timeline()
        timeline.submit(label="k", kind="kernel", resource="compute", duration=1.0, stream="a")
        timeline.submit(label="t", kind="h2d", resource="pcie_h2d", duration=1.0, stream="b")
        assert timeline.makespan() == pytest.approx(1.0)

    def test_dependencies_respected(self):
        timeline = Timeline()
        a = timeline.submit(label="a", kind="h2d", resource="pcie_h2d", duration=2.0, stream="copy")
        b = timeline.submit(
            label="b", kind="kernel", resource="compute", duration=1.0, stream="c", depends_on=[a]
        )
        assert b.start == pytest.approx(2.0)

    def test_same_resource_serializes_across_streams(self):
        timeline = Timeline()
        timeline.submit(label="a", kind="kernel", resource="compute", duration=1.0, stream="s1")
        b = timeline.submit(label="b", kind="kernel", resource="compute", duration=1.0, stream="s2")
        assert b.start == pytest.approx(1.0)

    def test_busy_time_unions_intervals(self):
        timeline = Timeline()
        timeline.submit(label="a", kind="kernel", resource="compute", duration=1.0, stream="s1")
        timeline.submit(label="b", kind="h2d", resource="pcie_h2d", duration=0.5, stream="s2")
        assert timeline.busy_time(["compute", "pcie_h2d"]) == pytest.approx(1.0)

    def test_utilization_definitions(self):
        timeline = Timeline()
        timeline.submit(label="cpu", kind="cpu", resource="cpu", duration=1.0, stream="default")
        timeline.submit(label="k", kind="kernel", resource="compute", duration=1.0, stream="default")
        assert timeline.sm_utilization() == pytest.approx(0.5)
        assert timeline.gpu_utilization() == pytest.approx(0.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline().submit(label="x", kind="cpu", resource="cpu", duration=-1.0)

    def test_reset(self):
        timeline = Timeline()
        timeline.submit(label="a", kind="kernel", resource="compute", duration=1.0)
        timeline.reset()
        assert timeline.makespan() == 0.0 and not timeline.ops


class TestSimulatedGPU:
    def test_transfer_and_kernel_accounting(self, device):
        transfer = device.transfer_h2d(12e9 / 1000)  # ~1 ms at 12 GB/s
        cost = KernelCost(name="k", category="aggregation", mem_transactions=1e6)
        kernel = device.launch_kernel(cost, depends_on=[transfer])
        assert kernel.start >= transfer.end
        assert device.kernel_stats["aggregation"].launches == 1
        assert device.elapsed_seconds() == pytest.approx(kernel.end)

    def test_launch_overhead_depends_on_cuda_graph(self, gpu_spec):
        eager = SimulatedGPU(gpu_spec)
        graphed = SimulatedGPU(gpu_spec, use_cuda_graph=True)
        cost = KernelCost(name="k", flops=1.0)
        assert eager.launch_kernel(cost).duration > graphed.launch_kernel(cost).duration

    def test_launch_kernels_serializes_batch(self, device):
        costs = [KernelCost(name=f"k{i}", flops=1e9) for i in range(3)]
        ops_ = device.launch_kernels(costs)
        assert len(ops_) == 3
        assert ops_[1].start >= ops_[0].end

    def test_memory_ledger(self, device):
        device.malloc("a", 1024)
        device.malloc("b", 2048)
        assert device.allocated_bytes == 3072 and device.peak_bytes == 3072
        device.free("a")
        assert device.allocated_bytes == 2048
        with pytest.raises(KeyError):
            device.free("missing")

    def test_oom_raised(self, device):
        with pytest.raises(OutOfMemoryError):
            device.malloc("huge", device.spec.memory_bytes + 1)

    def test_duplicate_allocation_rejected(self, device):
        device.malloc("x", 10)
        with pytest.raises(ValueError):
            device.malloc("x", 10)

    def test_average_thread_ratio_weighted(self, device):
        device.launch_kernel(
            KernelCost(name="a", category="aggregation", mem_transactions=1e6, active_thread_ratio=0.25)
        )
        device.launch_kernel(
            KernelCost(name="b", category="update", mem_transactions=1e6, active_thread_ratio=1.0)
        )
        ratio = device.average_thread_ratio(["aggregation", "update"])
        assert 0.25 < ratio < 1.0

    def test_reset_clears_state(self, device):
        device.malloc("x", 10)
        device.launch_kernel(KernelCost(name="k", flops=1.0))
        device.reset()
        assert device.allocated_bytes == 0
        assert device.elapsed_seconds() == 0.0
        assert device.kernel_stats["other"].launches == 0

    def test_breakdown_keys(self, device):
        device.transfer_h2d(1e6)
        device.launch_kernel(KernelCost(name="k", flops=1e9))
        breakdown = device.breakdown()
        assert set(breakdown) >= {"h2d", "kernel", "makespan", "gpu_utilization", "sm_utilization"}


class TestProfiler:
    def test_matmul_event_estimated(self, gpu_spec):
        event = OpEvent(
            name="matmul", phase="forward", input_shapes=((8, 4), (4, 6)),
            output_shapes=((8, 6),), attrs={"scope": "update"},
        )
        cost = estimate_event_cost(event, gpu_spec)
        assert cost.flops == pytest.approx(2 * 8 * 4 * 6)
        assert cost.category == "update"

    def test_reshape_is_free(self, gpu_spec):
        event = OpEvent(name="reshape", phase="forward", input_shapes=((8, 4),), output_shapes=((32,),))
        assert estimate_event_cost(event, gpu_spec) is None

    def test_explicit_kernel_cost_passthrough(self, gpu_spec):
        explicit = KernelCost(name="custom", category="aggregation", flops=123.0)
        event = OpEvent(
            name="spmm", phase="forward", input_shapes=(), output_shapes=(),
            attrs={"kernel_cost": explicit},
        )
        assert estimate_event_cost(event, gpu_spec) is explicit

    def test_collector_scales_node_dim_ops_only(self, gpu_spec):
        collector = KernelCostCollector(gpu_spec, num_nodes=50, scale=10.0)
        node_event = OpEvent(
            name="sigmoid", phase="forward", input_shapes=((50, 4),), output_shapes=((50, 4),)
        )
        other_event = OpEvent(
            name="sigmoid", phase="forward", input_shapes=((6, 4),), output_shapes=((6, 4),)
        )
        collector(node_event)
        collector(other_event)
        scaled, unscaled = collector.drain()
        assert scaled.flops == pytest.approx(10.0 * unscaled.flops * (50 * 4) / (6 * 4), rel=1e-6)

    def test_collector_does_not_rescale_explicit_costs(self, gpu_spec):
        collector = KernelCostCollector(gpu_spec, num_nodes=50, scale=10.0)
        explicit = KernelCost(name="custom", flops=100.0)
        collector(OpEvent(
            name="spmm", phase="forward", input_shapes=((50, 4),), output_shapes=((50, 4),),
            attrs={"kernel_cost": explicit},
        ))
        assert collector.drain()[0].flops == 100.0

    def test_collector_integrates_with_autograd(self, gpu_spec):
        collector = KernelCostCollector(gpu_spec, num_nodes=8, scale=1.0)
        x = Tensor(np.random.default_rng(0).random((8, 4)).astype(np.float32), requires_grad=True)
        w = Tensor(np.random.default_rng(1).random((4, 3)).astype(np.float32), requires_grad=True)
        with observe_ops(collector):
            with op_scope("rnn"):
                loss = ops.sum(ops.sigmoid(x @ w))
            loss.backward()
        costs = collector.drain()
        assert collector.events_seen > 0
        assert any(c.category == "rnn" for c in costs)
        assert sum(c.launches for c in costs) >= 4
