"""Tests for the aggregation kernels and the update GEMM."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRMatrix
from repro.gpu import GPUSpec
from repro.kernels import (
    GESpMMAggregation,
    PyGCOOAggregation,
    SlicedParallelAggregation,
    get_aggregation_kernel,
    register_aggregation_kernel,
    update_gemm,
    update_gemm_cost,
)
from repro.tensor import Tensor

SPEC = GPUSpec()


def make_adj(seed=0, n=40, m=160):
    rng = np.random.default_rng(seed)
    rows, cols = rng.integers(0, n, m), rng.integers(0, n, m)
    mask = rows != cols
    return CSRMatrix.from_edges(rows[mask], cols[mask], (n, n))


ALL_KERNELS = [PyGCOOAggregation, GESpMMAggregation, SlicedParallelAggregation]


class TestNumerics:
    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_forward_matches_reference(self, kernel_cls):
        adj = make_adj()
        kernel = kernel_cls(adj, SPEC)
        x = np.random.default_rng(1).random((40, 6)).astype(np.float32)
        assert np.allclose(kernel.forward(x), adj.to_dense() @ x, atol=1e-4)

    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_backward_is_transpose(self, kernel_cls):
        adj = make_adj()
        kernel = kernel_cls(adj, SPEC)
        grad = np.random.default_rng(2).random((40, 3)).astype(np.float32)
        assert np.allclose(kernel.backward(grad), adj.to_dense().T @ grad, atol=1e-4)

    def test_dimension_mismatch_rejected(self):
        kernel = GESpMMAggregation(make_adj(), SPEC)
        with pytest.raises(ValueError):
            kernel.forward(np.zeros((3, 3), dtype=np.float32))

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            GESpMMAggregation(make_adj(), SPEC, scale=0.0)


class TestCostShapes:
    def test_scale_multiplies_cost(self):
        adj = make_adj()
        small = GESpMMAggregation(adj, SPEC, scale=1.0).forward_cost((40, 8))
        large = GESpMMAggregation(adj, SPEC, scale=100.0).forward_cost((40, 8))
        # Extensive quantities scale linearly up to per-access ceil rounding.
        assert large.mem_transactions == pytest.approx(100.0 * small.mem_transactions, rel=1e-2)
        assert large.flops == pytest.approx(100.0 * small.flops, rel=1e-6)

    def test_coo_has_more_traffic_than_gespmm(self):
        adj = make_adj()
        coo = PyGCOOAggregation(adj, SPEC).forward_cost((40, 8))
        csr = GESpMMAggregation(adj, SPEC).forward_cost((40, 8))
        assert coo.mem_transactions > csr.mem_transactions
        assert coo.launches > csr.launches

    def test_coo_slower_than_gespmm_slower_than_sliced(self):
        """The per-aggregation time ordering matches the paper's kernel story."""
        adj = make_adj(m=400)
        x_shape = (40, 4)
        times = {
            cls.__name__: cls(adj, SPEC, scale=1000.0).forward_cost(x_shape).execution_seconds(SPEC)
            for cls in ALL_KERNELS
        }
        assert times["PyGCOOAggregation"] > times["GESpMMAggregation"] > times["SlicedParallelAggregation"]

    def test_gespmm_thread_ratio_tracks_feature_dim(self):
        adj = make_adj()
        kernel = GESpMMAggregation(adj, SPEC)
        assert kernel.forward_cost((40, 2)).active_thread_ratio == pytest.approx(2 / 32)
        assert kernel.forward_cost((40, 64)).active_thread_ratio == 1.0

    def test_sliced_coalescing_raises_thread_ratio(self):
        adj = make_adj()
        sliced = SlicedParallelAggregation(adj, SPEC)
        gespmm = GESpMMAggregation(adj, SPEC)
        assert (
            sliced.forward_cost((40, 4)).active_thread_ratio
            > gespmm.forward_cost((40, 4)).active_thread_ratio
        )

    def test_sliced_vector_loads_reduce_requests_for_large_dims(self):
        adj = make_adj()
        sliced = SlicedParallelAggregation(adj, SPEC).forward_cost((40, 128))
        gespmm = GESpMMAggregation(adj, SPEC).forward_cost((40, 128))
        assert sliced.mem_requests < gespmm.mem_requests

    def test_empty_rows_cost_nothing_in_sliced_format(self):
        # 100 rows but only 5 carry edges: GE-SpMM pays per-row overhead,
        # sliced CSR only pays per slice.
        rows = np.array([0, 1, 2, 3, 4])
        cols = np.array([10, 11, 12, 13, 14])
        adj = CSRMatrix.from_edges(rows, cols, (100, 100))
        gespmm = GESpMMAggregation(adj, SPEC).forward_cost((100, 4))
        sliced = SlicedParallelAggregation(adj, SPEC).forward_cost((100, 4))
        assert sliced.mem_transactions < gespmm.mem_transactions

    def test_backward_cost_uses_transpose_distribution(self):
        # All edges point to column 0 -> transpose is maximally skewed.
        rows = np.arange(1, 30)
        cols = np.zeros(29, dtype=np.int64)
        adj = CSRMatrix.from_edges(rows, cols, (30, 30))
        kernel = GESpMMAggregation(adj, SPEC)
        assert kernel.backward_cost((30, 8)).imbalance >= kernel.forward_cost((30, 8)).imbalance

    def test_coalesce_num_report(self):
        kernel = SlicedParallelAggregation(make_adj(), SPEC)
        assert kernel.coalesce_num(4) == 4
        assert kernel.coalesce_num(64) == 1

    @settings(max_examples=20, deadline=None)
    @given(dim=st.integers(1, 128), seed=st.integers(0, 50))
    def test_property_costs_positive_and_consistent(self, dim, seed):
        """All kernels report positive, internally consistent costs for any dim."""
        adj = make_adj(seed=seed, n=20, m=60)
        if adj.nnz == 0:
            return
        for cls in ALL_KERNELS:
            cost = cls(adj, SPEC).forward_cost((20, dim))
            assert cost.flops > 0
            assert cost.mem_transactions >= cost.mem_requests
            assert cost.execution_seconds(SPEC) > 0


class TestUpdateGEMM:
    def test_cost_weight_reuse_reduces_traffic(self):
        base = update_gemm_cost(1000, 16, 32, SPEC, reuse_group=1)
        reused = update_gemm_cost(1000, 16, 32, SPEC, reuse_group=8)
        assert reused.global_read_bytes < base.global_read_bytes
        assert reused.flops == base.flops

    def test_cost_invalid_group(self):
        with pytest.raises(ValueError):
            update_gemm_cost(10, 4, 4, SPEC, reuse_group=0)

    def test_forward_matches_dense_and_grads_flow(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.random((7, 5)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.random((5, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        out = update_gemm(x, w, b, reuse_group=2, spec=SPEC)
        assert np.allclose(out.numpy(), x.numpy() @ w.numpy() + b.numpy(), atol=1e-5)
        out.backward(np.ones_like(out.numpy()))
        assert x.grad is not None and w.grad is not None and b.grad is not None
        assert np.allclose(w.grad, x.numpy().T @ np.ones((7, 3), dtype=np.float32), atol=1e-4)

    def test_forward_without_bias(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.random((4, 2)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.random((2, 2)).astype(np.float32), requires_grad=True)
        out = update_gemm(x, w, None, spec=SPEC)
        out.backward(np.ones_like(out.numpy()))
        assert np.allclose(out.numpy(), x.numpy() @ w.numpy(), atol=1e-5)


class TestRegistry:
    def test_lookup_aliases(self):
        assert get_aggregation_kernel("pyg") is PyGCOOAggregation
        assert get_aggregation_kernel("GESPMM") is GESpMMAggregation
        assert get_aggregation_kernel("pipad") is SlicedParallelAggregation

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            get_aggregation_kernel("nope")

    def test_register_custom_kernel(self):
        class Custom(GESpMMAggregation):
            name = "custom"

        register_aggregation_kernel("custom-test", Custom)
        assert get_aggregation_kernel("custom-test") is Custom

    def test_register_rejects_non_kernel(self):
        with pytest.raises(TypeError):
            register_aggregation_kernel("bad", dict)
