"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import TrainerConfig
from repro.graph import CSRMatrix, GeneratorConfig, generate_dynamic_graph
from repro.gpu import DeviceGroup, GPUSpec, SimulatedGPU
from repro.nn import build_model
from repro.serving import IncrementalSnapshotStore, ServingConfig, build_serving_engine


@pytest.fixture(scope="session")
def small_graph():
    """A small dynamic graph used throughout the trainer/model tests."""
    config = GeneratorConfig(
        num_nodes=60,
        avg_degree=3.0,
        feature_dim=4,
        num_snapshots=10,
        change_rate=0.15,
        topology="preferential",
        name="test-graph",
    )
    return generate_dynamic_graph(config, seed=7)


@pytest.fixture(scope="session")
def dense_feature_graph():
    """A graph with a larger feature dimension (vector-load code paths)."""
    config = GeneratorConfig(
        num_nodes=40,
        avg_degree=4.0,
        feature_dim=40,
        num_snapshots=8,
        change_rate=0.1,
        topology="community",
        name="test-dense",
    )
    return generate_dynamic_graph(config, seed=11)


@pytest.fixture()
def random_csr():
    """A deterministic random 30x30 CSR adjacency."""
    rng = np.random.default_rng(3)
    rows = rng.integers(0, 30, size=90)
    cols = rng.integers(0, 30, size=90)
    mask = rows != cols
    return CSRMatrix.from_edges(rows[mask], cols[mask], (30, 30))


@pytest.fixture()
def gpu_spec():
    return GPUSpec()


@pytest.fixture()
def device():
    return SimulatedGPU()


@pytest.fixture()
def trainer_config():
    return TrainerConfig(model="tgcn", frame_size=4, epochs=2, lr=1e-3, seed=0)


@pytest.fixture()
def device_group():
    """A four-device simulated group over the default NVLink interconnect."""
    return DeviceGroup(4)


@pytest.fixture()
def make_serving_engine(small_graph):
    """Factory for serving engines over ``small_graph`` (shared serving fixture).

    Keyword overrides go to :class:`ServingConfig`; ``model_name`` picks the
    DGNN model.  Consolidated here because the serving and distributed test
    modules all need the same graph + model + engine wiring.
    """

    def factory(*, model_name: str = "tgcn", **config_kwargs):
        defaults = dict(window=4, max_batch_requests=4, max_delay_ms=0.5)
        defaults.update(config_kwargs)
        model = build_model(model_name, small_graph.feature_dim, 8, seed=0)
        return build_serving_engine(small_graph, model, ServingConfig(**defaults))

    return factory


@pytest.fixture()
def make_snapshot_store(small_graph):
    """Factory for incremental snapshot stores seeded from ``small_graph``."""

    def factory(window: int = 4):
        return IncrementalSnapshotStore(small_graph, window=window)

    return factory


@pytest.fixture()
def reference_aggregation():
    """(X + A·X) / (deg + 1) — the first-layer mean aggregation, from scratch."""

    def compute(snapshot):
        adjacency = snapshot.adjacency
        degree = adjacency.row_nnz().astype(np.float32)
        return (snapshot.features + adjacency.matmul_dense(snapshot.features)) / (
            degree + 1.0
        )[:, None]

    return compute
