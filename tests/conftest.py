"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import TrainerConfig
from repro.graph import CSRMatrix, GeneratorConfig, generate_dynamic_graph
from repro.gpu import GPUSpec, SimulatedGPU


@pytest.fixture(scope="session")
def small_graph():
    """A small dynamic graph used throughout the trainer/model tests."""
    config = GeneratorConfig(
        num_nodes=60,
        avg_degree=3.0,
        feature_dim=4,
        num_snapshots=10,
        change_rate=0.15,
        topology="preferential",
        name="test-graph",
    )
    return generate_dynamic_graph(config, seed=7)


@pytest.fixture(scope="session")
def dense_feature_graph():
    """A graph with a larger feature dimension (vector-load code paths)."""
    config = GeneratorConfig(
        num_nodes=40,
        avg_degree=4.0,
        feature_dim=40,
        num_snapshots=8,
        change_rate=0.1,
        topology="community",
        name="test-dense",
    )
    return generate_dynamic_graph(config, seed=11)


@pytest.fixture()
def random_csr():
    """A deterministic random 30x30 CSR adjacency."""
    rng = np.random.default_rng(3)
    rows = rng.integers(0, 30, size=90)
    cols = rng.integers(0, 30, size=90)
    mask = rows != cols
    return CSRMatrix.from_edges(rows[mask], cols[mask], (30, 30))


@pytest.fixture()
def gpu_spec():
    return GPUSpec()


@pytest.fixture()
def device():
    return SimulatedGPU()


@pytest.fixture()
def trainer_config():
    return TrainerConfig(model="tgcn", frame_size=4, epochs=2, lr=1e-3, seed=0)
