"""Golden determinism: identical configs produce byte-identical timelines.

The cross-device scheduling of :mod:`repro.distributed` introduced a new
class of ordering decisions (collective synchronization points, per-device
fan-out).  These tests serialize the full timeline event sequence of a run
to bytes and require two runs of the same config to match exactly — any
hidden source of nondeterminism (dict/set iteration over devices, float
drift from a reordered reduction, id-based tie-breaking) shows up as a
one-byte diff.
"""

from __future__ import annotations

from repro.baselines import TrainerConfig
from repro.core import (
    DistributedConfig,
    DistributedTrainer,
    PiPADConfig,
    PiPADTrainer,
)
from repro.gpu import SimulatedGPU
from repro.nn import build_model
from repro.serving import ServingConfig, build_serving_engine, synthesize_serving_trace


def timeline_bytes(device: SimulatedGPU) -> bytes:
    """Canonical byte serialization of a device's full event sequence."""
    lines = []
    for op in device.timeline.ops:
        attrs = ",".join(f"{k}={op.attrs[k]!r}" for k in sorted(op.attrs))
        lines.append(
            f"{op.op_id}|{op.label}|{op.kind}|{op.resource}|{op.stream}"
            f"|{op.start!r}|{op.end!r}|{attrs}"
        )
    return "\n".join(lines).encode()


def train_pipad(small_graph):
    config = TrainerConfig(model="tgcn", frame_size=4, epochs=2, seed=0)
    trainer = PiPADTrainer(small_graph, config, PiPADConfig(preparing_epochs=1))
    trainer.train()
    return trainer


def train_distributed(small_graph):
    config = TrainerConfig(model="tgcn", frame_size=4, epochs=2, seed=0, cost_scale=100.0)
    trainer = DistributedTrainer(
        small_graph,
        config,
        PiPADConfig(preparing_epochs=1),
        DistributedConfig(num_devices=3),
    )
    trainer.train()
    return trainer


def serve_trace(small_graph):
    model = build_model("tgcn", small_graph.feature_dim, 8, seed=0)
    engine = build_serving_engine(
        small_graph,
        model,
        ServingConfig(window=4, max_batch_requests=4, max_delay_ms=0.5),
    )
    engine.run_trace(synthesize_serving_trace(small_graph[-1], 50, seed=9))
    return engine


class TestGoldenDeterminism:
    def test_trainer_timeline_is_byte_identical(self, small_graph):
        first = train_pipad(small_graph)
        second = train_pipad(small_graph)
        assert timeline_bytes(first.device) == timeline_bytes(second.device)
        assert len(first.device.timeline.ops) > 0

    def test_distributed_timelines_are_byte_identical_per_device(self, small_graph):
        first = train_distributed(small_graph)
        second = train_distributed(small_graph)
        for a, b in zip(first.group, second.group):
            blob_a, blob_b = timeline_bytes(a), timeline_bytes(b)
            assert blob_a == blob_b
            assert blob_a  # every device actually scheduled work
        # The devices agree on the collective schedule, not just internally.
        assert first.group.collective_seconds == second.group.collective_seconds

    def test_serving_timeline_is_byte_identical(self, small_graph):
        first = serve_trace(small_graph)
        second = serve_trace(small_graph)
        assert timeline_bytes(first.device) == timeline_bytes(second.device)
        assert first.metrics.num_requests == second.metrics.num_requests

    def test_different_config_changes_the_timeline(self, small_graph):
        """The signature is sensitive: a real scheduling change must show."""
        base = train_pipad(small_graph)
        config = TrainerConfig(model="tgcn", frame_size=4, epochs=2, seed=0)
        serial = PiPADTrainer(
            small_graph, config, PiPADConfig(preparing_epochs=1, enable_pipeline=False)
        )
        serial.train()
        assert timeline_bytes(base.device) != timeline_bytes(serial.device)
