"""Tests for repro.utils (rng, validation, timing)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils import (
    WallTimer,
    as_rng,
    check_array,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
    spawn_rngs,
)


class TestRng:
    def test_as_rng_from_int_is_deterministic(self):
        assert as_rng(42).integers(0, 100) == as_rng(42).integers(0, 100)

    def test_as_rng_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen

    def test_as_rng_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_rngs_count_and_independence(self):
        children = spawn_rngs(5, 3)
        assert len(children) == 3
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_rngs_deterministic(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(5, 2)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(5, 2)]
        assert a == b

    def test_spawn_rngs_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive_accepts(self):
        check_positive("x", 1)

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_in_range_inclusive(self):
        check_in_range("x", 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)

    def test_check_type(self):
        check_type("x", 3, int)
        with pytest.raises(TypeError):
            check_type("x", 3, str)

    def test_check_array_ndim(self):
        arr = check_array("x", [[1.0, 2.0]], ndim=2)
        assert arr.shape == (1, 2)
        with pytest.raises(ValueError):
            check_array("x", [1.0], ndim=2)

    def test_check_array_dtype_kind(self):
        check_array("x", np.zeros(3, dtype=np.float32), dtype_kind="f")
        with pytest.raises(ValueError):
            check_array("x", np.zeros(3, dtype=np.int64), dtype_kind="f")

    def test_check_array_shape_wildcards(self):
        check_array("x", np.zeros((2, 5)), shape=(None, 5))
        with pytest.raises(ValueError):
            check_array("x", np.zeros((2, 5)), shape=(None, 4))


class TestWallTimer:
    def test_measure_accumulates(self):
        timer = WallTimer()
        with timer.measure("work"):
            time.sleep(0.01)
        assert timer.total("work") >= 0.005
        assert timer.counts["work"] == 1

    def test_add_and_grand_total(self):
        timer = WallTimer()
        timer.add("a", 1.0)
        timer.add("a", 0.5)
        timer.add("b", 2.0)
        assert timer.total("a") == pytest.approx(1.5)
        assert timer.grand_total() == pytest.approx(3.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            WallTimer().add("a", -1.0)

    def test_unknown_name_total_zero(self):
        assert WallTimer().total("missing") == 0.0
