"""Memory-watermark checker: replayed budgets, tier capacity, HBM peaks."""

from __future__ import annotations

from types import SimpleNamespace

from repro.analysis import ExecutionArtifacts
from repro.analysis.watermark import check_memory_watermark
from repro.gpu import Timeline
from repro.memory import TIER_PINNED, FeatureCache

MIB = 1024.0 * 1024.0


def pin_and_transfer(timeline, *, acquire, budget, tier_used=0.0,
                     transfer_duration=5.0):
    pin = timeline.submit(
        label="pin", kind="cpu", resource="cpu", duration=1.0, stream="prep"
    )
    pin.attrs["pinned_acquire_bytes"] = acquire
    pin.attrs["pinned_tier_used_bytes"] = tier_used
    pin.attrs["pinned_budget_bytes"] = budget
    h2d = timeline.submit(
        label="h2d", kind="h2d", resource="pcie_h2d",
        duration=transfer_duration, stream="copy", depends_on=[pin],
    )
    h2d.attrs["pinned_release_bytes"] = acquire
    return pin, h2d


class TestPinnedReplay:
    def test_overlapping_staging_over_budget_fires(self):
        # Two 600 MiB staging buffers live at once against a 1000 MiB
        # budget: the overshoot ROADMAP item 3 described, seeded directly.
        timeline = Timeline()
        pin_and_transfer(timeline, acquire=600 * MIB, budget=1000 * MIB)
        pin_and_transfer(timeline, acquire=600 * MIB, budget=1000 * MIB)
        violations = check_memory_watermark(
            ExecutionArtifacts(timelines=[("gpu0", "train", timeline)])
        )
        assert len(violations) == 1
        v = violations[0]
        assert v.check == "memory-watermark"
        assert "pinned watermark 1200.0 MiB" in v.message
        assert "raise memory.pinned_budget_mb" in v.message
        assert v.source == "gpu0" and v.time > 0.0

    def test_within_budget_is_clean(self):
        timeline = Timeline()
        pin_and_transfer(timeline, acquire=600 * MIB, budget=1300 * MIB)
        pin_and_transfer(timeline, acquire=600 * MIB, budget=1300 * MIB)
        assert check_memory_watermark(
            ExecutionArtifacts(timelines=[("gpu0", "train", timeline)])
        ) == []

    def test_release_frees_room_for_later_pins(self):
        # Sequential staging (transfer done before the next pin) never
        # stacks: budget equal to one buffer passes.
        timeline = Timeline()
        _, h2d = pin_and_transfer(
            timeline, acquire=600 * MIB, budget=600 * MIB, transfer_duration=0.5
        )
        pin2 = timeline.submit(
            label="pin", kind="cpu", resource="cpu", duration=1.0,
            stream="prep", depends_on=[h2d],
        )
        pin2.attrs["pinned_acquire_bytes"] = 600 * MIB
        pin2.attrs["pinned_tier_used_bytes"] = 0.0
        pin2.attrs["pinned_budget_bytes"] = 600 * MIB
        assert check_memory_watermark(
            ExecutionArtifacts(timelines=[("gpu0", "train", timeline)])
        ) == []

    def test_tier_residency_counts_against_budget(self):
        # 300 MiB of resident pinned rows + 800 MiB staging > 1000 MiB.
        timeline = Timeline()
        pin_and_transfer(
            timeline, acquire=800 * MIB, budget=1000 * MIB, tier_used=300 * MIB
        )
        violations = check_memory_watermark(
            ExecutionArtifacts(timelines=[("gpu0", "train", timeline)])
        )
        assert len(violations) == 1

    def test_unannotated_timeline_is_skipped(self):
        timeline = Timeline()
        timeline.submit(label="k", kind="kernel", resource="compute",
                        duration=1.0)
        assert check_memory_watermark(
            ExecutionArtifacts(timelines=[("gpu0", "train", timeline)])
        ) == []


class TestCacheTiers:
    def test_reservation_overcommit_fires(self):
        cache = FeatureCache(gpu_budget_bytes=100, pinned_budget_bytes=100)
        cache.tiers[TIER_PINNED].reserved_bytes = 200.0
        violations = check_memory_watermark(
            ExecutionArtifacts(caches=[("gpu0", "train", cache)])
        )
        assert any("residency + reservations" in v.message for v in violations)

    def test_recorded_peak_over_budget_fires(self):
        cache = FeatureCache(gpu_budget_bytes=100, pinned_budget_bytes=100)
        cache.peak_pinned_bytes = 150.0
        violations = check_memory_watermark(
            ExecutionArtifacts(caches=[("gpu0", "train", cache)])
        )
        assert len(violations) == 1
        assert "peak pinned bytes" in violations[0].message

    def test_reserve_staging_never_overcommits(self):
        # The production API itself cannot overshoot: requests are clamped
        # to the bounce-buffer room actually available.
        cache = FeatureCache(gpu_budget_bytes=0, pinned_budget_bytes=1000)
        first = cache.reserve_staging(700.0)
        second = cache.reserve_staging(700.0)
        assert first == 700.0 and second == 300.0
        assert cache.peak_pinned_bytes <= 1000.0
        assert check_memory_watermark(
            ExecutionArtifacts(caches=[("gpu0", "train", cache)])
        ) == []
        cache.release_staging(first)
        cache.release_staging(second)
        assert cache.tiers[TIER_PINNED].reserved_bytes == 0.0


class TestDeviceHBM:
    def fake_device(self, peak, capacity):
        return SimpleNamespace(
            peak_bytes=peak,
            spec=SimpleNamespace(memory_bytes=capacity, name="FakeGPU"),
        )

    def test_peak_over_capacity_fires(self):
        device = self.fake_device(peak=2 * 1024**3, capacity=1 * 1024**3)
        violations = check_memory_watermark(
            ExecutionArtifacts(devices=[("gpu0", "train", device)])
        )
        assert len(violations) == 1
        assert "peak HBM allocation" in violations[0].message
        assert "FakeGPU" in violations[0].message

    def test_peak_within_capacity_is_clean(self):
        device = self.fake_device(peak=1 * 1024**3, capacity=2 * 1024**3)
        assert check_memory_watermark(
            ExecutionArtifacts(devices=[("gpu0", "train", device)])
        ) == []

    def test_shapeless_devices_are_skipped(self):
        assert check_memory_watermark(
            ExecutionArtifacts(devices=[("gpu0", "train", object())])
        ) == []
