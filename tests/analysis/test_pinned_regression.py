"""Regression: in-flight prefetch staging is charged against pinned_budget_mb.

Before the fix the Prefetcher staged transfer buffers in pinned memory
without charging the pinned tier, so ``prefetch_depth`` in-flight buffers
could overshoot ``memory.pinned_budget_mb`` unobserved (ROADMAP item 3).
These tests run the real engine and let the sanitizer pin the invariant.
"""

from __future__ import annotations

import pytest

from repro.api import Engine, RunSpec
from repro.memory import TIER_PINNED


def cached_spec(**overrides):
    data = {
        "dataset": "covid19_england",
        "model": "tgcn",
        "method": "pipad",
        "num_snapshots": 10,
        "frame_size": 6,
        "epochs": 2,
        "memory": {
            "feature_cache": True,
            "gpu_budget_mb": 0.05,
            "pinned_budget_mb": 0.05,
            "block_rows": 32,
        },
        "data": {"pipeline": "staged", "prefetch_depth": 3, "pin_memory": True},
        "analysis": {"enabled": True},
    }
    data.update(overrides)
    return RunSpec.from_dict(data)


class TestPinnedStagingCharge:
    def test_peak_pinned_never_exceeds_budget(self):
        engine = Engine.from_spec(cached_spec())
        engine.train()
        cache = engine.trainer.feature_cache
        capacity = cache.tiers[TIER_PINNED].capacity_bytes
        assert capacity is not None and capacity > 0
        # Staging actually flowed through the tier...
        assert cache.peak_pinned_bytes > 0.0
        # ...and the high-water mark respected the declared budget.
        assert cache.peak_pinned_bytes <= capacity * (1 + 1e-9)

    def test_sanitizer_passes_on_cached_run(self):
        engine = Engine.from_spec(cached_spec())
        report = engine.run()
        analysis = report.extras["analysis"]
        assert analysis["num_errors"] == 0
        assert "memory-watermark" in analysis["checks"]

    def test_staging_reservations_fully_drain_or_stay_bounded(self):
        engine = Engine.from_spec(cached_spec())
        engine.train()
        cache = engine.trainer.feature_cache
        tier = cache.tiers[TIER_PINNED]
        # Residency plus whatever staging is still in flight at the end of
        # the run must sit inside the tier capacity (the invariant the old
        # code violated).
        assert tier.used_bytes + tier.reserved_bytes <= tier.capacity_bytes * (
            1 + 1e-9
        )

    def test_prefetch_depth_scales_staging_pressure(self):
        shallow = Engine.from_spec(cached_spec(
            data={"pipeline": "staged", "prefetch_depth": 0,
                  "pin_memory": True},
        ))
        shallow.train()
        deep = Engine.from_spec(cached_spec())
        deep.train()
        shallow_peak = shallow.trainer.feature_cache.peak_pinned_bytes
        deep_peak = deep.trainer.feature_cache.peak_pinned_bytes
        assert deep_peak >= shallow_peak > 0.0
