"""Collective lint: seeded skews deadlock-check, clean groups pass."""

from __future__ import annotations

import pytest

from repro.analysis import ExecutionArtifacts
from repro.analysis.collectives import (
    check_collective_match,
    check_p2p_pairing,
    check_pipeline_order,
)
from repro.gpu import DeviceGroup


def artifacts_of(group: DeviceGroup) -> ExecutionArtifacts:
    return ExecutionArtifacts(groups=[("gpu", "train", group)])


def seed_collective(group, rank, *, label="all_reduce", kind="all_reduce",
                    nbytes=1024.0):
    """Inject a group collective on a single rank (skewing the program)."""
    return group.devices[rank].timeline.submit(
        label=label,
        kind="collective",
        resource="peer_link",
        duration=1e-5,
        stream="comm",
        attrs={"collective": kind, "bytes": float(nbytes)},
    )


def seed_p2p(group, rank, *, label, peer, nbytes=1024.0):
    return group.devices[rank].timeline.submit(
        label=label,
        kind="collective",
        resource="peer_link",
        duration=1e-5,
        stream="comm",
        attrs={"collective": "peer_transfer", "bytes": float(nbytes),
               "peer": peer},
    )


@pytest.fixture
def group():
    return DeviceGroup(2)


class TestCollectiveMatch:
    def test_real_collectives_are_clean(self, group):
        group.all_reduce(4096.0)
        group.all_gather(2048.0)
        group.halo_exchange([100.0, 300.0])
        assert check_collective_match(artifacts_of(group)) == []

    def test_count_skew_reports_deadlock(self, group):
        group.all_reduce(4096.0)
        seed_collective(group, 1)  # rank 1 issues one extra call
        violations = check_collective_match(artifacts_of(group))
        assert len(violations) == 1
        v = violations[0]
        assert v.check == "collective-match"
        assert "rank 0 issued 1" in v.message and "rank 1 issued 2" in v.message
        assert "block forever" in v.message

    def test_kind_skew_reports_mismatch(self, group):
        seed_collective(group, 0, kind="all_reduce")
        seed_collective(group, 1, kind="all_gather", label="all_gather")
        violations = check_collective_match(artifacts_of(group))
        assert len(violations) == 1
        assert "deadlock the communicator" in violations[0].message
        assert "rank 0: all_reduce" in violations[0].message

    def test_byte_skew_reports_corruption(self, group):
        seed_collective(group, 0, nbytes=1024.0)
        seed_collective(group, 1, nbytes=2048.0)
        violations = check_collective_match(artifacts_of(group))
        assert len(violations) == 1
        assert "mismatched byte counts" in violations[0].message


class TestP2PPairing:
    def test_real_send_recv_is_clean(self, group):
        group.send(0, 1, 1024.0, label="frame")
        assert check_p2p_pairing(artifacts_of(group)) == []

    def test_send_without_recv_blocks_forever(self, group):
        seed_p2p(group, 0, label="frame_send", peer=1)
        violations = check_p2p_pairing(artifacts_of(group))
        assert len(violations) == 1
        v = violations[0]
        assert v.check == "p2p-pairing"
        assert "no matching recv" in v.message and "rank 0 blocks forever" in v.message

    def test_recv_without_send_blocks_forever(self, group):
        seed_p2p(group, 1, label="frame_recv", peer=0)
        violations = check_p2p_pairing(artifacts_of(group))
        assert len(violations) == 1
        assert "no matching send" in violations[0].message

    def test_out_of_order_channel_deadlocks(self, group):
        seed_p2p(group, 0, label="a_send", peer=1)
        seed_p2p(group, 0, label="b_send", peer=1)
        seed_p2p(group, 1, label="b_recv", peer=0)
        seed_p2p(group, 1, label="a_recv", peer=0)
        violations = check_p2p_pairing(artifacts_of(group))
        assert len(violations) == 2
        assert all("out-of-order" in v.message for v in violations)

    def test_byte_disagreement_reported(self, group):
        seed_p2p(group, 0, label="frame_send", peer=1, nbytes=1024.0)
        seed_p2p(group, 1, label="frame_recv", peer=0, nbytes=512.0)
        violations = check_p2p_pairing(artifacts_of(group))
        assert len(violations) == 1
        assert "disagrees on bytes" in violations[0].message


class TestPipelineOrder:
    def test_decreasing_gradient_chain_is_clean(self, group):
        for label in ("grad_p2_recv", "grad_p1_recv", "grad_p0_recv"):
            seed_p2p(group, 0, label=label, peer=1)
        assert check_pipeline_order(artifacts_of(group)) == []

    def test_increasing_hop_violates_1f1b(self, group):
        seed_p2p(group, 0, label="grad_p1_send", peer=1)
        seed_p2p(group, 0, label="grad_p2_send", peer=1)
        violations = check_pipeline_order(artifacts_of(group))
        assert len(violations) == 1
        v = violations[0]
        assert v.check == "pipeline-order"
        assert "strictly decreasing" in v.message
        assert "'grad_p2_send'" in v.message

    def test_grad_all_reduce_delimits_backward_passes(self, group):
        # p1 then (new pass) p2: fine once the all-reduce resets the walk.
        seed_p2p(group, 0, label="grad_p1_send", peer=1)
        seed_collective(group, 0, label="grad_all_reduce")
        seed_p2p(group, 0, label="grad_p2_send", peer=1)
        assert check_pipeline_order(artifacts_of(group)) == []

    def test_non_gradient_labels_ignored(self, group):
        seed_p2p(group, 0, label="state_t3_send", peer=1)
        seed_p2p(group, 0, label="state_t4_send", peer=1)
        assert check_pipeline_order(artifacts_of(group)) == []
