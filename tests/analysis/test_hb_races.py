"""Happens-before race detection: seeded races fire, ordered schedules pass."""

from __future__ import annotations

from repro.analysis import ExecutionArtifacts
from repro.analysis.hb import MAX_RACES_REPORTED, check_hb_races
from repro.gpu import Timeline


def artifacts_of(*timelines: Timeline) -> ExecutionArtifacts:
    return ExecutionArtifacts(
        timelines=[(f"gpu{i}", "train", t) for i, t in enumerate(timelines)]
    )


def submit(timeline, label, *, resource, stream, duration=1.0, deps=None,
           reads=(), writes=()):
    op = timeline.submit(
        label=label,
        kind="cpu" if resource == "cpu" else "h2d",
        resource=resource,
        duration=duration,
        stream=stream,
        depends_on=deps,
    )
    if reads:
        op.attrs["hb_reads"] = list(reads)
    if writes:
        op.attrs["hb_writes"] = list(writes)
    return op


class TestSeededRaces:
    def test_unordered_write_read_races(self):
        # A dropped dependency edge: the h2d copy reads the staging buffer
        # the pin stage writes, with nothing serializing the two.
        timeline = Timeline()
        submit(timeline, "pin", resource="cpu", stream="prep",
               writes=["staging:0"])
        submit(timeline, "h2d", resource="pcie_h2d", stream="copy",
               reads=["staging:0"])
        violations = check_hb_races(artifacts_of(timeline))
        assert len(violations) == 1
        v = violations[0]
        assert v.check == "hb-race" and v.severity == "error"
        assert "'pin'" in v.message and "'h2d'" in v.message
        assert "staging:0" in v.message
        assert "add a dependency edge" in v.message
        assert v.source == "gpu0" and v.domain == "train"

    def test_unordered_write_write_races(self):
        timeline = Timeline()
        submit(timeline, "delta", resource="cpu", stream="ingest",
               writes=["block:3"])
        submit(timeline, "gather", resource="pcie_h2d", stream="copy",
               writes=["block:3"])
        violations = check_hb_races(artifacts_of(timeline))
        assert len(violations) == 1

    def test_dependency_edge_orders_the_pair(self):
        timeline = Timeline()
        pin = submit(timeline, "pin", resource="cpu", stream="prep",
                     writes=["staging:0"])
        submit(timeline, "h2d", resource="pcie_h2d", stream="copy",
               deps=[pin], reads=["staging:0"])
        assert check_hb_races(artifacts_of(timeline)) == []

    def test_shared_stream_orders_the_pair(self):
        timeline = Timeline()
        submit(timeline, "pin", resource="cpu", stream="s",
               writes=["staging:0"])
        submit(timeline, "h2d", resource="pcie_h2d", stream="s",
               reads=["staging:0"])
        assert check_hb_races(artifacts_of(timeline)) == []

    def test_resource_fifo_orders_the_pair(self):
        timeline = Timeline()
        submit(timeline, "a", resource="cpu", stream="s1", writes=["k"])
        submit(timeline, "b", resource="cpu", stream="s2", reads=["k"])
        assert check_hb_races(artifacts_of(timeline)) == []

    def test_transitive_ordering_found(self):
        # a -> mid via stream, mid -> c via dependency: a and c are ordered
        # even though no direct edge joins them.
        timeline = Timeline()
        a = submit(timeline, "a", resource="cpu", stream="s", writes=["k"])
        mid = submit(timeline, "mid", resource="pcie_h2d", stream="s")
        assert a is not mid
        submit(timeline, "c", resource="pcie_d2h", stream="other",
               deps=[mid], reads=["k"])
        assert check_hb_races(artifacts_of(timeline)) == []

    def test_readers_only_never_race(self):
        timeline = Timeline()
        submit(timeline, "r1", resource="cpu", stream="s1", reads=["k"])
        submit(timeline, "r2", resource="pcie_h2d", stream="s2", reads=["k"])
        assert check_hb_races(artifacts_of(timeline)) == []

    def test_keys_are_scoped_per_timeline(self):
        # The same block id on two devices' caches is two different blocks.
        t0, t1 = Timeline(), Timeline()
        submit(t0, "w", resource="cpu", stream="s", writes=["block:0"])
        submit(t1, "r", resource="cpu", stream="s", reads=["block:0"])
        assert check_hb_races(artifacts_of(t0, t1)) == []

    def test_cross_timeline_dependency_edges_order(self):
        # p2p-style edge: the recv on t1 depends on the send on t0; an op
        # gated behind the recv is ordered after everything before the send.
        t0, t1 = Timeline(), Timeline()
        send = submit(t0, "send", resource="cpu", stream="comm")
        recv = submit(t1, "recv", resource="cpu", stream="comm", deps=[send])
        assert recv.deps == (send.uid,)

    def test_flood_reports_digest_after_cap(self):
        timeline = Timeline()
        for i in range(30):
            # Unique resource+stream per op: nothing serializes anything.
            submit(timeline, f"w{i}", resource=f"r{i}", stream=f"s{i}",
                   writes=["k"])
        violations = check_hb_races(artifacts_of(timeline))
        assert len(violations) == MAX_RACES_REPORTED + 1
        assert "stopped after" in violations[-1].message
