"""End-to-end sanitizer wiring: Engine.sanitize, RunReport extras, CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    AnalysisError,
    CHECK_REGISTRY,
    FAMILY_STATIC,
    Violation,
    register_check,
)
from repro.api import Engine, RunReport, RunSpec
from repro.api.cli import PRESETS, load_spec, main

QUICK = {
    "dataset": "covid19_england",
    "model": "tgcn",
    "method": "pipad",
    "num_snapshots": 10,
    "frame_size": 6,
    "epochs": 2,
}


def quick_spec(**overrides):
    data = dict(QUICK)
    data.update(overrides)
    return RunSpec.from_dict(data)


@pytest.fixture
def failing_check():
    """A temporary always-firing static check, removed on teardown."""
    name = "test-seeded-failure"
    register_check(
        name,
        FAMILY_STATIC,
        "seeded failure for wiring tests",
        lambda spec, artifacts: [
            Violation(check=name, message="seeded violation", time=0.5)
        ],
    )
    yield name
    CHECK_REGISTRY.pop(name)


class TestEngineSanitize:
    def test_sanitized_run_reports_clean(self):
        engine = Engine.from_spec(quick_spec(analysis={"enabled": True}))
        report = engine.run()
        analysis = report.extras["analysis"]
        assert analysis["num_errors"] == 0
        assert set(analysis["checks"]) == set(CHECK_REGISTRY)
        assert report.metrics["analysis.num_errors"] == 0.0
        assert "analysis:" in report.format()

    def test_sanitize_respects_check_selection(self):
        engine = Engine.from_spec(
            quick_spec(analysis={"enabled": True,
                                 "checks": ["memory-watermark"]})
        )
        report = engine.run()
        assert report.extras["analysis"]["checks"] == ["memory-watermark"]

    def test_extras_round_trip_and_rehydration(self):
        engine = Engine.from_spec(quick_spec(analysis={"enabled": True}))
        report = engine.run()
        restored = RunReport.from_json(report.to_json())
        assert restored.extras == report.extras
        analysis = restored.analysis
        assert analysis is not None and analysis.ok

    def test_unsanitized_run_has_no_analysis(self):
        engine = Engine.from_spec(quick_spec())
        report = engine.run()
        assert "analysis" not in report.extras
        assert report.analysis is None

    def test_violations_fail_the_run(self, failing_check):
        spec = quick_spec(
            analysis={"enabled": True, "checks": [failing_check]}
        )
        with pytest.raises(AnalysisError, match="seeded violation"):
            Engine.from_spec(spec).run()

    def test_fail_on_violation_false_keeps_the_report(self, failing_check):
        spec = quick_spec(
            analysis={
                "enabled": True,
                "checks": [failing_check],
                "fail_on_violation": False,
            }
        )
        report = Engine.from_spec(spec).run()
        assert report.extras["analysis"]["num_errors"] == 1

    def test_violations_export_as_trace_instant_events(
        self, failing_check, tmp_path
    ):
        trace_path = tmp_path / "trace.json"
        spec = quick_spec(
            analysis={
                "enabled": True,
                "checks": [failing_check],
                "fail_on_violation": False,
            },
            telemetry={"enabled": True, "trace_path": str(trace_path)},
        )
        Engine.from_spec(spec).run()
        document = json.loads(trace_path.read_text())
        instants = [
            e for e in document["traceEvents"] if e.get("cat") == "violation"
        ]
        assert len(instants) == 1
        event = instants[0]
        assert event["ph"] == "i" and event["s"] == "g"
        assert event["name"] == f"violation:{failing_check}"
        assert event["args"]["message"] == "seeded violation"
        assert "dur" not in event


class TestCLI:
    def test_check_clean_spec_exits_zero(self, capsys):
        assert main(["check", "quick"]) == 0
        out = capsys.readouterr().out
        assert "clean: no violations" in out

    def test_check_violating_spec_exits_three(self, capsys):
        code = main([
            "check", "quick",
            "--set", "telemetry.enabled=False",
            "--set", "telemetry.trace_path=/tmp/x.json",
        ])
        assert code == 3
        assert "spec-telemetry-paths" in capsys.readouterr().out

    def test_check_json_output(self, capsys):
        assert main(["check", "quick", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_errors"] == 0 and payload["violations"] == []

    def test_check_honors_analysis_checks_override(self, capsys):
        code = main([
            "check", "quick",
            "--set", 'analysis.checks=["spec-dead-memory"]',
        ])
        assert code == 0
        assert "1 check(s)" in capsys.readouterr().out

    def test_unknown_check_override_exits_two(self, capsys):
        code = main(["check", "quick", "--set", 'analysis.checks=["nope"]'])
        assert code == 2
        assert "unknown analysis check" in capsys.readouterr().err

    def test_set_coerces_analysis_enabled(self):
        spec = load_spec("quick", ["analysis.enabled=True"])
        assert spec.analysis.enabled is True
        spec = load_spec("quick", ['analysis.checks=["hb-race"]'])
        assert spec.analysis.checks == ("hb-race",)

    def test_run_sanitize_flag(self, capsys):
        assert main(["run", "quick", "--sanitize"]) == 0
        assert "analysis: " in capsys.readouterr().out

    def test_run_sanitize_failure_exits_three(self, failing_check, capsys):
        code = main([
            "run", "quick",
            "--sanitize",
            "--set", f'analysis.checks=["{failing_check}"]',
        ])
        assert code == 3
        assert "seeded violation" in capsys.readouterr().err

    def test_list_shows_analysis_catalog(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "analysis_checks:" in out
        assert "hb-race" in out and "spec-pinned-staging" in out


class TestCleanSweep:
    """Every shipped spec and preset passes the static lint clean."""

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_presets_lint_clean(self, preset, capsys):
        assert main(["check", preset]) == 0

    def test_spec_files_lint_clean(self, capsys):
        from pathlib import Path

        spec_dir = Path(__file__).resolve().parents[2] / "specs"
        paths = sorted(spec_dir.glob("*.json"))
        assert paths, "specs/ directory should ship example specs"
        for path in paths:
            assert main(["check", str(path)]) == 0, path.name
