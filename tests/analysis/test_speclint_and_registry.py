"""Static spec lint rules and the check registry/runner machinery."""

from __future__ import annotations

import pytest

from repro.analysis import (
    CHECK_REGISTRY,
    FAMILY_EXECUTION,
    FAMILY_STATIC,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Violation,
    register_check,
    resolve_checks,
    run_checks,
    static_checks,
)
from repro.api import AnalysisSpec, RunSpec


def make_spec(**overrides):
    base = {"dataset": "covid19_england", "model": "tgcn", "method": "pipad"}
    base.update(overrides)
    return RunSpec.from_dict(base)


SERVING = {
    "kind": "local",
    "window": 4,
    "max_batch_requests": 4,
    "max_delay_ms": 1.0,
    "trace": {"num_events": 10},
}


def fired(spec, check):
    return [v for v in run_checks(spec).violations if v.check == check]


class TestSpecLintRules:
    def test_default_spec_is_clean(self):
        report = run_checks(make_spec())
        assert report.ok and not report.violations

    def test_pinned_staging_floor(self):
        spec = make_spec(
            memory={"feature_cache": True, "pinned_budget_mb": 0.0},
            data={"pin_memory": True, "prefetch_depth": 2},
        )
        (violation,) = fired(spec, "spec-pinned-staging")
        assert "pinned_budget_mb" in violation.message
        assert "prefetch" in violation.message

    def test_fleet_admission_starvation(self):
        serving = dict(SERVING, kind="fleet", num_shards=2,
                       max_batch_requests=32, admission_limit=16)
        spec = make_spec(serving=serving)
        (violation,) = fired(spec, "spec-fleet-admission")
        assert "sheds requests" in violation.message

    def test_dead_memory_knobs_warn(self):
        spec = make_spec(memory={"feature_cache": False, "gpu_budget_mb": 512.0})
        (violation,) = fired(spec, "spec-dead-memory")
        assert violation.severity == SEVERITY_WARNING
        assert "memory.gpu_budget_mb" in violation.message

    def test_telemetry_paths_without_telemetry(self):
        spec = make_spec(
            telemetry={"enabled": False, "trace_path": "/tmp/x.json"}
        )
        (violation,) = fired(spec, "spec-telemetry-paths")
        assert "telemetry.trace_path" in violation.message

    def test_fixed_partition_exceeding_frame(self):
        spec = make_spec(frame_size=8, pipad={"fixed_s_per": 12})
        (violation,) = fired(spec, "spec-partitioning")
        assert "fixed_s_per" in violation.message

    def test_serving_partition_exceeding_window(self):
        spec = make_spec(serving=dict(SERVING, fixed_s_per=6, window=4))
        (violation,) = fired(spec, "spec-partitioning")
        assert "serving.window" in violation.message

    def test_window_exceeding_snapshot_stream(self):
        spec = make_spec(num_snapshots=10, serving=dict(SERVING, window=64))
        (violation,) = fired(spec, "spec-serving-window")
        assert "num_snapshots" in violation.message

    def test_prefetch_depth_under_disabled_pipeline(self):
        spec = make_spec(
            pipad={"enable_pipeline": False},
            data={"prefetch_depth": 2},
        )
        (violation,) = fired(spec, "spec-prefetch-pipeline")
        assert violation.severity == SEVERITY_WARNING
        assert "enable_pipeline" in violation.message


class TestRegistry:
    def test_catalog_covers_both_families(self):
        families = {info.family for info in CHECK_REGISTRY.values()}
        assert families == {FAMILY_STATIC, FAMILY_EXECUTION}
        assert set(static_checks()) == {
            name
            for name, info in CHECK_REGISTRY.items()
            if info.family == FAMILY_STATIC
        }

    def test_resolve_defaults_to_all(self):
        assert resolve_checks(None) == tuple(CHECK_REGISTRY)
        assert resolve_checks(()) == tuple(CHECK_REGISTRY)

    def test_resolve_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown analysis check"):
            resolve_checks(["hb-race", "not-a-check"])

    def test_resolve_deduplicates_preserving_order(self):
        assert resolve_checks(["hb-race", "hb-race", "spec-dead-memory"]) == (
            "hb-race",
            "spec-dead-memory",
        )

    def test_register_rejects_duplicates_and_bad_family(self):
        with pytest.raises(ValueError, match="already registered"):
            register_check("hb-race", FAMILY_STATIC, "dup", lambda s, a: [])
        with pytest.raises(ValueError, match="family must be"):
            register_check("x", "dynamic", "bad", lambda s, a: [])

    def test_run_checks_without_artifacts_is_static_only(self):
        report = run_checks(make_spec())
        assert set(report.checks) == set(static_checks())

    def test_run_checks_honors_selection(self):
        report = run_checks(make_spec(), checks=["spec-dead-memory"])
        assert report.checks == ("spec-dead-memory",)

    def test_registered_check_participates(self):
        name = "test-always-fires"
        register_check(
            name,
            FAMILY_STATIC,
            "test fixture",
            lambda spec, artifacts: [Violation(check=name, message="boom")],
        )
        try:
            report = run_checks(make_spec(), checks=[name])
            assert not report.ok
            assert report.by_check(name)[0].message == "boom"
        finally:
            CHECK_REGISTRY.pop(name)


class TestAnalysisSpec:
    def test_defaults(self):
        spec = AnalysisSpec()
        assert not spec.enabled and spec.checks == ()
        assert spec.fail_on_violation

    def test_checks_coerce_to_tuple(self):
        spec = AnalysisSpec.from_dict({"checks": ["hb-race"]})
        assert spec.checks == ("hb-race",)

    def test_unknown_check_rejected_at_spec_level(self):
        with pytest.raises(ValueError, match="unknown analysis check"):
            AnalysisSpec(checks=("no-such-check",))

    def test_runspec_nests_and_round_trips(self):
        spec = make_spec(
            analysis={"enabled": True, "checks": ["memory-watermark"]}
        )
        assert spec.analysis.enabled
        assert spec.analysis.checks == ("memory-watermark",)
        restored = RunSpec.from_dict(spec.to_dict())
        assert restored.analysis == spec.analysis

    def test_violation_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            Violation(check="x", message="y", severity="fatal")
        assert Violation(check="x", message="y").severity == SEVERITY_ERROR
