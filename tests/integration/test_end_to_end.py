"""Integration tests: training convergence, cross-method agreement, paper shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import TrainerConfig, make_trainer
from repro.core import PiPADConfig, PiPADTrainer
from repro.graph import load_dataset


@pytest.fixture(scope="module")
def covid_graph():
    return load_dataset("covid19_england", seed=0, num_snapshots=10)


class TestConvergence:
    def test_loss_decreases_over_epochs(self, covid_graph):
        config = TrainerConfig(model="tgcn", frame_size=5, epochs=6, lr=5e-3)
        result = make_trainer("pygt", covid_graph, config).train()
        curve = result.loss_curve()
        assert curve[-1] < curve[0]

    def test_pipad_training_converges_identically(self, covid_graph):
        config = TrainerConfig(model="mpnn_lstm", frame_size=5, epochs=4, lr=5e-3)
        baseline = make_trainer("pygt", covid_graph, config).train()
        pipad = make_trainer(
            "pipad", covid_graph, config, pipad_config=PiPADConfig(preparing_epochs=1)
        ).train()
        np.testing.assert_allclose(baseline.loss_curve(), pipad.loss_curve(), rtol=1e-3)


class TestPaperShapes:
    @pytest.mark.parametrize("model", ["tgcn", "evolvegcn", "mpnn_lstm"])
    def test_pipad_fastest_on_small_dataset(self, covid_graph, model):
        config = TrainerConfig(model=model, frame_size=5, epochs=3)
        times = {}
        for method in ("pygt", "pygt-g", "pipad"):
            kwargs = {"pipad_config": PiPADConfig(preparing_epochs=1)} if method == "pipad" else {}
            times[method] = make_trainer(method, covid_graph, config, **kwargs).train().steady_epoch_seconds
        assert times["pipad"] < times["pygt-g"] <= times["pygt"] * 1.05
        assert times["pygt"] / times["pipad"] > 1.5

    def test_speedup_band_matches_paper_range(self, covid_graph):
        """End-to-end speedup falls in (or above) the paper's 1.22x–9.57x band."""
        config = TrainerConfig(model="tgcn", frame_size=5, epochs=3)
        baseline = make_trainer("pygt", covid_graph, config).train()
        pipad = make_trainer(
            "pipad", covid_graph, config, pipad_config=PiPADConfig(preparing_epochs=1)
        ).train()
        speedup = baseline.steady_epoch_seconds / pipad.steady_epoch_seconds
        assert speedup > 1.22

    def test_large_dataset_transfer_dominates_pygt(self):
        graph = load_dataset("flickr", seed=0, num_snapshots=8)
        config = TrainerConfig(model="evolvegcn", frame_size=5, epochs=2)
        result = make_trainer("pygt", graph, config).train()
        transfer_fraction = result.breakdown.get("h2d", 0.0) / result.simulated_seconds
        assert transfer_fraction > 0.2  # the Fig. 3 observation (≈39 % on average)

    def test_large_dataset_limited_parallelism(self):
        graph = load_dataset("flickr", seed=0, num_snapshots=8)
        config = TrainerConfig(model="evolvegcn", frame_size=5, epochs=2)
        trainer = PiPADTrainer(graph, config, PiPADConfig(preparing_epochs=1))
        trainer.train()
        assert max(trainer.chosen_s_per().values()) <= 2

    def test_whole_run_time_lower_for_pipad_despite_preparing_epoch(self, covid_graph):
        """Even counting the canonical-mode preparing epoch, the whole PiPAD run
        finishes earlier than PyGT-G on the simulated device."""
        config = TrainerConfig(model="evolvegcn", frame_size=5, epochs=3)
        pygt_g = make_trainer("pygt-g", covid_graph, config).train()
        pipad = make_trainer(
            "pipad", covid_graph, config, pipad_config=PiPADConfig(preparing_epochs=1)
        ).train()
        assert pipad.simulated_seconds < pygt_g.simulated_seconds
