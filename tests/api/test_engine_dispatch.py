"""Engine dispatch: every method/topology/serving combination resolves to the
expected class, and the unified path is numerically identical to the old
hand-wired entry points (bit-identical losses)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import DeviceSpec, Engine, RunSpec, ServingSpec, TraceSpec
from repro.baselines import (
    PyGTAsyncTrainer,
    PyGTGeSpMMTrainer,
    PyGTReuseTrainer,
    PyGTTrainer,
    TrainerConfig,
    make_trainer,
)
from repro.core import (
    DistributedConfig,
    DistributedTrainer,
    PiPADConfig,
    PiPADTrainer,
    PipelineConfig,
    PipelineTrainer,
)
from repro.core.distributed_trainer import DistributedTrainer as CoreDistributedTrainer
from repro.distributed import FleetServingEngine, ShardedServingEngine
from repro.graph import load_dataset
from repro.serving import ServingConfig, ServingScheduler, build_serving_engine

REPO_ROOT = Path(__file__).resolve().parents[2]
SPEC_DIR = REPO_ROOT / "specs"

_QUICK = dict(dataset="covid19_england", model="tgcn", num_snapshots=8, frame_size=4, epochs=2)


class TestTrainerDispatch:
    @pytest.mark.parametrize(
        "method, expected",
        [
            ("pygt", PyGTTrainer),
            ("pygt-a", PyGTAsyncTrainer),
            ("pygt-r", PyGTReuseTrainer),
            ("pygt-g", PyGTGeSpMMTrainer),
            ("pipad", PiPADTrainer),
        ],
    )
    def test_single_device_methods(self, method, expected):
        engine = Engine.from_spec(RunSpec(method=method, **_QUICK))
        assert type(engine.trainer) is expected

    def test_group_device_resolves_distributed_trainer(self):
        spec = RunSpec(
            method="pipad", device=DeviceSpec(kind="group", num_devices=2), **_QUICK
        )
        engine = Engine.from_spec(spec)
        assert type(engine.trainer) is CoreDistributedTrainer
        assert engine.trainer.dist.num_devices == 2

    def test_group_device_settings_reach_trainer(self):
        spec = RunSpec(
            method="pipad",
            device=DeviceSpec(
                kind="group", num_devices=3, interconnect="pcie", partition_mode="nodes"
            ),
            **_QUICK,
        )
        trainer = Engine.from_spec(spec).trainer
        assert trainer.dist.interconnect == "pcie"
        assert trainer.dist.partition_mode == "nodes"
        assert len(trainer.group.devices) == 3

    def test_pipeline_device_resolves_pipeline_trainer(self):
        spec = RunSpec(
            method="pipad", device=DeviceSpec(kind="pipeline", num_devices=2), **_QUICK
        )
        engine = Engine.from_spec(spec)
        assert type(engine.trainer) is PipelineTrainer
        assert engine.trainer.pipe.num_devices == 2

    def test_pipeline_device_settings_reach_trainer(self):
        spec = RunSpec(
            method="pipad",
            device=DeviceSpec(
                kind="pipeline", num_devices=4, interconnect="pcie", schedule="blocked"
            ),
            **_QUICK,
        )
        trainer = Engine.from_spec(spec).trainer
        assert trainer.pipe.interconnect == "pcie"
        assert trainer.pipe.schedule == "blocked"
        assert len(trainer.group.devices) == 4


class TestServingDispatch:
    def test_local_serving_resolves_scheduler(self):
        spec = RunSpec(serving=ServingSpec(), **_QUICK)
        engine = Engine.from_spec(spec)
        assert type(engine.serving_engine) is ServingScheduler

    def test_sharded_serving_resolves_sharded_engine(self):
        spec = RunSpec(serving=ServingSpec(kind="sharded", num_shards=3), **_QUICK)
        engine = Engine.from_spec(spec)
        assert type(engine.serving_engine) is ShardedServingEngine
        assert engine.serving_engine.num_shards == 3

    def test_fleet_serving_resolves_fleet_engine(self):
        spec = RunSpec(
            serving=ServingSpec(kind="fleet", num_shards=3, min_replicas=2),
            **_QUICK,
        )
        engine = Engine.from_spec(spec)
        serving = engine.serving_engine
        assert type(serving) is FleetServingEngine
        assert serving.num_shards == 3
        assert serving.active_replicas == 2
        # All replicas share the single node-sharded store.
        assert all(r.store is serving.store for r in serving.replicas)

    def test_fleet_knobs_reach_fleet_config(self):
        spec = RunSpec(
            serving=ServingSpec(
                kind="fleet",
                num_shards=4,
                min_replicas=1,
                max_replicas=3,
                admission_limit=5,
                slo_p99_ms=7.5,
            ),
            **_QUICK,
        )
        fleet = Engine.from_spec(spec).serving_engine
        assert fleet.fleet_config.admission_limit == 5
        assert fleet.fleet_config.slo_p99_ms == 7.5
        assert fleet.fleet_config.replica_ceiling == 3

    def test_serving_without_section_raises(self):
        engine = Engine.from_spec(RunSpec(**_QUICK))
        with pytest.raises(ValueError, match="no serving section"):
            _ = engine.serving_engine

    def test_serving_config_reaches_scheduler(self):
        spec = RunSpec(
            serving=ServingSpec(window=4, max_batch_requests=2, enable_reuse=False),
            **_QUICK,
        )
        scheduler = Engine.from_spec(spec).serving_engine
        assert scheduler.config.window == 4
        assert scheduler.config.max_batch_requests == 2
        assert scheduler.config.enable_reuse is False


class TestParityWithOldEntryPoints:
    """The façade builds exactly what the hand-wired paths built."""

    def test_pipad_losses_bit_identical(self):
        spec = RunSpec(method="pipad", pipad={"preparing_epochs": 1}, **_QUICK)
        new = Engine.from_spec(spec).train()

        graph = load_dataset("covid19_england", seed=0, num_snapshots=8)
        old = PiPADTrainer(
            graph,
            TrainerConfig(model="tgcn", frame_size=4, epochs=2),
            PiPADConfig(preparing_epochs=1),
        ).train()
        assert new.loss_curve() == old.loss_curve()
        assert new.final_loss == old.final_loss
        assert new.simulated_seconds == old.simulated_seconds

    def test_make_trainer_shim_matches_engine(self):
        spec = RunSpec(method="pygt-r", **_QUICK)
        new = Engine.from_spec(spec).train()

        graph = load_dataset("covid19_england", seed=0, num_snapshots=8)
        with pytest.deprecated_call():
            trainer = make_trainer(
                "pygt-r", graph, TrainerConfig(model="tgcn", frame_size=4, epochs=2)
            )
        old = trainer.train()
        assert new.loss_curve() == old.loss_curve()
        assert new.simulated_seconds == old.simulated_seconds

    def test_distributed_losses_bit_identical(self):
        spec = RunSpec(
            method="pipad",
            device=DeviceSpec(kind="group", num_devices=2),
            **_QUICK,
        )
        new = Engine.from_spec(spec).train()

        graph = load_dataset("covid19_england", seed=0, num_snapshots=8)
        old = DistributedTrainer(
            graph,
            TrainerConfig(model="tgcn", frame_size=4, epochs=2),
            PiPADConfig(),
            DistributedConfig(num_devices=2),
        ).train()
        assert new.loss_curve() == old.loss_curve()
        assert new.simulated_seconds == old.simulated_seconds

    @pytest.mark.parametrize("model", ["tgcn", "evolvegcn", "mpnn_lstm"])
    def test_pipeline_losses_bit_identical_to_single(self, model):
        """Acceptance criterion: ``device.kind="pipeline"`` trains every model
        bit-identically in loss to the ``single`` topology."""
        quick = {**_QUICK, "model": model}
        single = Engine.from_spec(RunSpec(method="pipad", **quick)).train()
        pipelined = Engine.from_spec(
            RunSpec(
                method="pipad",
                device=DeviceSpec(kind="pipeline", num_devices=3),
                **quick,
            )
        ).train()
        assert pipelined.loss_curve() == single.loss_curve()
        assert pipelined.final_loss == single.final_loss

    def test_serving_report_matches_old_builder(self):
        spec = RunSpec(
            method="pipad",
            serving=ServingSpec(
                window=6,
                max_batch_requests=4,
                max_delay_ms=1.0,
                trace=TraceSpec(num_events=40, seed=5),
            ),
            **_QUICK,
        )
        engine = Engine.from_spec(spec)
        trace = engine.default_trace()
        new = engine.serve(trace)

        graph = load_dataset("covid19_england", seed=0, num_snapshots=8)
        trainer = PiPADTrainer(
            graph, TrainerConfig(model="tgcn", frame_size=4, epochs=2), PiPADConfig()
        )
        trainer.train()
        with pytest.deprecated_call():
            old_engine = build_serving_engine(
                graph,
                trainer.model,
                ServingConfig(window=6, max_batch_requests=4, max_delay_ms=1.0),
            )
        old = old_engine.run_trace(trace)
        assert new.metrics.num_requests == old.metrics.num_requests
        assert new.metrics.p50_latency == old.metrics.p50_latency
        assert new.metrics.p99_latency == old.metrics.p99_latency
        assert new.simulated_seconds == old.simulated_seconds


class TestShippedSpecs:
    """The specs/ JSONs all execute through Engine.from_spec and agree
    with the hand-wired entry points."""

    def test_pipad_single_gpu_spec(self):
        report = Engine.from_spec(SPEC_DIR / "train_pipad_single_gpu.json").run()
        graph = load_dataset("covid19_england", seed=0, num_snapshots=14)
        old = PiPADTrainer(
            graph, TrainerConfig(model="tgcn", frame_size=8, epochs=3), PiPADConfig()
        ).train()
        assert report.training.final_loss == old.final_loss
        assert report.training.loss_curve() == old.loss_curve()

    def test_pygt_baseline_spec(self):
        report = Engine.from_spec(SPEC_DIR / "train_pygt_baseline.json").run()
        graph = load_dataset("covid19_england", seed=0, num_snapshots=14)
        old = PyGTTrainer(
            graph, TrainerConfig(model="tgcn", frame_size=8, epochs=3)
        ).train()
        assert report.training.final_loss == old.final_loss
        assert report.training.loss_curve() == old.loss_curve()

    def test_distributed_4gpu_spec(self):
        report = Engine.from_spec(SPEC_DIR / "train_distributed_4gpu.json").run()
        training = report.training
        graph = load_dataset("flickr", seed=0, num_snapshots=12)
        old = DistributedTrainer(
            graph,
            TrainerConfig(model="tgcn", frame_size=8, epochs=3, cost_scale=5000.0),
            PiPADConfig(),
            DistributedConfig(num_devices=4, interconnect="nvlink"),
        ).train()
        assert training.final_loss == old.final_loss
        assert training.loss_curve() == old.loss_curve()
        assert training.simulated_seconds == old.simulated_seconds
        # Distributed runs itemize their collectives in the normalized report.
        collectives = report.collective_breakdown()
        assert collectives["all_reduce_seconds"] > 0
        assert collectives["halo_exchange_seconds"] > 0

    def test_pipeline_4gpu_spec(self):
        report = Engine.from_spec(SPEC_DIR / "train_pipeline_4gpu.json").run()
        training = report.training
        graph = load_dataset("flickr", seed=0, num_snapshots=12)
        old = PipelineTrainer(
            graph,
            TrainerConfig(model="evolvegcn", frame_size=8, epochs=3, cost_scale=5000.0),
            PiPADConfig(fixed_s_per=2),
            PipelineConfig(num_devices=4, interconnect="nvlink"),
        ).train()
        assert training.final_loss == old.final_loss
        assert training.loss_curve() == old.loss_curve()
        assert training.simulated_seconds == old.simulated_seconds
        # Pipeline runs itemize the state handoffs and the gradient
        # all-reduce in the normalized report, plus the bubble in extras.
        collectives = report.collective_breakdown()
        assert collectives["peer_transfer_seconds"] > 0
        assert collectives["all_reduce_seconds"] > 0
        assert training.extras["pipeline_bubble_seconds"] > 0

    def test_sharded_serving_spec(self):
        engine = Engine.from_spec(SPEC_DIR / "serve_sharded.json")
        report = engine.run()
        assert report.serving is not None
        assert type(engine.serving_engine) is ShardedServingEngine
        assert engine.serving_engine.num_shards == 2
        assert report.serving.metrics.num_requests > 0
        assert report.serving.extras["num_shards"] == 2.0

    def test_fleet_serving_spec(self):
        engine = Engine.from_spec(SPEC_DIR / "serve_fleet.json")
        report = engine.run()
        assert report.serving is not None
        assert type(engine.serving_engine) is FleetServingEngine
        assert report.serving.engine == "PiPAD-Fleet-x4"
        assert report.serving.metrics.num_requests > 0
        assert report.serving.extras["rejected_requests"] >= 0.0
        # Node-sharding keeps each replica well under the full window.
        assert (
            report.serving.extras["per_replica_store_bytes"]
            < report.serving.extras["fleet_store_bytes"]
        )
