"""RunSpec construction, validation and serialization round-trips."""

from __future__ import annotations

import json

import pytest

from repro.api import DataSpec, DeviceSpec, RunSpec, ServingSpec, TraceSpec


class TestRoundTrip:
    def test_dict_round_trip_defaults(self):
        spec = RunSpec(dataset="covid19_england")
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_dict_round_trip_full(self):
        spec = RunSpec(
            dataset="flickr",
            model="evolvegcn",
            method="pygt-a",
            num_snapshots=9,
            frame_size=4,
            epochs=2,
            lr=5e-3,
            optimizer="sgd",
            seed=11,
            hidden_dim=12,
            cost_scale=42.0,
            pipad={"preparing_epochs": 2, "fixed_s_per": 2},
            device=DeviceSpec(kind="single"),
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_with_serving(self):
        spec = RunSpec(
            dataset="covid19_england",
            serving=ServingSpec(
                kind="sharded",
                num_shards=3,
                window=6,
                fixed_s_per=2,
                trace=TraceSpec(num_events=50, seed=99),
            ),
            device=DeviceSpec(kind="group", num_devices=2, interconnect="pcie"),
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.serving.trace.seed == 99

    def test_json_round_trip_with_fleet_serving(self):
        spec = RunSpec(
            dataset="covid19_england",
            serving=ServingSpec(
                kind="fleet",
                num_shards=4,
                min_replicas=2,
                max_replicas=3,
                admission_limit=8,
                slo_p99_ms=1.5,
                partition_mode="nodes",
                trace=TraceSpec(num_events=40, seed=3),
            ),
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.serving.max_replicas == 3
        assert restored.serving.partition_mode == "nodes"

    def test_to_dict_is_plain_json_data(self):
        spec = RunSpec(dataset="pems08", serving=ServingSpec())
        data = spec.to_dict()
        # Must survive a JSON encode/decode without type loss.
        assert json.loads(json.dumps(data)) == data
        assert isinstance(data["device"], dict)
        assert isinstance(data["serving"]["trace"], dict)

    def test_file_round_trip(self, tmp_path):
        spec = RunSpec(dataset="hepth", method="pygt-r", epochs=5)
        path = spec.save(tmp_path / "spec.json")
        assert RunSpec.load(path) == spec

    def test_data_section_round_trips(self):
        spec = RunSpec(
            dataset="flickr",
            data=DataSpec(pipeline="monolithic", prefetch_depth=0, pin_memory=False),
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.data.pipeline == "monolithic"
        assert restored.data.pin_memory is False


class TestUnknownKeyRejection:
    def test_top_level_unknown_key(self):
        with pytest.raises(ValueError, match="unknown RunSpec key.*typo_field"):
            RunSpec.from_dict({"dataset": "flickr", "typo_field": 1})

    def test_device_unknown_key(self):
        with pytest.raises(ValueError, match="unknown DeviceSpec key"):
            RunSpec.from_dict({"dataset": "flickr", "device": {"gpus": 4}})

    def test_serving_unknown_key(self):
        with pytest.raises(ValueError, match="unknown ServingSpec key"):
            RunSpec.from_dict({"dataset": "flickr", "serving": {"shards": 2}})

    def test_trace_unknown_key(self):
        with pytest.raises(ValueError, match="unknown TraceSpec key"):
            RunSpec.from_dict(
                {"dataset": "flickr", "serving": {"trace": {"events": 10}}}
            )

    def test_pipad_override_unknown_key(self):
        with pytest.raises(ValueError, match="unknown PiPADConfig override"):
            RunSpec(dataset="flickr", pipad={"enable_warp_drive": True})

    def test_data_unknown_key(self):
        with pytest.raises(ValueError, match="unknown DataSpec key"):
            RunSpec.from_dict({"dataset": "flickr", "data": {"depth": 3}})


class TestValidation:
    def test_unknown_dataset_names_choices(self):
        with pytest.raises(ValueError, match="unknown dataset 'mnist'.*covid19_england"):
            RunSpec(dataset="mnist")

    def test_unknown_model_names_choices(self):
        with pytest.raises(ValueError, match="unknown model 'gpt'.*tgcn"):
            RunSpec(dataset="flickr", model="gpt")

    def test_unknown_method_names_choices(self):
        with pytest.raises(ValueError, match="unknown method 'dgl'.*pipad"):
            RunSpec(dataset="flickr", method="dgl")

    def test_name_normalization(self):
        spec = RunSpec(dataset="COVID19-England", model="MPNN-LSTM", method="PyGT_A")
        assert spec.dataset == "covid19_england"
        assert spec.model == "mpnn_lstm"
        assert spec.method == "pygt-a"

    def test_group_device_requires_pipad(self):
        with pytest.raises(ValueError, match="only supported by method 'pipad'"):
            RunSpec(
                dataset="flickr",
                method="pygt",
                device=DeviceSpec(kind="group", num_devices=2),
            )

    def test_pipeline_device_requires_pipad(self):
        with pytest.raises(ValueError, match="only supported by method 'pipad'"):
            RunSpec(
                dataset="flickr",
                method="pygt-g",
                device=DeviceSpec(kind="pipeline", num_devices=2),
            )

    def test_pipeline_device_round_trips(self):
        spec = RunSpec(
            dataset="flickr",
            device=DeviceSpec(
                kind="pipeline", num_devices=4, interconnect="pcie", schedule="blocked"
            ),
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.device.schedule == "blocked"

    def test_unknown_schedule(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            DeviceSpec(kind="pipeline", num_devices=2, schedule="zigzag")

    def test_single_device_rejects_multiple_devices(self):
        with pytest.raises(ValueError, match="requires num_devices=1"):
            DeviceSpec(kind="single", num_devices=4)

    def test_unknown_device_kind(self):
        with pytest.raises(ValueError, match="unknown device kind"):
            DeviceSpec(kind="tpu_pod")

    def test_unknown_interconnect(self):
        with pytest.raises(ValueError, match="unknown interconnect"):
            DeviceSpec(kind="group", num_devices=2, interconnect="infiniband")

    def test_unknown_serving_kind(self):
        with pytest.raises(ValueError, match="unknown serving kind"):
            ServingSpec(kind="edge")

    def test_local_serving_rejects_shards(self):
        with pytest.raises(ValueError, match="requires num_shards=1"):
            ServingSpec(kind="local", num_shards=2)

    def test_sharded_serving_requires_shards(self):
        with pytest.raises(ValueError, match="requires num_shards>=2"):
            ServingSpec(kind="sharded", num_shards=1)

    def test_fleet_serving_requires_shards(self):
        with pytest.raises(ValueError, match="requires num_shards>=2"):
            ServingSpec(kind="fleet", num_shards=1)

    def test_fleet_replica_bounds_ordered(self):
        with pytest.raises(ValueError, match="min_replicas <= max_replicas"):
            ServingSpec(kind="fleet", num_shards=2, min_replicas=3)
        with pytest.raises(ValueError, match="min_replicas <= max_replicas"):
            ServingSpec(kind="fleet", num_shards=4, max_replicas=5)

    def test_fleet_unknown_partition_mode(self):
        with pytest.raises(ValueError, match="unknown partition_mode"):
            ServingSpec(kind="fleet", num_shards=2, partition_mode="metis")

    def test_fleet_admission_limit_positive(self):
        with pytest.raises(ValueError, match="admission_limit"):
            ServingSpec(kind="fleet", num_shards=2, admission_limit=0)

    def test_trace_fraction_bounds(self):
        with pytest.raises(ValueError, match="request_fraction"):
            TraceSpec(request_fraction=1.5)

    def test_bad_optimizer(self):
        with pytest.raises(ValueError, match="unknown optimizer"):
            RunSpec(dataset="flickr", optimizer="lion")

    def test_unknown_datapipe_pipeline_names_choices(self):
        with pytest.raises(ValueError, match="unknown datapipe pipeline 'turbo'.*staged"):
            DataSpec(pipeline="turbo")

    def test_negative_prefetch_depth_rejected(self):
        with pytest.raises(ValueError, match="prefetch_depth must be >= 0"):
            DataSpec(prefetch_depth=-1)

    def test_bool_prefetch_depth_rejected(self):
        with pytest.raises(ValueError, match="prefetch_depth must be an int"):
            DataSpec(prefetch_depth=True)


class TestMaterialization:
    def test_trainer_config_matches_fields(self):
        spec = RunSpec(
            dataset="flickr", model="tgcn", frame_size=4, epochs=7, lr=2e-3, seed=5
        )
        tc = spec.trainer_config()
        assert (tc.model, tc.frame_size, tc.epochs, tc.lr, tc.seed) == (
            "tgcn", 4, 7, 2e-3, 5,
        )

    def test_pipad_config_applies_overrides(self):
        spec = RunSpec(
            dataset="flickr",
            pipad={"preparing_epochs": 3, "s_per_candidates": [2, 4]},
        )
        cfg = spec.pipad_config()
        assert cfg.preparing_epochs == 3
        assert cfg.s_per_candidates == (2, 4)

    def test_serving_spec_materializes_config(self):
        serving = ServingSpec(window=6, max_batch_requests=4, enable_reuse=False)
        cfg = serving.to_serving_config()
        assert cfg.window == 6
        assert cfg.max_batch_requests == 4
        assert cfg.enable_reuse is False

    def test_serving_spec_materializes_fleet_config(self):
        serving = ServingSpec(
            kind="fleet",
            num_shards=4,
            min_replicas=2,
            admission_limit=6,
            slo_p99_ms=3.0,
            partition_mode="nodes",
        )
        cfg = serving.to_fleet_config()
        assert cfg.num_shards == 4
        assert cfg.min_replicas == 2
        assert cfg.admission_limit == 6
        assert cfg.slo_p99_ms == 3.0
        assert cfg.partition_mode == "nodes"
        assert cfg.replica_ceiling == 4

    def test_data_spec_materializes_pipe_config(self):
        from repro.core.datapipe import DataPipeConfig

        data = DataSpec(pipeline="monolithic", prefetch_depth=3, pin_memory=False)
        assert data.to_pipe_config() == DataPipeConfig(
            pipeline="monolithic", prefetch_depth=3, pin_memory=False
        )
