"""The legacy construction shims must warn at the *caller's* line.

``make_trainer``/``build_serving_engine`` are thin DeprecationWarning shims
over the engine-internal paths; with the wrong ``stacklevel`` the warning
would name the shim module itself, which is useless for finding the call
site to migrate.  These tests pin the warning to this file.
"""

from __future__ import annotations

import warnings

from repro.baselines import TrainerConfig, make_trainer
from repro.nn import build_model
from repro.serving import ServingConfig, build_serving_engine


def _deprecations(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


class TestShimStacklevel:
    def test_make_trainer_warning_points_at_caller(self, small_graph):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            make_trainer(
                "pygt", small_graph, TrainerConfig(model="tgcn", frame_size=4)
            )
        (warning,) = _deprecations(record)
        assert warning.filename == __file__
        assert "repro.api.Engine" in str(warning.message)

    def test_build_serving_engine_warning_points_at_caller(self, small_graph):
        model = build_model("tgcn", small_graph.feature_dim, 8)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            build_serving_engine(small_graph, model, ServingConfig())
        (warning,) = _deprecations(record)
        assert warning.filename == __file__
        assert "repro.api.Engine" in str(warning.message)

    def test_internal_paths_do_not_warn(self, small_graph):
        """The engine's own construction route must stay warning-free."""
        from repro.api import Engine, RunSpec

        spec = RunSpec(
            dataset="covid19_england",
            model="tgcn",
            method="pygt",
            num_snapshots=8,
            frame_size=4,
            epochs=1,
        )
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            _ = Engine.from_spec(spec).trainer
        assert not _deprecations(record)
