"""RunReport JSON persistence: lossless round-trips for every run shape."""

from __future__ import annotations

import json
import math

import pytest

from repro.api import Engine, RunReport, RunSpec


def _training_spec() -> RunSpec:
    return RunSpec(
        dataset="covid19_england",
        model="tgcn",
        method="pipad",
        num_snapshots=10,
        frame_size=6,
        epochs=2,
    )


def _serving_spec() -> RunSpec:
    return RunSpec(
        dataset="covid19_england",
        model="tgcn",
        method="pipad",
        num_snapshots=10,
        frame_size=6,
        epochs=1,
        serving={"trace": {"num_events": 30, "seed": 3}},
    )


def _assert_round_trip(report: RunReport) -> RunReport:
    text = report.to_json()
    restored = RunReport.from_json(text)
    assert restored.to_json() == text  # lossless: identical re-serialization
    return restored


class TestRoundTrip:
    def test_training_only(self):
        report = Engine.from_spec(_training_spec()).run()
        assert report.serving is None
        restored = _assert_round_trip(report)
        assert restored.spec == report.spec
        assert restored.serving is None
        assert restored.training.final_loss == report.training.final_loss
        assert restored.training.breakdown == report.training.breakdown
        assert len(restored.training.epoch_metrics) == report.training.epochs
        assert restored.metrics == report.metrics

    def test_serving_only(self):
        engine = Engine.from_spec(_serving_spec())
        engine.serve()
        report = engine.report()
        report.training = None  # persist the online phase alone
        restored = _assert_round_trip(report)
        assert restored.training is None
        assert restored.serving.metrics.num_requests > 0
        assert (
            restored.serving.metrics.summary() == report.serving.metrics.summary()
        )

    def test_combined(self):
        report = Engine.from_spec(_serving_spec()).run()
        assert report.training is not None and report.serving is not None
        restored = _assert_round_trip(report)
        assert restored.summary() == report.summary()

    def test_save_load_file(self, tmp_path):
        report = Engine.from_spec(_training_spec()).run()
        path = report.save(tmp_path / "report.json")
        restored = RunReport.load(path)
        assert restored.to_json() == report.to_json()

    def test_file_is_strict_json(self, tmp_path):
        report = Engine.from_spec(_serving_spec()).run()
        path = report.save(tmp_path / "report.json")
        # json.load with default strictness: bare NaN tokens would fail here
        # via parse_constant.
        json.loads(
            path.read_text(),
            parse_constant=lambda name: pytest.fail(f"bare {name} in JSON"),
        )

    def test_nan_fields_survive(self):
        # A serving run with zero deltas has NaN rows_per_delta; an engine
        # report with no serving phase still round-trips its NaN-free dict.
        engine = Engine.from_spec(_serving_spec())
        engine.serve()
        report = engine.report()
        report.serving.metrics.requests.clear()  # force empty-window NaNs
        restored = _assert_round_trip(report)
        assert math.isnan(restored.serving.metrics.p50_latency)

    def test_from_dict_rejects_unknown_spec_keys(self):
        report = Engine.from_spec(_training_spec()).run()
        payload = report.to_dict()
        payload["spec"]["bogus_key"] = 1
        with pytest.raises(ValueError):
            RunReport.from_dict(payload)
