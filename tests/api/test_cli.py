"""The ``python -m repro`` CLI surface: list/run/serve/experiment."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.cli import PRESETS, _apply_overrides, _parse_value, load_spec, main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestList:
    def test_list_prints_catalogue(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("datasets:", "models:", "methods:", "device_kinds:",
                        "serving_kinds:", "datapipes:", "datapipe_stages:",
                        "experiments:", "presets:",
                        "telemetry_callbacks:", "telemetry_exporters:"):
            assert section in out
        assert "pipad" in out
        assert "covid19_england" in out

    def test_list_json_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        catalogue = json.loads(capsys.readouterr().out)
        assert "sharded" in catalogue["serving_kinds"]
        assert "quick" in catalogue["presets"]
        assert "table1" in catalogue["experiments"]
        assert "logging" in catalogue["telemetry_callbacks"]
        assert "chrome-trace" in catalogue["telemetry_exporters"]
        assert {"staged", "monolithic"} <= set(catalogue["datapipes"])
        # Every stage the list shows is a real stage of the staged variant.
        assert list(catalogue["datapipe_stages"]) == ["slice", "gather", "pin", "h2d"]


class TestSpecLoading:
    def test_presets_all_validate(self):
        for name in PRESETS:
            spec = load_spec(name)
            assert spec.dataset  # parsed and validated

    def test_load_spec_from_file(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"dataset": "hepth", "method": "pygt"}))
        spec = load_spec(str(path))
        assert (spec.dataset, spec.method) == ("hepth", "pygt")

    def test_unknown_source_names_presets(self):
        with pytest.raises(ValueError, match="neither a readable JSON file nor a preset"):
            load_spec("no-such-spec")

    def test_set_overrides_nested_keys(self):
        spec = load_spec(
            "distributed-4gpu",
            ["device.num_devices=8", "epochs=5", "device.interconnect=pcie"],
        )
        assert spec.device.num_devices == 8
        assert spec.device.interconnect == "pcie"
        assert spec.epochs == 5

    def test_apply_overrides_rejects_bad_syntax(self):
        with pytest.raises(ValueError, match="key=value"):
            _apply_overrides({}, ["epochs"])

    def test_shipped_spec_files_load(self):
        for path in sorted((REPO_ROOT / "specs").glob("*.json")):
            assert load_spec(str(path)).dataset

    def test_pipeline_preset_resolves_pipeline_topology(self):
        spec = load_spec("pipeline-4gpu")
        assert spec.device.kind == "pipeline"
        assert spec.device.num_devices == 4
        assert spec.pipad["fixed_s_per"] == 2
        assert spec.data.pipeline == "staged"
        assert spec.data.prefetch_depth == 2


class TestSetCoercion:
    """``--set`` value parsing: JSON plus Python literal spellings."""

    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("4", 4),
            ("-3", -3),
            ("-0.5", -0.5),
            ("1e-3", 1e-3),
            ("true", True),
            ("false", False),
            ("True", True),
            ("False", False),
            ("null", None),
            ("None", None),
            ('"42"', "42"),
            ('"true"', "true"),
            ("nvlink", "nvlink"),
            ("[2, 4]", [2, 4]),
        ],
    )
    def test_parse_value(self, raw, expected):
        value = _parse_value(raw)
        assert value == expected
        assert type(value) is type(expected)

    def test_negative_number_reaches_spec_field(self):
        spec = load_spec("quick", ["seed=-5", "lr=1e-4"])
        assert spec.seed == -5
        assert spec.lr == 1e-4

    def test_python_bool_reaches_nested_bool_field(self):
        """Regression: ``False`` used to fall through the JSON parse and land
        in the bool field as the truthy string ``"False"``."""
        spec = load_spec(
            "sharded-serving",
            ["serving.enable_reuse=False", "serving.enable_pipeline=true"],
        )
        assert spec.serving.enable_reuse is False
        assert spec.serving.enable_pipeline is True

    def test_quoted_value_stays_a_string(self):
        spec = load_spec("quick", ['dataset="hepth"'])
        assert spec.dataset == "hepth"

    def test_dotted_keys_create_device_section(self):
        """The quick preset has no device section; dotted overrides must
        create it and coerce into a DeviceSpec."""
        spec = load_spec(
            "quick",
            [
                "device.kind=pipeline",
                "device.num_devices=4",
                "device.schedule=blocked",
            ],
        )
        assert spec.device.kind == "pipeline"
        assert spec.device.num_devices == 4
        assert spec.device.schedule == "blocked"

    def test_dotted_keys_reach_doubly_nested_sections(self):
        spec = load_spec("sharded-serving", ["serving.trace.seed=99"])
        assert spec.serving.trace.seed == 99

    def test_value_with_equals_sign_splits_once(self):
        data = _apply_overrides({}, ["note=a=b"])
        assert data["note"] == "a=b"

    def test_scalar_key_cannot_be_used_as_section(self):
        with pytest.raises(ValueError, match="not a nested section"):
            _apply_overrides({"epochs": 3}, ["epochs.inner=1"])

    def test_telemetry_section_coerces_from_dotted_keys(self):
        spec = load_spec(
            "quick",
            [
                "telemetry.enabled=False",
                "telemetry.trace_path=out.json",
                'telemetry.callbacks=["logging"]',
            ],
        )
        assert spec.telemetry.enabled is False
        assert spec.telemetry.trace_path == "out.json"
        assert spec.telemetry.callbacks == ("logging",)

    def test_unknown_telemetry_callback_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry callback"):
            load_spec("quick", ['telemetry.callbacks=["prometheus"]'])

    def test_data_section_coerces_from_dotted_keys(self):
        """The quick preset has no data section; dotted overrides must
        create it and coerce into a DataSpec with native types."""
        spec = load_spec(
            "quick",
            [
                "data.prefetch_depth=4",
                "data.pin_memory=False",
                "data.pipeline=monolithic",
            ],
        )
        assert spec.data.prefetch_depth == 4
        assert spec.data.pin_memory is False
        assert spec.data.pipeline == "monolithic"

    def test_unknown_datapipe_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown datapipe pipeline"):
            load_spec("quick", ["data.pipeline=turbo"])

    def test_bool_prefetch_depth_rejected(self):
        """``true`` parses to a bool, which must not sneak into the int
        depth field as 1."""
        with pytest.raises(ValueError, match="prefetch_depth must be an int"):
            load_spec("quick", ["data.prefetch_depth=true"])


class TestRun:
    def test_run_quick_preset(self, capsys):
        assert main(["run", "quick"]) == 0
        out = capsys.readouterr().out
        assert "training [PiPAD]" in out
        assert "final loss" in out

    def test_run_json_summary(self, capsys):
        assert main(["run", "quick", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert "final_loss" in summary
        assert "train_simulated_seconds" in summary

    def test_run_invalid_spec_exits_2(self, capsys):
        assert main(["run", "quick", "--set", "dataset=imagenet"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_run_trace_and_save_report_write_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        report = tmp_path / "report.json"
        assert main([
            "run", "quick",
            "--trace", str(trace),
            "--save-report", str(report),
        ]) == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"] and doc["displayTimeUnit"] == "ms"
        payload = json.loads(report.read_text())
        assert set(payload) == {"spec", "training", "serving", "metrics", "extras"}
        assert payload["metrics"]  # telemetry snapshot is populated

    def test_trace_with_disabled_telemetry_exits_2(self, capsys):
        assert main([
            "run", "quick",
            "--set", "telemetry.enabled=False",
            "--trace", "out.json",
        ]) == 2
        assert "telemetry.enabled" in capsys.readouterr().err


class TestServe:
    def test_serve_requires_serving_section(self, capsys):
        assert main(["serve", "quick"]) == 2
        assert "no serving section" in capsys.readouterr().err

    def test_serve_runs_spec_with_serving(self, capsys):
        assert main([
            "serve", "sharded-serving",
            "--set", "num_snapshots=8",
            "--set", "serving.trace.num_events=40",
        ]) == 0
        out = capsys.readouterr().out
        assert "engine=PiPAD-Serve-x2" in out
        assert "latency p50=" in out
        assert "delta ingestion:" in out

    def test_serve_save_report_round_trips(self, tmp_path, capsys):
        from repro.api import RunReport

        report = tmp_path / "report.json"
        assert main([
            "serve", "sharded-serving",
            "--set", "num_snapshots=8",
            "--set", "serving.trace.num_events=40",
            "--save-report", str(report),
        ]) == 0
        restored = RunReport.load(report)
        assert restored.serving is not None
        assert restored.serving.metrics.num_requests > 0


class TestExperiment:
    def test_experiment_quick(self, capsys):
        assert main(["experiment", "table1", "--quick"]) == 0
        assert "covid19_england" in capsys.readouterr().out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


def test_module_entry_point_runs():
    """``python -m repro`` is wired to the CLI (subprocess smoke)."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "list", "--json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert result.returncode == 0, result.stderr
    assert "presets" in json.loads(result.stdout)
